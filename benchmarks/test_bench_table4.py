"""Benchmark: regenerate Table 4 (specialization into memory/compute).

Times the full sweep: Draper adder construction and round-respecting
scheduling for every input size, area model evaluation for both codes
at both block counts.
"""

from repro.analysis.paper_values import TABLE4
from repro.analysis.tables import table4_text
from repro.core.design_space import specialization_sweep


def test_table4(once):
    rows = once(specialization_sweep)
    assert len(rows) == 24
    # Speedups agree with the published table within 15% on the
    # non-anomalous cells (see EXPERIMENTS.md for the 1024-bit notes).
    checked = 0
    for row in rows:
        paper = TABLE4[(row.n_bits, row.n_blocks, row.code_key)]
        if row.n_bits <= 512:
            assert abs(row.speedup - paper[1]) / paper[1] < 0.15
            checked += 1
    assert checked == 20
    print()
    print(table4_text())
