#!/usr/bin/env python
"""Machine-readable benchmark runner for the perf trajectory.

Times the named hot-path kernels (and, optionally, the whole
pytest-benchmark suite) and writes ``BENCH_<timestamp>.json`` mapping
kernel name -> seconds, so successive PRs can compare before/after
numbers mechanically::

    PYTHONPATH=src python benchmarks/run_bench.py              # kernels
    PYTHONPATH=src python benchmarks/run_bench.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --pytest     # + suite

The kernel set covers the two acceptance-criteria paths (optimized
fetch on the 1024-bit Draper adder, 4000-trial Monte Carlo decoding)
plus the Table 4/5 sweeps that sit on top of them.  Each kernel runs in
a fresh in-process state (module caches are cleared where they exist)
so the numbers reflect cold-path cost, not memoization.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime
from pathlib import Path


def _bench_fetch(n_bits: int, capacity: int = 243):
    from repro.sim.cache import simulate_optimized
    from repro.sim.scheduler import _adder_circuit

    circuit = _adder_circuit(n_bits, False)

    def run():
        return simulate_optimized(circuit, capacity)

    return run


def _bench_mc(code_key: str, trials: int):
    from repro.ecc.bacon_shor import bacon_shor_code
    from repro.ecc.montecarlo import logical_error_rate
    from repro.ecc.steane import steane_code

    code = {"steane": steane_code, "bacon_shor": bacon_shor_code}[code_key]()
    code.decode_table()  # table build is one-time setup, not the kernel

    def run():
        return logical_error_rate(code, 0.01, trials=trials, seed=11)

    return run


def _bench_hierarchy_sweep():
    from repro.core.design_space import hierarchy_sweep

    def run():
        return hierarchy_sweep()

    return run


#: The policy set the engine kernels time — pinned so the kernels keep
#: measuring the same workload as the committed baseline when the
#: policy registry grows (a new policy changes the *registry*, not what
#: these numbers mean; the ``fidelity`` policy's own cost is covered by
#: the fidelity-sweep surface, not a drift gate).
BENCH_POLICIES = ("belady", "fifo", "lru", "score")


def _bench_engine(n_bits: int, depth: int = 3):
    """The generalized hierarchy engine: a 3-level stack under the
    pinned ``BENCH_POLICIES`` set on one adder workload."""
    from repro.circuits.workloads import build_workload
    from repro.core.design_space import (
        ENGINE_CACHE_FACTOR,
        ENGINE_COMPUTE_QUBITS,
    )
    from repro.sim.levels import simulate_hierarchy_run, standard_stack

    from repro.sim.cache import simulate_optimized

    circuit = build_workload("draper_adder", n_bits)
    stack = standard_stack("steane", depth,
                           compute_qubits=ENGINE_COMPUTE_QUBITS,
                           cache_factor=ENGINE_CACHE_FACTOR)
    policies = BENCH_POLICIES
    # The fetch schedule is policy-independent one-time setup; without
    # it the kernel would mostly time the scheduler, not the engine.
    order = simulate_optimized(circuit, stack.levels[0].capacity).order

    def run():
        return [
            simulate_hierarchy_run(stack, circuit, policy=policy,
                                   order=order)
            for policy in policies
        ]

    return run


def _bench_prefetch(n_bits: int, depth: int = 3):
    """The split-transaction event-kernel path: a 3-level stack under
    exact next_k prefetching on one adder workload (demand on the
    reservation model is the engine kernel above; this one times the
    discrete-event dispatch, movement queues, and prefetch walk)."""
    from repro.circuits.workloads import build_workload
    from repro.core.design_space import (
        ENGINE_CACHE_FACTOR,
        ENGINE_COMPUTE_QUBITS,
    )
    from repro.sim.cache import simulate_optimized
    from repro.sim.levels import simulate_hierarchy_run, standard_stack

    circuit = build_workload("draper_adder", n_bits)
    stack = standard_stack("steane", depth,
                           compute_qubits=ENGINE_COMPUTE_QUBITS,
                           cache_factor=ENGINE_CACHE_FACTOR)
    # Policy-independent one-time setup, as in the engine kernel.
    order = simulate_optimized(circuit, stack.levels[0].capacity).order

    def run():
        return simulate_hierarchy_run(stack, circuit, order=order,
                                      prefetch="next_k")

    return run


def _bench_residency_accrual_overhead(n_bits: int = 512, depth: int = 3,
                                      alternations: int = 2):
    """The residency recorder's tax on the fastsplit next_k path, as a
    ratio (recorded / bare - 1).  The bare arm is the exact pre-fidelity
    engine run — ``recorder=None`` keeps every fast path byte-identical,
    and the committed *seconds* kernels (``prefetch_3level_next_k_512``,
    ``engine_3level_policies_512``) gate that fidelity-off side against
    their unchanged baselines.  The recorded arm attaches a
    :class:`~repro.sim.residency.ResidencyRecorder` and finishes it,
    timing the movement log plus the interval-partition build (the
    Monte Carlo calibration is lru_cached per (code, level) and
    amortizes to zero across a sweep, so it is excluded).  The arms
    alternate so clock drift hits both equally; the committed baseline
    pins the honest measured tax and ``OVERHEAD_SLACK`` bounds its
    drift."""
    from repro.circuits.workloads import build_workload
    from repro.core.design_space import (
        ENGINE_CACHE_FACTOR,
        ENGINE_COMPUTE_QUBITS,
    )
    from repro.sim.cache import simulate_optimized
    from repro.sim.levels import simulate_hierarchy_run, standard_stack
    from repro.sim.residency import ResidencyRecorder

    circuit = build_workload("draper_adder", n_bits)
    stack = standard_stack("steane", depth,
                           compute_qubits=ENGINE_COMPUTE_QUBITS,
                           cache_factor=ENGINE_CACHE_FACTOR)
    order = simulate_optimized(circuit, stack.levels[0].capacity).order

    def run():
        bare = recorded = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            simulate_hierarchy_run(stack, circuit, order=order,
                                   prefetch="next_k")
            elapsed = time.perf_counter() - t0
            bare = elapsed if bare is None else min(bare, elapsed)
            t0 = time.perf_counter()
            rec = ResidencyRecorder()
            result = simulate_hierarchy_run(stack, circuit, order=order,
                                            prefetch="next_k", recorder=rec)
            rec.finish(result.total_time_s)
            elapsed = time.perf_counter() - t0
            recorded = elapsed if recorded is None else min(recorded, elapsed)
        return recorded / bare - 1.0

    return run


def _bench_engine_replay_speedup(n_bits: int = 512, depth: int = 3,
                                 alternations: int = 2):
    """The traffic/price factorization payoff on the reservation-model
    policy cell, as a speedup ratio (reference arithmetic / replay
    engine).  ``simulate_hierarchy_run`` extracts the movement trace
    and re-prices it; ``simulate_hierarchy_run_audited`` runs the
    retained per-gate reference the fast path is pinned against.  The
    arms alternate so clock drift hits both equally; machine speed
    cancels out of the ratio, so the baseline gate holds it above an
    absolute floor (``SPEEDUP_FLOORS``) instead of scaling it."""
    from repro.circuits.workloads import build_workload
    from repro.core.design_space import (
        ENGINE_CACHE_FACTOR,
        ENGINE_COMPUTE_QUBITS,
    )
    from repro.sim.cache import simulate_optimized
    from repro.sim.levels import (
        simulate_hierarchy_run,
        simulate_hierarchy_run_audited,
        standard_stack,
    )

    circuit = build_workload("draper_adder", n_bits)
    stack = standard_stack("steane", depth,
                           compute_qubits=ENGINE_COMPUTE_QUBITS,
                           cache_factor=ENGINE_CACHE_FACTOR)
    policies = BENCH_POLICIES
    order = simulate_optimized(circuit, stack.levels[0].capacity).order

    def run():
        reference = fast = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            for policy in policies:
                simulate_hierarchy_run_audited(stack, circuit, policy=policy,
                                               order=order)
            elapsed = time.perf_counter() - t0
            reference = elapsed if reference is None else min(reference,
                                                              elapsed)
            t0 = time.perf_counter()
            for policy in policies:
                simulate_hierarchy_run(stack, circuit, policy=policy,
                                       order=order)
            elapsed = time.perf_counter() - t0
            fast = elapsed if fast is None else min(fast, elapsed)
        return reference / fast

    return run


#: The engine grid slice the batched-sweep kernels time: one traffic
#: group (fixed workload/size/depth/policy, no prefetch) whose priced
#: axis spans four code configurations — both pure stacks plus both
#: mixed-code pairs.
_BATCH_BENCH_GRID = dict(
    workloads=("draper_adder",), sizes=(512,), depths=(3,),
    policies=("lru",), prefetches=("none",),
)
_BATCH_BENCH_CODES = dict(
    code_keys=("steane", "bacon_shor"),
    code_pairs=(("bacon_shor", "steane"), ("steane", "bacon_shor")),
)


def _bench_batched_codepairs_speedup(alternations: int = 2):
    """Batched vs per-cell sweep execution over one four-config traffic
    group, as a speedup ratio (per-cell / batched).  The per-cell arm
    simulates the workload once per code configuration; the batched arm
    (``compute_grid(batch=engine_batch_spec())``) simulates it once and
    re-prices every configuration — the rows are pinned bit-identical
    elsewhere, this kernel times the payoff and gates its floor."""
    from repro.core.design_space import (
        EngineRow,
        engine_batch_spec,
        engine_cell,
        engine_grid,
    )
    from repro.sweep.runner import compute_grid

    grid = engine_grid(**_BATCH_BENCH_GRID, **_BATCH_BENCH_CODES)

    def run():
        # One warm pass builds the shared fetch-order cache so both
        # arms time simulation + pricing, not the scheduler.
        compute_grid(grid, engine_cell, EngineRow)
        percell = batched = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            compute_grid(grid, engine_cell, EngineRow)
            elapsed = time.perf_counter() - t0
            percell = elapsed if percell is None else min(percell, elapsed)
            t0 = time.perf_counter()
            compute_grid(grid, engine_cell, EngineRow,
                         batch=engine_batch_spec())
            elapsed = time.perf_counter() - t0
            batched = elapsed if batched is None else min(batched, elapsed)
        return percell / batched

    return run


def _bench_batched_scaling_overhead(alternations: int = 3):
    """Marginal cost of the priced axis on the batched path: the same
    traffic group swept with four code configurations vs one, returned
    as ``t(4)/t(1) - 1``.  The acceptance bar is that four
    configurations cost *less than twice* one (overhead < 1.0) because
    the simulation happens once and only the numpy/scalar re-pricing
    scales with the axis; the committed baseline pins the measured
    overhead far below that."""
    from repro.core.design_space import (
        EngineRow,
        engine_batch_spec,
        engine_cell,
        engine_grid,
    )
    from repro.sweep.runner import compute_grid

    grid_four = engine_grid(**_BATCH_BENCH_GRID, **_BATCH_BENCH_CODES)
    grid_one = engine_grid(**_BATCH_BENCH_GRID)

    def run():
        spec = engine_batch_spec()
        compute_grid(grid_four, engine_cell, EngineRow, batch=spec)
        four = one = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            compute_grid(grid_four, engine_cell, EngineRow, batch=spec)
            elapsed = time.perf_counter() - t0
            four = elapsed if four is None else min(four, elapsed)
            t0 = time.perf_counter()
            compute_grid(grid_one, engine_cell, EngineRow, batch=spec)
            elapsed = time.perf_counter() - t0
            one = elapsed if one is None else min(one, elapsed)
        return four / one - 1.0

    return run


def _bench_trace_cache_warm_speedup(alternations: int = 2):
    """The persistent trace cache payoff on a batched engine sweep, as a
    speedup ratio (cold / warm).  Both arms run the identical grid
    through ``compute_grid(batch=engine_batch_spec(trace_cache=...))``;
    the cold arm points at an empty cache directory (every traffic
    group is scheduled and simulated, then persisted), the warm arm at
    a populated one (every group loads as a verified blob — zero
    traffic simulation, pure pricing).  One large traffic group keeps
    the cold-only costs (fetch scheduling + traffic simulation)
    dominant over the pricing both arms share, which is exactly the
    regime the cache exists for.  The rows are pinned bit-identical
    elsewhere; this kernel times the payoff and gates the acceptance
    floor (``SPEEDUP_FLOORS``)."""
    import shutil
    import tempfile

    from repro.core.design_space import (
        EngineRow,
        _fetch_order,
        engine_batch_spec,
        engine_cell,
        engine_grid,
    )
    from repro.sweep.runner import compute_grid

    grid = engine_grid(workloads=("draper_adder",), sizes=(1024,),
                       depths=(3,), policies=("lru",),
                       prefetches=("none",),
                       code_keys=("steane", "bacon_shor"))

    def run():
        warm_dir = tempfile.mkdtemp(prefix="bench-trace-warm-")
        try:
            warm_spec = engine_batch_spec(trace_cache=warm_dir)
            compute_grid(grid, engine_cell, EngineRow, batch=warm_spec)
            cold = warm = None
            for _ in range(alternations):
                cold_dir = tempfile.mkdtemp(prefix="bench-trace-cold-")
                try:
                    # A fresh sweep pays for scheduling too, so the
                    # cold arm must not inherit the fetch-order cache
                    # the warm-up pass just filled.
                    _fetch_order.cache_clear()
                    t0 = time.perf_counter()
                    compute_grid(grid, engine_cell, EngineRow,
                                 batch=engine_batch_spec(
                                     trace_cache=cold_dir))
                    elapsed = time.perf_counter() - t0
                finally:
                    shutil.rmtree(cold_dir, ignore_errors=True)
                cold = elapsed if cold is None else min(cold, elapsed)
                t0 = time.perf_counter()
                compute_grid(grid, engine_cell, EngineRow, batch=warm_spec)
                elapsed = time.perf_counter() - t0
                warm = elapsed if warm is None else min(warm, elapsed)
            return cold / warm
        finally:
            shutil.rmtree(warm_dir, ignore_errors=True)

    return run


def _bench_multi_group_pricing_speedup(alternations: int = 3):
    """Whole-grid one-pass pricing vs per-group batched pricing, as a
    speedup ratio (per-group / multi) over a realistic engine grid
    slice: four traffic groups (one per eviction policy) each priced
    across 32 configurations (eight transfer widths x four code
    stacks).  Both arms price the same prebuilt traces —
    ``price_movement_trace_batch`` per group vs one
    ``price_movement_traces_multi`` padded-batch pass over all four —
    and the multi engine is pinned ``==``-identical elsewhere; this
    kernel times the padding payoff and gates its floor."""
    from repro.circuits.workloads import build_workload
    from repro.core.design_space import (
        ENGINE_CACHE_FACTOR,
        ENGINE_COMPUTE_QUBITS,
        _engine_stack,
        _fetch_order,
    )
    from repro.sim.replay import (
        extract_movement_trace,
        price_movement_trace_batch,
        price_movement_traces_multi,
    )

    n_bits, depth = 256, 3
    policies = ("lru", "belady", "fifo", "score")
    widths = (3, 4, 6, 8, 10, 12, 16, 20)
    codes = (("steane", "steane"), ("steane", "bacon_shor"),
             ("bacon_shor", "steane"), ("bacon_shor", "bacon_shor"))
    circuit = build_workload("draper_adder", n_bits)
    order = _fetch_order("draper_adder", n_bits, ENGINE_COMPUTE_QUBITS,
                         ENGINE_CACHE_FACTOR)
    groups = []
    for policy in policies:
        configs = [
            dict(workload="draper_adder", n_bits=n_bits, depth=depth,
                 policy=policy, parallel_transfers=width, code_key=ck,
                 memory_code_key=mk, prefetch="none",
                 compute_qubits=ENGINE_COMPUTE_QUBITS,
                 cache_factor=ENGINE_CACHE_FACTOR)
            for width in widths for ck, mk in codes
        ]
        stacks = [_engine_stack(params) for params in configs]
        trace = extract_movement_trace(stacks[0], circuit, policy,
                                       order=order)
        groups.append((trace, stacks))

    def run():
        grouped = multi = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            for trace, stacks in groups:
                price_movement_trace_batch(trace, stacks)
            elapsed = time.perf_counter() - t0
            grouped = elapsed if grouped is None else min(grouped, elapsed)
            t0 = time.perf_counter()
            price_movement_traces_multi(groups, engine="numpy")
            elapsed = time.perf_counter() - t0
            multi = elapsed if multi is None else min(multi, elapsed)
        return grouped / multi

    return run


def _bench_specialization_sweep():
    from repro.core.design_space import specialization_sweep

    def run():
        return specialization_sweep()

    return run


def _bench_sweep_store(loops: int = 3):
    """The sharded-sweep store round trip: compute a small engine grid
    into a fresh result store (cold, one atomic record + index update
    per cell), then reassemble the rows read-only (warm merge path)."""
    import shutil
    import tempfile

    from repro.core.design_space import EngineRow, engine_cell, engine_grid
    from repro.perf.store import ResultStore
    from repro.sweep.runner import compute_grid, rows_from_store

    grid = engine_grid(workloads=("draper_adder",), sizes=(16,), depths=(2,),
                       prefetches=("none",))

    def run():
        rows = None
        for _ in range(loops):
            tmp = tempfile.mkdtemp(prefix="bench-sweep-store-")
            try:
                store = ResultStore(tmp)
                compute_grid(grid, engine_cell, EngineRow, store=store)
                rows = rows_from_store(grid, EngineRow, store)
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
        return rows

    return run


def _bench_supervised_overhead(alternations: int = 3):
    """The fault-free supervision tax on the sweep runner, as a ratio.

    Runs the same small engine grid through ``compute_grid`` bare and
    under the identity ``Supervision()`` in alternation (so clock
    drift hits both arms equally) and returns ``supervised/raw - 1``
    on the best-of times.  Unlike every other kernel this one measures
    *itself* and returns a dimensionless fraction, signalled by the
    ``_overhead`` name suffix: machine speed cancels out of a ratio,
    so the baseline gate compares it with an absolute budget instead
    of calibration scaling.
    """
    from repro.core.design_space import EngineRow, engine_cell, engine_grid
    from repro.perf.supervise import Supervision
    from repro.sweep.runner import compute_grid

    grid = engine_grid(workloads=("draper_adder",), sizes=(256,),
                       depths=(3,), prefetches=("none",))

    def run():
        # One warm pass builds the fetch-order / speedup caches both
        # arms share, so the ratio times the runner, not the scheduler.
        compute_grid(grid, engine_cell, EngineRow)
        raw = supervised = None
        for _ in range(alternations):
            t0 = time.perf_counter()
            compute_grid(grid, engine_cell, EngineRow)
            elapsed = time.perf_counter() - t0
            raw = elapsed if raw is None else min(raw, elapsed)
            t0 = time.perf_counter()
            compute_grid(grid, engine_cell, EngineRow,
                         supervise=Supervision())
            elapsed = time.perf_counter() - t0
            supervised = (elapsed if supervised is None
                          else min(supervised, elapsed))
        return supervised / raw - 1.0

    return run


def _bench_service_table_query_overhead(queries: int = 8):
    """Warm-store table query latency through the live service, seconds.

    Fills a small sqlite store, binds a :class:`BackgroundService` over
    it, and times ``GET /v1/table`` end to end (HTTP round trip +
    store read + render) best-of over several queries.  The value is a
    wall-clock latency, not a ratio, but like the other ``_overhead``
    kernels it gates against an absolute budget
    (``OVERHEAD_CEILINGS``): the promise is "a warm table query
    answers well under a second", not a drift band around a noisy
    millisecond number.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.design_space import (
        TransferRow, transfer_cell, transfer_grid)
    from repro.perf.backends import open_store
    from repro.service import BackgroundService, ServiceClient
    from repro.sweep.runner import compute_grid

    grid = transfer_grid()

    def run():
        tmp = tempfile.mkdtemp(prefix="bench-service-")
        try:
            store = open_store(f"sqlite:{Path(tmp) / 'bench.db'}")
            compute_grid(grid, transfer_cell, TransferRow, store=store)
            with BackgroundService(store, grid) as svc:
                client = ServiceClient(svc.url)
                client.table()  # connection + import warm-up
                best = None
                for _ in range(queries):
                    t0 = time.perf_counter()
                    client.table()
                    elapsed = time.perf_counter() - t0
                    best = elapsed if best is None else min(best, elapsed)
            return best
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    return run


def _clear_memo_state() -> None:
    """Reset in-process caches so every kernel times the cold path."""
    try:
        from repro.sim import hierarchy_sim

        hierarchy_sim.l1_speedup.cache_clear()
    except Exception:
        pass
    try:
        from repro.perf.memo import default_cache

        default_cache().clear_memory()
    except Exception:
        # Seed tree (pre repro.perf) — nothing to clear.
        pass
    try:
        from repro.core.design_space import _fetch_order

        _fetch_order.cache_clear()
    except Exception:
        # Pre-sharded-sweep tree — nothing to clear.
        pass


def _times(fn, n: int):
    """Loop a kernel so its best-of time is large against timer noise
    and the baseline gate's absolute slack."""
    def run():
        result = None
        for _ in range(n):
            result = fn()
        return result
    return run


def kernel_set(quick: bool):
    if quick:
        # Quick kernels are looped to >= ~0.1 s apiece: the baseline
        # regression gate adds a small absolute slack, and a
        # millisecond-scale kernel would let multi-x slowdowns hide
        # inside it.
        return {
            "fetch_optimized_1024_x4": _times(_bench_fetch(1024), 4),
            "mc_steane_2000_x8": _times(_bench_mc("steane", 2000), 8),
            "engine_3level_policies_512": _bench_engine(512),
            "prefetch_3level_next_k_512": _bench_prefetch(512),
            "sweep_store_roundtrip_x20": _bench_sweep_store(20),
            "supervised_runner_overhead": _bench_supervised_overhead(),
            "residency_accrual_overhead": _bench_residency_accrual_overhead(),
            "engine_replay_speedup": _bench_engine_replay_speedup(512),
            "batched_vs_percell_codepairs_speedup":
                _bench_batched_codepairs_speedup(),
            "batched_codepairs_scaling_overhead":
                _bench_batched_scaling_overhead(),
            "trace_cache_warm_speedup": _bench_trace_cache_warm_speedup(),
            "multi_group_pricing_speedup":
                _bench_multi_group_pricing_speedup(),
            "service_table_query_overhead":
                _bench_service_table_query_overhead(),
        }
    return {
        "fetch_optimized_256": _bench_fetch(256),
        "fetch_optimized_1024": _bench_fetch(1024),
        "mc_steane_4000": _bench_mc("steane", 4000),
        "mc_bacon_shor_4000": _bench_mc("bacon_shor", 4000),
        "specialization_sweep": _bench_specialization_sweep(),
        "hierarchy_sweep": _bench_hierarchy_sweep(),
        "engine_3level_policies_256": _bench_engine(256),
        "prefetch_3level_next_k_512": _bench_prefetch(512),
        "sweep_store_roundtrip_x20": _bench_sweep_store(20),
        "supervised_runner_overhead": _bench_supervised_overhead(),
        "residency_accrual_overhead": _bench_residency_accrual_overhead(),
        "engine_replay_speedup": _bench_engine_replay_speedup(512),
        "batched_vs_percell_codepairs_speedup":
            _bench_batched_codepairs_speedup(),
        "batched_codepairs_scaling_overhead":
            _bench_batched_scaling_overhead(),
        "trace_cache_warm_speedup": _bench_trace_cache_warm_speedup(),
        "multi_group_pricing_speedup":
            _bench_multi_group_pricing_speedup(),
        "service_table_query_overhead":
            _bench_service_table_query_overhead(),
    }


def time_kernels(quick: bool, repeats: int) -> dict:
    results: dict = {}
    for name, fn in kernel_set(quick).items():
        ratio = name.endswith(("_overhead", "_speedup"))
        best = None
        for _ in range(repeats):
            _clear_memo_state()
            t0 = time.perf_counter()
            value = fn()
            if not ratio:
                value = time.perf_counter() - t0
            if best is None:
                best = value
            elif name.endswith("_speedup"):
                # Speedups: bigger is better, best-of is the max.
                best = max(best, value)
            else:
                best = min(best, value)
        results[name] = best
        print(f"  {name:36s} {best:9.4f} {'(ratio)' if ratio else 's'}")
    return results


def calibration_seconds() -> float:
    """Time a fixed pure-python workload to normalize across machines.

    Baseline JSONs are committed from one machine and checked on
    another (CI runners), so raw kernel seconds are not comparable.
    Scaling the baseline by the ratio of this deterministic spin on
    both machines turns the check into a same-machine comparison to
    first order.
    """
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i * i
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def calibration_numpy_seconds() -> float:
    """Time a fixed NumPy workload (matmul-bound, like the Monte Carlo
    kernels).  Interpreter speed and BLAS throughput vary independently
    across machines, so the gate scales by whichever calibration makes
    the limit more lenient — a fast interpreter with ordinary BLAS must
    not shrink the limit of a NumPy-bound kernel."""
    import numpy as np

    a = np.arange(300 * 300, dtype=np.float64).reshape(300, 300) % 7.0
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(10):
            a = (a @ a) % 7.0
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


#: Absolute grace added to every baseline limit: timer noise can
#: exceed any relative tolerance on a too-small kernel.  Kept small
#: relative to the quick kernels (>= ~0.1 s) so the relative tolerance
#: remains the binding constraint.
BASELINE_SLACK_S = 0.01

#: Absolute budget for ``*_overhead`` ratio kernels: the measured
#: overhead fraction may exceed its baseline by at most this much.
#: Machine speed cancels out of a ratio, so no calibration scaling and
#: no relative tolerance apply — this keeps the fault-free supervision
#: tax pinned under ~5 points regardless of the runner.
OVERHEAD_SLACK = 0.05

#: Absolute floors for ``*_speedup`` ratio kernels (PR acceptance
#: criteria, not baseline-relative drift limits): the replay engine
#: must stay >= 5x the retained reference on the policy cell, the
#: batched sweep >= 2x the per-cell path on a four-config traffic
#: group, a warm trace cache >= 5x a cold batched sweep, and
#: whole-grid multi-trace pricing >= 1.5x per-group batched pricing.
#: Ratios are machine-independent, so the floors gate directly —
#: falling below one means the factorization (or the cache) stopped
#: paying for itself, whatever the baseline says.
SPEEDUP_FLOORS = {
    "engine_replay_speedup": 5.0,
    "batched_vs_percell_codepairs_speedup": 2.0,
    "trace_cache_warm_speedup": 5.0,
    "multi_group_pricing_speedup": 1.5,
}

#: Absolute ceilings overriding the drift budget for ``*_overhead``
#: kernels whose bar is an acceptance criterion rather than a committed
#: measurement.  The batched scaling kernel divides two ~50 ms arms, so
#: run-to-run noise dwarfs ``OVERHEAD_SLACK``; what the PR promises is
#: only that four priced configurations cost less than twice one
#: (overhead < 1.0), and that is what gates.  The supervised-runner
#: kernel has the same problem — identity supervision costs within
#: measurement noise of zero, so its ratio swings +/-0.1 run to run;
#: the committed bar is "supervision stays under a quarter of the bare
#: runner", not a 5% drift budget around a noise floor.
#: The service query kernel is a latency in seconds, not a ratio, but
#: the same logic applies: what the PR promises is "a warm-store table
#: query over HTTP answers in well under a second", and millisecond
#: best-of latencies are all noise against a drift budget.
#: The residency-recorder kernel divides two sub-second engine arms and
#: swings ~0.2-0.35 run to run; the promise is "recording residency
#: costs less than half the bare run" (fidelity-*off* runs pay nothing —
#: the unchanged engine seconds kernels gate that side), so the half
#: bar gates rather than a drift band around a noisy ratio.
OVERHEAD_CEILINGS = {
    "batched_codepairs_scaling_overhead": 1.0,
    "supervised_runner_overhead": 0.25,
    "service_table_query_overhead": 0.5,
    "residency_accrual_overhead": 0.5,
}


def check_baseline(
    kernels: dict,
    calibration: float,
    baseline_path: Path,
    tolerance: float,
    calibration_numpy: float = None,
) -> int:
    """Compare kernel times against a committed baseline JSON.

    Returns the number of kernels slower than ``baseline * scale *
    (1 + tolerance) + slack``, where ``scale`` normalizes for machine
    speed via the calibration workloads and ``slack`` absorbs absolute
    timer noise on tiny kernels.  The kernels mix interpreter-bound
    and NumPy-bound work, and those speeds vary independently across
    machines, so ``scale`` is the *most lenient* of the python and
    NumPy calibration ratios — a machine that is only faster at one of
    them must never shrink the other kind of kernel's limit into a
    false regression.  ``*_overhead`` kernels are dimensionless ratios
    and get an absolute budget instead (``baseline + OVERHEAD_SLACK``,
    no scaling, no slack); ``*_speedup`` kernels are held above their
    ``SPEEDUP_FLOORS`` acceptance floor, independent of the baseline
    value.  A kernel new to this run is reported but not
    failed (it needs a baseline refresh, not a red build); a baseline
    kernel *missing* from the run counts as a failure — otherwise
    renaming or dropping a gated kernel would silently disable its
    regression coverage.
    """
    data = json.loads(baseline_path.read_text())
    base_kernels = data.get("kernels", {})
    meta = data.get("meta", {})
    ratios = []
    if meta.get("calibration_s"):
        ratios.append(calibration / meta["calibration_s"])
    if meta.get("calibration_numpy_s") and calibration_numpy:
        ratios.append(calibration_numpy / meta["calibration_numpy_s"])
    scale = max(ratios) if ratios else 1.0
    print(f"baseline check vs {baseline_path} "
          f"(machine scale {scale:.2f}x, tolerance {tolerance:.0%})")
    failures = 0
    for name in sorted(set(base_kernels) | set(kernels)):
        if name not in kernels:
            print(f"  {name:36s} MISSING from this run — refresh the "
                  f"baseline JSON if the kernel was renamed or removed")
            failures += 1
            continue
        actual = kernels[name]
        if name.endswith("_speedup"):
            # Dimensionless speedup with an absolute acceptance floor:
            # bigger is better, regression means dropping below it.
            # The floor gates even before the baseline JSON lists the
            # kernel — an acceptance criterion has no grace period.
            floor = SPEEDUP_FLOORS.get(name, 1.0)
            verdict = "ok" if actual >= floor else "REGRESSION"
            print(f"  {name:36s} {actual:9.4f}x "
                  f"(floor {floor:9.4f}x) {verdict}")
            if actual < floor:
                failures += 1
            continue
        if name not in base_kernels:
            print(f"  {name:36s} new kernel, no baseline — refresh the "
                  f"baseline JSON to track it")
            continue
        if name.endswith("_overhead"):
            # Dimensionless ratio: no machine scaling, no timer slack.
            limit = OVERHEAD_CEILINGS.get(
                name, base_kernels[name] + OVERHEAD_SLACK
            )
            unit = ""
        else:
            limit = (base_kernels[name] * scale * (1.0 + tolerance)
                     + BASELINE_SLACK_S)
            unit = " s"
        verdict = "ok" if actual <= limit else "REGRESSION"
        print(f"  {name:36s} {actual:9.4f}{unit} "
              f"(limit {limit:9.4f}{unit}) {verdict}")
        if actual > limit:
            failures += 1
    return failures


def run_pytest_suite(out: dict) -> None:
    """Run the pytest-benchmark suite, folding mean times into ``out``."""
    tmp = Path("benchmarks") / ".pytest_bench.json"
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q", f"--benchmark-json={tmp}",
    ]
    print(f"  running: {' '.join(cmd)}")
    subprocess.run(cmd, check=True)
    data = json.loads(tmp.read_text())
    for bench in data.get("benchmarks", []):
        out[f"pytest::{bench['name']}"] = bench["stats"]["mean"]
    tmp.unlink(missing_ok=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small kernel sizes for CI smoke runs")
    parser.add_argument("--pytest", action="store_true",
                        help="also run the pytest-benchmark suite")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per kernel (best-of)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output path (default BENCH_<timestamp>.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline JSON to regress against; "
                             "exit 1 if any kernel is slower than the "
                             "calibration-scaled baseline by more than "
                             "--tolerance")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown over baseline (default 0.25)")
    args = parser.parse_args(argv)
    if args.baseline is not None and not args.baseline.is_file():
        # Fail in milliseconds, not after minutes of kernel timing.
        parser.error(f"baseline file not found: {args.baseline}")

    # The point of these numbers is the cold-path kernel cost: drop any
    # ambient persistent-cache directory before the lazily-built default
    # cache can pick it up (this also propagates to the pytest
    # subprocess), and _clear_memo_state wipes the memory tier between
    # repeats.
    if os.environ.pop("REPRO_CACHE_DIR", None) is not None:
        print("note: ignoring REPRO_CACHE_DIR — benchmarks time the cold path")

    print("timing kernels...")
    kernels = time_kernels(args.quick, max(1, args.repeats))
    if args.pytest:
        run_pytest_suite(kernels)
    calibration = calibration_seconds()
    calibration_numpy = calibration_numpy_seconds()

    stamp = datetime.now().strftime("%Y%m%d_%H%M%S")
    path = args.output or Path(f"BENCH_{stamp}.json")
    payload = {
        "meta": {
            "timestamp": stamp,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
            "calibration_s": calibration,
            "calibration_numpy_s": calibration_numpy,
        },
        "kernels": kernels,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    if args.baseline is not None:
        failures = check_baseline(
            kernels, calibration, args.baseline, args.tolerance,
            calibration_numpy=calibration_numpy,
        )
        if failures:
            print(f"{failures} kernel(s) regressed past tolerance")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
