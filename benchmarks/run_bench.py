#!/usr/bin/env python
"""Machine-readable benchmark runner for the perf trajectory.

Times the named hot-path kernels (and, optionally, the whole
pytest-benchmark suite) and writes ``BENCH_<timestamp>.json`` mapping
kernel name -> seconds, so successive PRs can compare before/after
numbers mechanically::

    PYTHONPATH=src python benchmarks/run_bench.py              # kernels
    PYTHONPATH=src python benchmarks/run_bench.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --pytest     # + suite

The kernel set covers the two acceptance-criteria paths (optimized
fetch on the 1024-bit Draper adder, 4000-trial Monte Carlo decoding)
plus the Table 4/5 sweeps that sit on top of them.  Each kernel runs in
a fresh in-process state (module caches are cleared where they exist)
so the numbers reflect cold-path cost, not memoization.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime
from pathlib import Path


def _bench_fetch(n_bits: int, capacity: int = 243):
    from repro.sim.cache import simulate_optimized
    from repro.sim.scheduler import _adder_circuit

    circuit = _adder_circuit(n_bits, False)

    def run():
        return simulate_optimized(circuit, capacity)

    return run


def _bench_mc(code_key: str, trials: int):
    from repro.ecc.bacon_shor import bacon_shor_code
    from repro.ecc.montecarlo import logical_error_rate
    from repro.ecc.steane import steane_code

    code = {"steane": steane_code, "bacon_shor": bacon_shor_code}[code_key]()
    code.decode_table()  # table build is one-time setup, not the kernel

    def run():
        return logical_error_rate(code, 0.01, trials=trials, seed=11)

    return run


def _bench_hierarchy_sweep():
    from repro.core.design_space import hierarchy_sweep

    def run():
        return hierarchy_sweep()

    return run


def _bench_specialization_sweep():
    from repro.core.design_space import specialization_sweep

    def run():
        return specialization_sweep()

    return run


def _clear_memo_state() -> None:
    """Reset in-process caches so every kernel times the cold path."""
    try:
        from repro.sim import hierarchy_sim

        hierarchy_sim.l1_speedup.cache_clear()
    except Exception:
        pass
    try:
        from repro.perf.memo import default_cache

        default_cache().clear_memory()
    except Exception:
        # Seed tree (pre repro.perf) — nothing to clear.
        pass


def kernel_set(quick: bool):
    if quick:
        return {
            "fetch_optimized_128": _bench_fetch(128),
            "mc_steane_500": _bench_mc("steane", 500),
        }
    return {
        "fetch_optimized_256": _bench_fetch(256),
        "fetch_optimized_1024": _bench_fetch(1024),
        "mc_steane_4000": _bench_mc("steane", 4000),
        "mc_bacon_shor_4000": _bench_mc("bacon_shor", 4000),
        "specialization_sweep": _bench_specialization_sweep(),
        "hierarchy_sweep": _bench_hierarchy_sweep(),
    }


def time_kernels(quick: bool, repeats: int) -> dict:
    results: dict = {}
    for name, fn in kernel_set(quick).items():
        best = None
        for _ in range(repeats):
            _clear_memo_state()
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        results[name] = best
        print(f"  {name:28s} {best:9.4f} s")
    return results


def run_pytest_suite(out: dict) -> None:
    """Run the pytest-benchmark suite, folding mean times into ``out``."""
    tmp = Path("benchmarks") / ".pytest_bench.json"
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q", f"--benchmark-json={tmp}",
    ]
    print(f"  running: {' '.join(cmd)}")
    subprocess.run(cmd, check=True)
    data = json.loads(tmp.read_text())
    for bench in data.get("benchmarks", []):
        out[f"pytest::{bench['name']}"] = bench["stats"]["mean"]
    tmp.unlink(missing_ok=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small kernel sizes for CI smoke runs")
    parser.add_argument("--pytest", action="store_true",
                        help="also run the pytest-benchmark suite")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per kernel (best-of)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output path (default BENCH_<timestamp>.json)")
    args = parser.parse_args(argv)

    # The point of these numbers is the cold-path kernel cost: drop any
    # ambient persistent-cache directory before the lazily-built default
    # cache can pick it up (this also propagates to the pytest
    # subprocess), and _clear_memo_state wipes the memory tier between
    # repeats.
    if os.environ.pop("REPRO_CACHE_DIR", None) is not None:
        print("note: ignoring REPRO_CACHE_DIR — benchmarks time the cold path")

    print("timing kernels...")
    kernels = time_kernels(args.quick, max(1, args.repeats))
    if args.pytest:
        run_pytest_suite(kernels)

    stamp = datetime.now().strftime("%Y%m%d_%H%M%S")
    path = args.output or Path(f"BENCH_{stamp}.json")
    payload = {
        "meta": {
            "timestamp": stamp,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
        },
        "kernels": kernels,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
