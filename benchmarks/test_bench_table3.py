"""Benchmark: regenerate Table 3 (code-transfer latency matrix)."""

from repro.analysis.tables import table3, table3_text


def test_table3(benchmark):
    matrix = benchmark(table3)
    assert len(matrix) == 16
    # Key hierarchy latencies: demoting to the cache costs more than
    # promoting back (4 vs 2 EC periods of the slow encoding).
    assert matrix[("7-L2", "7-L1")] > matrix[("7-L1", "7-L2")]
    print()
    print(table3_text())
