"""Benchmark: regenerate Table 5 (memory hierarchy results).

Times the heaviest pipeline in the study: optimized-fetch cache
simulation of the 256/512/1024-bit adders behind the code-transfer
network at 5 and 10 parallel transfers, for both codes, composed with
the 1:2 interleaving policy.
"""

from repro.analysis.tables import table5_text
from repro.core.design_space import hierarchy_sweep


def test_table5(once):
    rows = once(hierarchy_sweep)
    assert len(rows) == 12
    by_key = {
        (r.code_key, r.parallel_transfers, r.n_bits): r for r in rows
    }
    # Paper-shape assertions: more transfer ports -> larger L1 speedup;
    # the headline ~8x adder speedup appears for Bacon-Shor at 10.
    for code in ("steane", "bacon_shor"):
        for n in (256, 512, 1024):
            assert (
                by_key[(code, 10, n)].l1_speedup
                > by_key[(code, 5, n)].l1_speedup
            )
    assert max(
        by_key[("bacon_shor", 10, n)].adder_speedup for n in (256, 512, 1024)
    ) > 7.0
    print()
    print(table5_text())
