"""Benchmark: regenerate Figure 8 (computation vs communication)."""

from repro.analysis.figures import fig8a, fig8a_text, fig8b, fig8b_text


def test_fig8a(once):
    series = once(fig8a)
    # Modular exponentiation is computation dominated at every size.
    for point in series:
        assert point.communication_s < point.computation_s
    # Totals rise steeply with input size (hundreds of hours at 1024).
    assert series[-1].computation_hours > 100
    print()
    print(fig8a_text())


def test_fig8b(benchmark):
    series = benchmark(fig8b)
    # QFT communication closely tracks computation (within ~2x).
    for point in series:
        assert 0.4 < point.ratio < 1.1
    print()
    print(fig8b_text())
