"""Benchmark: regenerate Table 1 (physical operation parameters)."""

from repro.analysis.tables import table1, table1_text


def test_table1(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 6
    print()
    print(table1_text())
