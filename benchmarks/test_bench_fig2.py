"""Benchmark: regenerate Figure 2 (64-qubit adder parallelism)."""

from repro.analysis.figures import fig2, fig2_text


def test_fig2(benchmark):
    data = benchmark(fig2, 64, 15)
    # The paper's claim: 15 blocks match unlimited resources.
    assert data["makespan_capped"] <= data["makespan_unlimited"] + 1
    assert max(data["unlimited"]) == 64
    print()
    print(fig2_text(64, 15))
