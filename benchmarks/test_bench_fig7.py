"""Benchmark: regenerate Figure 7 (cache hit rates).

Times the cache simulator over the adder sizes with both fetch policies
and the three cache capacities (1x, 1.5x, 2x the compute region).
"""

from repro.analysis.figures import fig7, fig7_text

#: Sizes used for the timed benchmark run (the full figure includes
#: 1024-bit; see fig7_text for the complete sweep).
BENCH_SIZES = (64, 128, 256, 512)


def test_fig7(once):
    points = once(fig7, BENCH_SIZES)
    assert len(points) == len(BENCH_SIZES) * 3 * 2
    by_policy = {}
    for p in points:
        by_policy.setdefault(p.policy, []).append(p.hit_rate)
    # The optimized fetch dominates in-order everywhere (paper: ~85%
    # vs ~20%).
    assert min(by_policy["optimized"]) > max(by_policy["in-order"])
    print()
    print(fig7_text(sizes=BENCH_SIZES))
