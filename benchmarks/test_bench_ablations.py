"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's published evaluation, but each ablation probes
one of its structural decisions: carry recycling vs erasure in the
adder, the 1:2 interleave policy, cache capacity, and the technology
projection behind Table 1.
"""

from repro.analysis.sensitivity import (
    adder_ablation,
    cache_ablation,
    policy_ablation,
    technology_scaling,
)
from repro.core.cqla import CqlaDesign


def test_adder_inplace_ablation(benchmark):
    result = benchmark(adder_ablation, 128, 25)
    # Erasing carries every addition costs ~2x; recycling is the
    # steady-state choice for the modexp addition tree.
    assert 1.5 < result.in_place_penalty < 3.0
    print(f"\nin-place adder penalty at 128 bits / 25 blocks: "
          f"{result.in_place_penalty:.2f}x")


def test_policy_ablation(once):
    points = once(policy_ablation, CqlaDesign("bacon_shor", 128, 25))
    speeds = {(p.l1_additions, p.l2_additions): p.adder_speedup
              for p in points}
    # All-L2 is the floor; all-L1 the ceiling; 1:2 sits in between.
    assert speeds[(0, 1)] < speeds[(1, 2)] < speeds[(1, 0)]
    print("\nL1:L2 policy sweep (adder speedup):")
    for (l1, l2), s in sorted(speeds.items()):
        print(f"  {l1}:{l2} -> {s:.2f}x")


def test_cache_ablation(once):
    points = once(cache_ablation, "bacon_shor", 128)
    hit = {p.cache_factor: p.hit_rate for p in points}
    assert hit[3.0] >= hit[0.5]
    print("\ncache capacity sweep (hit rate / L1 speedup):")
    for p in points:
        print(f"  {p.cache_factor:.1f}x PE -> {p.hit_rate:.1%} / "
              f"{p.l1_speedup:.2f}x")


def test_technology_scaling(benchmark):
    points = benchmark(
        technology_scaling, "steane", (0.1, 1.0, 10.0, 100.0, 1000.0)
    )
    levels = [p.level_for_shor_1024 for p in points]
    assert levels == sorted(levels)  # worse components -> deeper recursion
    print("\nfailure-rate scaling vs required recursion level:")
    for p in points:
        print(f"  x{p.failure_scale:<6g} p0={p.p0:.2e} -> level "
              f"{p.level_for_shor_1024}")
