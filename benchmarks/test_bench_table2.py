"""Benchmark: regenerate Table 2 (error-correction metric summary).

Times the full pipeline: cycle-accurate level-1 EC schedules on the
trap machine, recursive level-2 timing, tile-geometry areas and ion
counts for both codes.
"""

from repro.analysis import paper_values
from repro.analysis.tables import table2, table2_text
from repro.ecc import schedule


def _rebuild_table2():
    # Clear the schedule caches so the benchmark times real work.
    schedule.l1_syndrome_cycles.cache_clear()
    return table2()


def test_table2(once):
    rows = _rebuild_table2()
    rows = once(_rebuild_table2)
    assert len(rows) == 4
    for row in rows:
        paper_ec = paper_values.EC_TIME_S[(row.code_key, row.level)]
        assert abs(row.ec_time_s - paper_ec) / paper_ec < 0.15
    print()
    print(table2_text())
