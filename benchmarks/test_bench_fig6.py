"""Benchmark: regenerate Figure 6 (utilization and superblock bandwidth)."""

from repro.analysis.figures import fig6a, fig6a_text, fig6b, fig6b_text


def test_fig6a(once):
    series = once(fig6a)
    for n_bits, values in series.items():
        # Monotone decreasing up to ceil-division ripple in the
        # work-bound regime (where utilization saturates near 1).
        assert all(b <= a + 0.01 for a, b in zip(values, values[1:])), (
            f"utilization not monotone for {n_bits}-qubit adder"
        )
        assert values[-1] < values[0]
    print()
    print(fig6a_text())


def test_fig6b(benchmark):
    data = benchmark(fig6b)
    assert data["crossover"] == 36  # the paper's crossover point
    print()
    print(fig6b_text())
