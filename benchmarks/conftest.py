"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
entire evaluation section in one run.  Heavyweight builders are invoked
through ``benchmark.pedantic`` with a single round; cheap ones use the
default calibrated loop.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a heavyweight builder exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return runner
