"""Compare transfer models and prefetchers on the hierarchy engine.

Runs every registered eviction policy x every registered prefetcher on
a 3-level stack for the Draper adder and the QFT, printing the engine
design-space table.  The ``none`` rows are the reservation transfer
model (PR 2 semantics: greedily reserved ports, coupled write-backs);
the ``next_k`` / ``distance`` rows run the split-transaction model,
where a port is busy only while a transfer is in flight and the
prefetcher walks the *static* optimized fetch order to promote
upcoming operands into idle ports — exact prefetching, pinned against
eviction until first use.

The headline number is the makespan ratio on the adder: split
transactions plus exact prefetch reclaim the port idle-time the greedy
reservations waste.  The QFT rows show the other side: under
all-to-all traffic with a tiny compute level, a bounded lookahead
window cannot cover the working set, and the reservation model's
implicit whole-program lookahead stays ahead.

Run:  python examples/prefetch_comparison.py [n_bits]
"""

import sys

from repro.analysis import engine_table_text
from repro.circuits.workloads import build_workload
from repro.core.design_space import (
    ENGINE_CACHE_FACTOR,
    ENGINE_COMPUTE_QUBITS,
)
from repro.sim.cache import simulate_optimized
from repro.sim.levels import simulate_hierarchy_run, standard_stack
from repro.sim.prefetch import available_prefetchers


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    print("Prefetch comparison on the 3-level hierarchy engine")
    print(f"  workloads: draper_adder, qft at {n_bits} bits; "
          f"prefetchers: {', '.join(available_prefetchers())}\n")

    print(engine_table_text(
        workloads=("draper_adder", "qft"),
        sizes=(n_bits,),
        depths=(3,),
        prefetches=available_prefetchers(),
        cache=False,
    ))
    print()

    # The headline: demand fetching on the reservation model vs exact
    # next_k prefetching on the split-transaction model, LRU, adder.
    stack = standard_stack(
        "steane", 3,
        compute_qubits=ENGINE_COMPUTE_QUBITS,
        cache_factor=ENGINE_CACHE_FACTOR,
    )
    circuit = build_workload("draper_adder", n_bits)
    order = simulate_optimized(circuit, stack.levels[0].capacity).order
    demand = simulate_hierarchy_run(stack, circuit, order=order)
    prefetched = simulate_hierarchy_run(
        stack, circuit, order=order, prefetch="next_k"
    )
    ratio = demand.total_time_s / prefetched.total_time_s
    print(f"draper_adder({n_bits}) makespan: "
          f"demand {demand.total_time_s:.1f}s -> "
          f"next_k {prefetched.total_time_s:.1f}s "
          f"({ratio:.2f}x lower, "
          f"{prefetched.prefetches_used}/{prefetched.prefetches_issued} "
          "prefetches used)")


if __name__ == "__main__":
    main()
