"""Compare eviction policies across workloads on the hierarchy engine.

Runs every registered eviction policy (LRU, FIFO, lookahead-score,
Belady optimal) against every registered workload (Draper adder, QFT,
modexp addition trace) on a pressured two-level stack and on a
three-level stack, reporting compute-level hit rate and hierarchy
speedup.  Belady is the offline upper bound: no online policy should
beat it, and the gap shows how much replacement headroom each workload
leaves on the table.

Run:  python examples/policy_comparison.py [n_bits]
"""

import sys

from repro.analysis.report import format_table
from repro.circuits.workloads import available_workloads, build_workload
from repro.core.design_space import (
    ENGINE_CACHE_FACTOR,
    ENGINE_COMPUTE_QUBITS,
)
from repro.sim.cache import simulate_optimized
from repro.sim.levels import simulate_hierarchy_run, standard_stack
from repro.sim.policies import available_policies


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    policies = available_policies()
    workloads = available_workloads()

    circuits = {name: build_workload(name, n_bits) for name in workloads}
    print("Policy comparison on the N-level hierarchy engine")
    for name, circuit in circuits.items():
        print(f"  {name:13s} {len(circuit):6d} gates over "
              f"{circuit.n_qubits} logical qubits")
    print()

    for depth in (2, 3):
        # The engine-study geometry: a deliberately small compute
        # region keeps the resident set under pressure so replacement
        # decisions matter (the paper's 81-qubit region would hold
        # these workloads whole).
        stack = standard_stack(
            "steane", depth,
            compute_qubits=ENGINE_COMPUTE_QUBITS,
            cache_factor=ENGINE_CACHE_FACTOR,
        )
        capacities = ", ".join(
            str(level.capacity) for level in stack.levels[:-1]
        )
        rows = []
        for workload in workloads:
            # The fetch schedule is policy-independent: compute it once
            # per workload and share it across every policy run.
            order = simulate_optimized(
                circuits[workload], stack.levels[0].capacity
            ).order
            runs = {
                policy: simulate_hierarchy_run(
                    stack, circuits[workload], policy=policy, order=order
                )
                for policy in policies
            }
            best_online = max(
                (p for p in policies if p != "belady"),
                key=lambda p: runs[p].hit_rate,
            )
            cells = [workload]
            for policy in policies:
                run = runs[policy]
                cells.append(f"{run.hit_rate:.1%} / {run.speedup:.1f}x")
            cells.append(best_online)
            rows.append(cells)
        print(format_table(
            ["workload"] + [f"{p}" for p in policies] + ["best online"],
            rows,
            title=(f"{depth}-level stack (capacities {capacities}) — "
                   "hit rate / L1 speedup per policy"),
        ))
        print()

    print("belady is the offline-optimal upper bound; the gap to the "
          "best online policy is the replacement headroom.")


if __name__ == "__main__":
    main()
