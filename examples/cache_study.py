"""Reproduce the cache-design study of Section 5.2 interactively.

Generates a Draper adder, lowers it to the assembly-like ISA the
paper's cache simulator consumes, runs both fetch policies across cache
sizes, and shows how the dependency-aware fetch transforms the hit rate
— then demonstrates the effect on level-1 execution time through the
hierarchy simulator.

Run:  python examples/cache_study.py [n_bits]
"""

import sys

from repro.analysis.report import format_table
from repro.circuits.isa import disassemble
from repro.sim.cache import simulate_in_order, simulate_optimized
from repro.sim.hierarchy_sim import simulate_l1_run
from repro.sim.scheduler import _adder_circuit

COMPUTE_QUBITS = 81  # one 9-block level-1 compute region


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    circuit = _adder_circuit(n_bits, False)

    print(f"{n_bits}-bit Draper adder: {len(circuit)} instructions, "
          f"{circuit.toffoli_count} Toffolis, "
          f"{circuit.n_qubits} logical qubits")
    print()
    print("First instructions in the simulator ISA:")
    for line in disassemble(circuit).splitlines()[:6]:
        print(f"  {line}")
    print("  ...")
    print()

    rows = []
    for factor in (1.0, 1.5, 2.0):
        capacity = int(factor * COMPUTE_QUBITS)
        in_order = simulate_in_order(circuit, capacity)
        optimized = simulate_optimized(circuit, capacity)
        rows.append([
            f"{factor:.1f}x PE ({capacity})",
            f"{in_order.hit_rate:.1%}",
            f"{optimized.stats.hit_rate:.1%}",
        ])
    print(format_table(
        ["cache size", "in-order fetch", "optimized fetch"],
        rows,
        title="Cache hit rates (Figure 7 methodology)",
    ))
    print()

    for par in (5, 10):
        run = simulate_l1_run("bacon_shor", n_bits, parallel_transfers=par)
        print(f"L1 execution, {par:2d} parallel transfers: "
              f"{run.l1_time_s:8.1f} s "
              f"(speedup {run.l1_speedup:5.2f}x over L2, "
              f"{run.transfer_bound_fraction:.0%} waiting on transfers)")


if __name__ == "__main__":
    main()
