"""Quickstart: evaluate one CQLA design point against the QLA baseline.

Builds a Bacon-Shor CQLA for a 256-bit modular exponentiation, prints
its floorplan, compares area and time against the homogeneous QLA, and
then adds the quantum memory hierarchy (level-1 cache + compute) to get
the full Table 5-style metrics.

Run:  python examples/quickstart.py
"""

from repro import CqlaDesign, MemoryHierarchy, QlaMachine


def main() -> None:
    n_bits = 256
    design = CqlaDesign("bacon_shor", n_bits=n_bits, n_blocks=49)
    baseline = QlaMachine(n_bits)

    print(f"Workload: {n_bits}-bit modular exponentiation")
    print(f"Memory data qubits: {design.floorplan.memory.data_qubits}")
    print(f"Compute blocks:     {design.n_blocks} "
          f"({design.floorplan.l2_compute.logical_qubits} logical qubits)")
    print()
    print(f"QLA baseline area:  {baseline.area_m2():.3f} m^2")
    print(f"CQLA area:          {design.area_mm2() / 1e6:.3f} m^2")
    print(f"Area reduction:     {design.area_reduction():.2f}x")
    print(f"Adder speedup:      {design.speedup():.2f}x")
    print(f"Gain product:       {design.gain_product():.1f} (QLA = 1.0)")
    print()

    hierarchy = MemoryHierarchy(design, parallel_transfers=10)
    print("With the quantum memory hierarchy (L1 cache + compute):")
    print(f"  L1 speedup:       {hierarchy.l1_speedup():.2f}x")
    print(f"  adder speedup:    {hierarchy.adder_speedup():.2f}x")
    print(f"  cache hit rate:   {hierarchy.l1_run.hit_rate:.0%}")
    print(f"  policy safe:      {hierarchy.policy_is_safe()}"
          f"  (L1 time share {hierarchy.l1_time_fraction():.2%})")
    print(f"  gain product:     {hierarchy.gain_product():.1f}")


if __name__ == "__main__":
    main()
