"""Mixed-code hierarchy stacks: one code computes, another stores.

Compares three two-level organizations of the same Draper-adder run:

* a pure Steane stack (7-L1 compute+cache over 7-L2 memory),
* a pure Bacon-Shor stack (9-L1 over 9-L2),
* the mixed load/store-style stack of a Bacon-Shor compute level over
  Steane memory (9-L1 over 7-L2).

The mixed stack's transfer network is priced from *both* codes — its
demotion is the off-diagonal Table 3 cell 7-L2 -> 9-L1 and its
promotion 9-L1 -> 7-L2, and one transfer occupies the wider of the two
codes' teleport-channel requirements (three, for Bacon-Shor).  The run
therefore trades Bacon-Shor's faster level-1 gates against a
cross-code boundary that both costs more per transfer and fits fewer
transfers in flight.

Run:  python examples/mixed_code_stack.py [n_bits]
"""

import sys

from repro.analysis.report import format_table
from repro.circuits.workloads import build_workload
from repro.core.design_space import (
    ENGINE_CACHE_FACTOR,
    ENGINE_COMPUTE_QUBITS,
)
from repro.sim.cache import simulate_optimized
from repro.sim.levels import (
    mixed_stack,
    simulate_hierarchy_run,
    standard_stack,
)


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    stacks = {
        "steane (pure)": standard_stack(
            "steane", 2,
            compute_qubits=ENGINE_COMPUTE_QUBITS,
            cache_factor=ENGINE_CACHE_FACTOR,
        ),
        "bacon_shor (pure)": standard_stack(
            "bacon_shor", 2,
            compute_qubits=ENGINE_COMPUTE_QUBITS,
            cache_factor=ENGINE_CACHE_FACTOR,
        ),
        "bacon_shor over steane (mixed)": mixed_stack(
            "bacon_shor", "steane",
            compute_qubits=ENGINE_COMPUTE_QUBITS,
            cache_factor=ENGINE_CACHE_FACTOR,
        ),
    }

    print("Mixed-code stacks on the hierarchy engine "
          f"(draper_adder at {n_bits} bits, LRU)\n")

    print("Boundary pricing (the compute-memory transfer network):")
    net_rows = []
    for name, stack in stacks.items():
        (net,) = stack.networks()
        net_rows.append([
            name,
            net.memory_point.label, net.cache_point.label,
            net.demote_time_s, net.promote_time_s,
            net.channels_per_transfer, net.effective_concurrency,
        ])
    print(format_table(
        ["stack", "from", "to", "demote (s)", "promote (s)",
         "chan/xfer", "concurrency"],
        net_rows,
    ))
    print()

    circuit = build_workload("draper_adder", n_bits)
    capacity = next(iter(stacks.values())).levels[0].capacity
    order = simulate_optimized(circuit, capacity).order
    run_rows = []
    for name, stack in stacks.items():
        run = simulate_hierarchy_run(stack, circuit, order=order)
        run_rows.append([
            name, run.total_time_s, run.speedup, run.hit_rate,
            run.transfer_bound_fraction, run.transfers,
        ])
    print("Simulated runs (reservation model, shared fetch order):")
    print(format_table(
        ["stack", "makespan (s)", "speedup", "hit rate",
         "xfer-bound", "transfers"],
        run_rows,
    ))
    print()

    mixed = run_rows[2]
    fastest_pure = min(run_rows[:2], key=lambda row: row[1])
    print(f"mixed makespan {mixed[1]:.1f}s vs best pure "
          f"({fastest_pure[0]}) {fastest_pure[1]:.1f}s — the cross-code "
          "boundary charges both codes' EC periods per transfer and "
          "caps concurrency at the wider channel requirement")


if __name__ == "__main__":
    main()
