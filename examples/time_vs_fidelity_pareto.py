"""Time vs fidelity: the Pareto front of a 3-level Draper-adder stack.

Every engine run can be priced in *both* currencies: makespan from the
event kernel, and logical error from `repro.sim.residency`, which
integrates each qubit's per-level residency intervals against
Monte-Carlo-calibrated noise rates (qubits parked in the leakier outer
levels, and qubits in flight across a boundary, decohere faster than
qubits held in the compute level).

This example sweeps a 3-level Steane stack over the eviction-policy and
prefetcher axes — the plain `lru` policy against the noise-aware
`fidelity` policy, demand fetching against `next_k` prefetching — and
reports the two-objective results with the Pareto-front rows starred:
no other configuration is both at least as fast and at least as
reliable.

Run:  python examples/time_vs_fidelity_pareto.py [n_bits]
"""

import sys

from repro.analysis.report import format_table
from repro.core.design_space import engine_sweep, pareto_rows

POLICIES = ("lru", "fidelity")
PREFETCHES = ("none", "next_k")
TRIALS = 500
SEED = 7


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 32

    rows = engine_sweep(
        workloads=["draper_adder"],
        sizes=[n_bits],
        code_keys=["steane"],
        depths=[3],
        policies=list(POLICIES),
        prefetches=list(PREFETCHES),
        transfer_options=[10],
        code_pairs=(),
        cache=False,
        fidelity={"trials": TRIALS, "seed": SEED},
    )
    front = {id(row) for row in pareto_rows(rows)}

    print("Time vs fidelity on a 3-level Steane stack "
          f"(draper_adder at {n_bits} bits, {TRIALS} MC trials)\n")
    table = []
    for row in sorted(rows, key=lambda r: r.makespan_s):
        table.append([
            row.policy, row.prefetch, row.makespan_s,
            f"{row.logical_error:.3e}", f"{row.transit_error:.3e}",
            "*" if id(row) in front else "",
        ])
    print(format_table(
        ["policy", "prefetch", "makespan (s)", "logical err",
         "transit err", "pareto"],
        table,
    ))
    print()

    fastest = min(rows, key=lambda r: r.makespan_s)
    safest = min(rows, key=lambda r: r.logical_error)
    print(f"fastest: {fastest.policy}/{fastest.prefetch} at "
          f"{fastest.makespan_s:.1f}s ({fastest.logical_error:.3e})")
    print(f"most reliable: {safest.policy}/{safest.prefetch} at "
          f"{safest.makespan_s:.1f}s ({safest.logical_error:.3e})")
    print("rows marked * form the pareto front: nothing else is both "
          "at least as fast and at least as reliable")


if __name__ == "__main__":
    main()
