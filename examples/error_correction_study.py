"""Error-correction deep dive: codes, schedules, noise, transfers.

Exercises the ECC layer end to end: verifies both codes correct every
single-qubit error, runs the cycle-accurate level-1 EC schedules on the
trap machine, Monte-Carlo-estimates logical error rates under
depolarizing noise, and prints the code-transfer latency matrix that
powers the memory hierarchy.

Run:  python examples/error_correction_study.py
"""

from repro.analysis.report import format_table
from repro.analysis.tables import table3_text
from repro.ecc import (
    bacon_shor_code,
    bacon_shor_syndrome_schedule,
    logical_error_rate,
    steane_code,
    steane_syndrome_schedule,
)
from repro.ecc.concatenated import bacon_shor_concatenated, steane_concatenated
from repro.ecc.pauli import enumerate_errors


def main() -> None:
    print("Single-error correction check")
    for code in (steane_code(), bacon_shor_code()):
        failures = sum(
            1 for e in enumerate_errors(code.n, 1) if not code.correct(e)[1]
        )
        print(f"  {code.name}: {3 * code.n} errors, {failures} failures")
    print()

    print("Level-1 syndrome extraction on the trap machine")
    for cost in (steane_syndrome_schedule(), bacon_shor_syndrome_schedule()):
        print(f"  {cost.code_name}: {cost.cycles} cycles "
              f"({cost.duration_s * 1e3:.2f} ms per syndrome)")
    print()

    print("Concatenated timing (Table 2)")
    rows = []
    for concat in (steane_concatenated(), bacon_shor_concatenated()):
        for level in (1, 2):
            rows.append([
                f"{concat.spec.display_name} L{level}",
                f"{concat.ec_time_s(level):.4f}",
                f"{concat.qubit_area_mm2(level):.3f}",
                f"{concat.failure_rate(level):.2e}",
            ])
    print(format_table(
        ["code", "EC time (s)", "tile (mm^2)", "failure/op"], rows,
    ))
    print()

    print("Monte Carlo logical error rates (depolarizing, 4000 trials)")
    rows = []
    for code in (steane_code(), bacon_shor_code()):
        for p in (0.001, 0.005, 0.02):
            result = logical_error_rate(code, p, trials=4000, seed=42)
            rows.append([
                code.name, p, f"{result.logical_error_rate:.4f}",
                f"{result.standard_error:.4f}",
            ])
    print(format_table(["code", "p_physical", "p_logical", "std err"], rows))
    print()

    print(table3_text())


if __name__ == "__main__":
    main()
