"""Explore the CQLA design space beyond the paper's published points.

Sweeps compute-block counts for one problem size, showing the
utilization/performance balance of Section 5.1; then runs the
Section 7 extensions — mixed-granularity level scheduling and the
laser-control budget — to see how much headroom the paper left.

Run:  python examples/design_space_exploration.py [n_bits]
"""

import sys

from repro.analysis.report import format_table
from repro.analysis.sensitivity import memory_pressure
from repro.arch.regions import CqlaFloorplan
from repro.circuits.modexp import modexp_logical_qubits
from repro.core import CqlaDesign
from repro.core.granularity import granularity_study
from repro.physical.control import control_budget, control_reduction
from repro.sim.scheduler import adder_balanced_utilization


def sweep_blocks(n_bits: int) -> None:
    rows = []
    for side in range(2, 13):
        k = side * side
        design = CqlaDesign("bacon_shor", n_bits, k)
        util = adder_balanced_utilization(n_bits, k)
        rows.append([
            k,
            f"{util:.2f}",
            f"{design.speedup():.2f}",
            f"{design.area_reduction():.2f}",
            f"{design.gain_product():.1f}",
        ])
    print(format_table(
        ["blocks", "utilization", "speedup", "area x", "gain product"],
        rows,
        title=f"Block-count sweep, {n_bits}-bit modexp (Bacon-Shor)",
    ))
    print()


def granularity(n_bits: int, k: int) -> None:
    study = granularity_study(CqlaDesign("bacon_shor", n_bits, k))
    rows = [
        [f"{p.l1_fraction:.1f}", f"{p.adder_speedup:.2f}",
         "yes" if p.safe else "no"]
        for p in study.points
    ]
    print(format_table(
        ["L1 op share", "adder speedup", "fidelity-safe"],
        rows,
        title="Mixed-granularity scheduling (Section 7 direction)",
    ))
    best = study.best_safe()
    fixed = study.paper_policy_point()
    print(f"paper 1:2 policy: {fixed.adder_speedup:.2f}x;"
          f" best safe share {best.l1_fraction:.0%}: "
          f"{best.adder_speedup:.2f}x")
    print()


def control(n_bits: int, k: int) -> None:
    plan = CqlaFloorplan(
        "bacon_shor",
        memory_qubits=modexp_logical_qubits(n_bits),
        l2_blocks=k,
        l1_blocks=9,
    )
    budget = control_budget(plan)
    print(f"Control budget ({n_bits}-bit, {k} blocks): "
          f"{budget.laser_banks} laser banks, "
          f"{budget.electrode_signals / 1e6:.0f}M electrode signals, "
          f"{control_reduction(plan, n_bits):.1f}x fewer lasers than QLA")
    print()


def main() -> None:
    n_bits = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    k = 49 if n_bits == 256 else None
    sweep_blocks(n_bits)
    if k is None:
        from repro.core.design_space import performance_blocks

        k = performance_blocks(n_bits)
    granularity(n_bits, k)
    control(n_bits, k)
    rows = [
        [p.n_bits, f"{p.memory_fraction:.0%}", f"{p.compute_fraction:.0%}"]
        for p in memory_pressure("bacon_shor")
    ]
    print(format_table(
        ["bits", "memory share", "compute share"],
        rows,
        title="Floorplan pressure: memory dominates as problems grow",
    ))


if __name__ == "__main__":
    main()
