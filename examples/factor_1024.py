"""Provision a CQLA to factor a 1024-bit number (Shor's algorithm).

The paper's motivating workload: walks the full design flow —
reliability budget (Gottesman Equation 1), encoding-level selection,
floorplan area, modular-exponentiation runtime, QFT communication — for
both error-correcting codes, and prints the comparison.

Run:  python examples/factor_1024.py
"""

from repro import CqlaDesign, FidelityBudget, MemoryHierarchy, QlaMachine
from repro.ecc.concatenated import by_key
from repro.sim.comm import modexp_breakdown, qft_breakdown

N_BITS = 1024
N_BLOCKS = 121


def provision(code_key: str) -> None:
    design = CqlaDesign(code_key, n_bits=N_BITS, n_blocks=N_BLOCKS)
    code = by_key(code_key)
    budget = FidelityBudget(code_key, N_BITS,
                            adder_slots=design.adder_makespan_slots())
    hierarchy = MemoryHierarchy(design, parallel_transfers=10)
    modexp = modexp_breakdown(code_key, N_BITS, N_BLOCKS)
    qft = qft_breakdown(code_key, N_BITS)

    print(f"=== {code.spec.display_name} ===")
    print(f"application K*Q:        {budget.kq:.2e}"
          f"  (error budget {budget.budget_per_op:.2e}/op)")
    print(f"required recursion:     level {budget.required_level()}"
          f"  (L2 failure rate {budget.failure_rate(2):.2e})")
    print(f"max L1 op fraction:     {budget.max_l1_op_fraction():.0%}"
          f"  -> 1:2 interleave safe: {budget.policy_is_safe(1 / 3)}")
    print(f"CQLA area:              {design.area_mm2() / 1e6:.3f} m^2"
          f"  ({design.area_reduction():.1f}x smaller than QLA)")
    print(f"modexp computation:     {modexp.computation_hours:.0f} h"
          f"  (+{modexp.communication_hours:.0f} h communication)")
    print(f"QFT total:              {qft.computation_s / 3600:.1f} h compute,"
          f" {qft.communication_s / 3600:.1f} h communication")
    print(f"hierarchy adder speedup: {hierarchy.adder_speedup():.2f}x"
          f"  -> gain product {hierarchy.gain_product():.0f}")
    print()


def main() -> None:
    qla = QlaMachine(N_BITS)
    print(f"Factoring a {N_BITS}-bit number")
    print(f"QLA baseline: {qla.area_m2():.2f} m^2, "
          f"modexp in {qla.modexp_time_s() / 3600:.0f} h")
    print()
    for code_key in ("steane", "bacon_shor"):
        provision(code_key)


if __name__ == "__main__":
    main()
