"""Property pins for the traffic/price factorization and the fast DES.

Two invariants carry the whole batched-sweep design:

* **Traffic invariance** — reservation-model replacement traffic is a
  function of geometry (capacities, depth), policy, and the gate trace
  alone.  Stacks that differ only in code assignment (which codes
  encode which levels, how many parallel transfer channels) must
  produce the *byte-identical* serialized movement trace, which is why
  one simulation can be re-priced across the whole code axis.
* **Pricing exactness** — replaying that trace through the re-pricer
  must equal the direct simulator with ``==`` on every row field (the
  floats come out of the same arithmetic, not a tolerance away from
  it), for both the scalar and the numpy batch engines.

Plus the split-transaction pin: the flattened event loop
(:mod:`repro.sim.fastsplit`) dispatched by ``simulate_hierarchy_run``
is held bit-identical to the retained reference across a policy ×
prefetcher × stack matrix.
"""

import random

import pytest

from repro.circuits.workloads import build_workload
from repro.sim.cache import simulate_optimized
from repro.sim.levels import (
    mixed_stack,
    simulate_hierarchy_run,
    simulate_hierarchy_run_audited,
    standard_stack,
)
from repro.sim.policies import available_policies
from repro.sim.prefetch import available_prefetchers
from repro.sim.replay import (
    extract_movement_trace,
    price_movement_trace_batch,
    price_movement_traces_multi,
)


def _code_variants(depth, compute_qubits, cache_factor, parallel_transfers):
    """Every code assignment of one fixed geometry."""
    kwargs = dict(depth=depth, compute_qubits=compute_qubits,
                  cache_factor=cache_factor,
                  parallel_transfers=parallel_transfers)
    return [
        standard_stack("steane", **kwargs),
        standard_stack("bacon_shor", **kwargs),
        mixed_stack("steane", "bacon_shor", **kwargs),
        mixed_stack("bacon_shor", "steane", **kwargs),
    ]


def _random_cases(count, seed=2006):
    rng = random.Random(seed)
    cases = []
    for _ in range(count):
        cases.append(dict(
            workload=rng.choice(["draper_adder", "qft", "modexp_trace"]),
            n_bits=rng.choice([12, 16, 24, 32]),
            depth=rng.choice([2, 3, 4]),
            compute_qubits=rng.choice([8, 12, 17]),
            cache_factor=rng.choice([1.0, 1.5]),
            parallel_transfers=rng.choice([5, 10]),
            policy=rng.choice(available_policies()),
        ))
    return cases


class TestTrafficInvariance:
    @pytest.mark.parametrize("case", _random_cases(10),
                             ids=lambda c: f"{c['workload']}-{c['n_bits']}-"
                                           f"d{c['depth']}-{c['policy']}")
    def test_trace_bytes_and_pricing_exact(self, case):
        circuit = build_workload(case["workload"], case["n_bits"])
        stacks = _code_variants(case["depth"], case["compute_qubits"],
                                case["cache_factor"],
                                case["parallel_transfers"])
        order = simulate_optimized(
            circuit, stacks[0].levels[0].capacity
        ).order
        traces = [
            extract_movement_trace(stack, circuit, case["policy"],
                                   order=order)
            for stack in stacks
        ]
        blobs = {trace.to_bytes() for trace in traces}
        assert len(blobs) == 1, "movement trace depends on code assignment"

        direct = [
            simulate_hierarchy_run(stack, circuit, case["policy"],
                                   order=order)
            for stack in stacks
        ]
        scalar = price_movement_trace_batch(traces[0], stacks,
                                            engine="scalar")
        assert scalar == direct

    def test_numpy_engine_exact(self):
        # One case through the vectorized pricer, above the auto
        # threshold: replicating the stack list must replicate the rows
        # exactly — the numpy path is arithmetic-identical, not close.
        circuit = build_workload("draper_adder", 24)
        stacks = _code_variants(3, 12, 1.0, 10) * 16
        order = simulate_optimized(
            circuit, stacks[0].levels[0].capacity
        ).order
        trace = extract_movement_trace(stacks[0], circuit, "lru",
                                       order=order)
        batched = price_movement_trace_batch(trace, stacks, engine="numpy")
        direct = [
            simulate_hierarchy_run(stack, circuit, "lru", order=order)
            for stack in stacks
        ]
        assert batched == direct


class TestMultiGroupPricing:
    """Whole-grid one-pass pricing vs per-group batched pricing.

    ``price_movement_traces_multi`` pads variable-length traces from
    many traffic groups into one structured batch; every engine must
    return rows ``==``-identical to ``price_movement_trace_batch`` run
    per group.  The group set is deliberately ragged — different
    workloads, sizes, depths, policies, and *unequal config counts* —
    so the padding tail, and groups whose trailing gates are miss-free
    (the ``reduceat`` fold's boundary case), are all exercised.
    """

    # (workload, n_bits, depth, policy, widths); qft-12-d2 has ~11
    # trailing miss-free gates, modexp is the longest trace, and the
    # widths lists give groups 8, 4, and 12 priced configurations.
    GROUP_SPECS = [
        ("draper_adder", 16, 3, "lru", (5, 10)),
        ("qft", 12, 2, "belady", (7,)),
        ("modexp_trace", 12, 2, "fifo", (4, 8, 12)),
    ]

    @staticmethod
    def _build(specs):
        groups = []
        for workload, n_bits, depth, policy, widths in specs:
            circuit = build_workload(workload, n_bits)
            stacks = [
                stack
                for width in widths
                for stack in _code_variants(depth, 12, 1.0, width)
            ]
            order = simulate_optimized(
                circuit, stacks[0].levels[0].capacity
            ).order
            trace = extract_movement_trace(stacks[0], circuit, policy,
                                           order=order)
            groups.append((trace, stacks))
        return groups

    def test_trailing_missfree_gates_present(self):
        # The boundary case must actually be in the fixture: a group
        # whose last gates incur no misses (the fold must leave their
        # arrival rows at zero, not clip into the prior gate's segment).
        groups = self._build(self.GROUP_SPECS)
        assert any(
            trace.n_misses > 0 and trace.gate_nmiss[-1] == 0
            for trace, _ in groups
        )

    @pytest.mark.parametrize("engine", ["auto", "grouped", "numpy"])
    def test_exact_vs_per_group(self, engine):
        groups = self._build(self.GROUP_SPECS)
        expected = [
            price_movement_trace_batch(trace, stacks)
            for trace, stacks in groups
        ]
        assert price_movement_traces_multi(groups, engine=engine) == expected

    @pytest.mark.parametrize("engine", ["auto", "grouped", "numpy"])
    def test_single_group_and_empty(self, engine):
        groups = self._build(self.GROUP_SPECS[:1])
        expected = [price_movement_trace_batch(*groups[0])]
        assert price_movement_traces_multi(groups, engine=engine) == expected
        assert price_movement_traces_multi([], engine=engine) == []


class TestFastSplitEquivalence:
    """The flattened split-transaction loop vs the retained reference."""

    CASES = [
        ("draper_adder", 48, 2), ("draper_adder", 48, 3), ("qft", 32, 3),
    ]

    @pytest.mark.parametrize("policy", available_policies())
    @pytest.mark.parametrize("prefetch", available_prefetchers())
    @pytest.mark.parametrize("workload,n_bits,depth", CASES)
    def test_bit_identical_to_reference(self, workload, n_bits, depth,
                                        policy, prefetch):
        circuit = build_workload(workload, n_bits)
        for stack in (
            standard_stack("steane", depth, compute_qubits=12),
            mixed_stack("bacon_shor", "steane", depth=depth,
                        compute_qubits=12),
        ):
            order = simulate_optimized(
                circuit, stack.levels[0].capacity
            ).order
            fast = simulate_hierarchy_run(
                stack, circuit, policy, order=order, prefetch=prefetch,
                pipeline=True,
            )
            reference, _ = simulate_hierarchy_run_audited(
                stack, circuit, policy, order=order, prefetch=prefetch,
                pipeline=True,
            )
            assert fast == reference
