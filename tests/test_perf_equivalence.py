"""Equivalence tests: rewritten hot paths vs retained references.

The incremental fetch scheduler, the batched Monte Carlo decoder, and
the N-level hierarchy engine are rewrites of paths whose numbers the
paper tables depend on — each must produce *bit-identical* output to
the implementation it replaced.  The references are kept in the tree
(``simulate_optimized_reference``, ``logical_error_rate_reference``,
``simulate_l1_run_reference``) as executable specifications, and these
tests pin the new paths to them.
"""

import pytest

from repro.circuits.workloads import build_workload
from repro.core.design_space import hierarchy_sweep
from repro.ecc.bacon_shor import bacon_shor_code
from repro.ecc.montecarlo import (
    logical_error_rate,
    logical_error_rate_reference,
    sample_depolarizing_batch,
)
from repro.ecc.steane import steane_code
from repro.sim.cache import simulate_optimized, simulate_optimized_reference
from repro.sim.hierarchy_sim import simulate_l1_run, simulate_l1_run_reference
from repro.sim.levels import (
    simulate_hierarchy_run,
    simulate_hierarchy_run_reference,
    standard_stack,
)
from repro.sim.policies import available_policies
from repro.sim.scheduler import _adder_circuit

COMPUTE_QUBITS = 27


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("n_bits", [8, 32, 128])
    @pytest.mark.parametrize("cache_factor", [1.0, 1.5, 2.0])
    def test_order_and_stats_identical(self, n_bits, cache_factor):
        circuit = _adder_circuit(n_bits, False)
        capacity = max(1, int(round(cache_factor * COMPUTE_QUBITS)))
        fast = simulate_optimized(circuit, capacity)
        ref = simulate_optimized_reference(circuit, capacity)
        assert fast.order == ref.order
        assert fast.stats == ref.stats

    @pytest.mark.parametrize("window", [1, 2, 5, 16])
    def test_windowed_identical(self, window):
        circuit = _adder_circuit(32, False)
        fast = simulate_optimized(circuit, 40, window=window)
        ref = simulate_optimized_reference(circuit, 40, window=window)
        assert fast.order == ref.order
        assert fast.stats == ref.stats


class TestHierarchyEngineEquivalence:
    """The generalized N-level engine, run as a two-level LRU stack,
    must reproduce the original Table 5 simulator field for field."""

    @pytest.mark.parametrize("code_key", ["steane", "bacon_shor"])
    @pytest.mark.parametrize("n_bits", [32, 64])
    @pytest.mark.parametrize("par", [5, 10])
    def test_two_level_lru_bit_identical(self, code_key, n_bits, par):
        engine = simulate_l1_run(
            code_key, n_bits, parallel_transfers=par, cache=False
        )
        ref = simulate_l1_run_reference(
            code_key, n_bits, parallel_transfers=par
        )
        # Frozen-dataclass equality: every field exactly equal, floats
        # included — no tolerance.
        assert engine == ref

    @pytest.mark.parametrize("compute_qubits,cache_factor", [
        (27, 1.0), (27, 1.5), (81, 2.0),
    ])
    def test_cache_geometry_variants_identical(
        self, compute_qubits, cache_factor
    ):
        engine = simulate_l1_run(
            "steane", 64, compute_qubits=compute_qubits,
            cache_factor=cache_factor, cache=False,
        )
        ref = simulate_l1_run_reference(
            "steane", 64, compute_qubits=compute_qubits,
            cache_factor=cache_factor,
        )
        assert engine == ref

    def test_caller_supplied_circuit_identical(self):
        circuit = _adder_circuit(32, False)
        engine = simulate_l1_run("steane", 32, circuit=circuit)
        ref = simulate_l1_run_reference("steane", 32, circuit=circuit)
        assert engine == ref

    def test_table5_speedups_unchanged(self):
        """Every Table 5 cell's L1 speedup survives the refactor exactly."""
        rows = hierarchy_sweep(cache=False)
        assert rows
        for row in rows:
            ref = simulate_l1_run_reference(
                row.code_key, row.n_bits,
                parallel_transfers=row.parallel_transfers,
            )
            assert row.l1_speedup == ref.l1_speedup


class TestEventKernelEngineEquivalence:
    """The event-kernel engine's reservation model (prefetch="none",
    pipelining disabled) must reproduce the retained PR 2 sequential
    loop field for field on every engine-sweep cell shape."""

    @pytest.mark.parametrize("workload", ["draper_adder", "qft",
                                          "modexp_trace"])
    @pytest.mark.parametrize("depth", [2, 3, 4])
    @pytest.mark.parametrize("policy", available_policies())
    def test_engine_sweep_cells_bit_identical(self, workload, depth, policy):
        stack = standard_stack("steane", depth, compute_qubits=12,
                               cache_factor=1.0)
        circuit = build_workload(workload, 16)
        engine = simulate_hierarchy_run(stack, circuit, policy=policy)
        ref = simulate_hierarchy_run_reference(stack, circuit, policy=policy)
        # Frozen-dataclass equality: every field exactly equal, floats
        # included — no tolerance.
        assert engine == ref

    @pytest.mark.parametrize("code_key", ["steane", "bacon_shor"])
    def test_paper_geometry_bit_identical(self, code_key):
        stack = standard_stack(code_key, 3)
        circuit = build_workload("draper_adder", 64)
        engine = simulate_hierarchy_run(stack, circuit)
        ref = simulate_hierarchy_run_reference(stack, circuit)
        assert engine == ref

    def test_explicit_pipeline_false_with_prefetch_raises(self):
        stack = standard_stack("steane", 3, compute_qubits=12,
                               cache_factor=1.0)
        with pytest.raises(ValueError, match="pipeline"):
            simulate_hierarchy_run(stack, "qft", prefetch="next_k",
                                   pipeline=False)

    def test_reference_validates_like_the_engine(self):
        # The reference is the executable spec: a typo'd fetch mode
        # must raise, not silently run the in-order schedule.
        stack = standard_stack("steane", 3, compute_qubits=12,
                               cache_factor=1.0)
        with pytest.raises(ValueError, match="unknown fetch mode"):
            simulate_hierarchy_run_reference(stack, "qft",
                                             fetch="optimised")
        with pytest.raises(ValueError, match="contradict"):
            simulate_hierarchy_run_reference(stack, "qft",
                                             fetch="in-order", order=[0, 1])


class TestMonteCarloEquivalence:
    @pytest.mark.parametrize("code_fn", [steane_code, bacon_shor_code])
    @pytest.mark.parametrize("p,trials,seed", [
        (0.002, 500, 11),
        (0.01, 800, 7),
        (0.05, 400, 3),
        (0.2, 200, 42),
    ])
    def test_failure_counts_identical(self, code_fn, p, trials, seed):
        code = code_fn()
        fast = logical_error_rate(code, p, trials=trials, seed=seed)
        ref = logical_error_rate_reference(code, p, trials=trials, seed=seed)
        assert fast.failures == ref.failures
        assert fast.trials == ref.trials
        assert fast.physical_error_rate == ref.physical_error_rate

    def test_batch_sampler_matches_scalar_stream(self):
        """Batch sampling must consume the RNG exactly like the scalar
        sampler: trial t of a batch equals the t-th scalar draw."""
        import numpy as np

        from repro.ecc.montecarlo import sample_depolarizing

        batch_rng = np.random.default_rng(5)
        scalar_rng = np.random.default_rng(5)
        batch = sample_depolarizing_batch(7, 0.3, 20, batch_rng)
        for t in range(20):
            pauli = sample_depolarizing(7, 0.3, scalar_rng)
            assert tuple(batch[t, :7]) == pauli.x
            assert tuple(batch[t, 7:]) == pauli.z
