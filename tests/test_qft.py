"""Tests for the QFT workload."""

import pytest

from repro.circuits.gates import GateKind
from repro.circuits.qft import QftCommunication, qft_circuit, qft_gate_counts


class TestCircuit:
    def test_gate_counts_exact(self):
        c = qft_circuit(8)
        h_count, cp_count = qft_gate_counts(8)
        assert c.count(GateKind.H) == h_count == 8
        assert c.count(GateKind.CPHASE) == cp_count == 28

    def test_rotation_orders(self):
        c = qft_circuit(4)
        orders = [g.param for g in c.gates if g.kind is GateKind.CPHASE]
        assert min(orders) == 2
        assert max(orders) == 4

    def test_approximate_qft_truncates(self):
        exact = qft_circuit(16)
        approx = qft_circuit(16, approximation_degree=4)
        assert len(approx) < len(exact)
        orders = [g.param for g in approx.gates if g.kind is GateKind.CPHASE]
        assert max(orders) <= 4

    def test_single_qubit(self):
        c = qft_circuit(1)
        assert len(c) == 1
        assert c.gates[0].kind is GateKind.H

    def test_validation(self):
        with pytest.raises(ValueError):
            qft_circuit(0)
        with pytest.raises(ValueError):
            qft_circuit(4, approximation_degree=0)


class TestCommunication:
    def test_all_to_all_message_count(self):
        comm = QftCommunication(10)
        assert comm.messages == 45
        assert len(comm.pair_list()) == 45

    def test_pairs_unique_ordered(self):
        pairs = QftCommunication(6).pair_list()
        assert len(set(pairs)) == len(pairs)
        assert all(i < j for i, j in pairs)
