"""Tests for the extension modules: Shor model, control costs,
mixed-granularity scheduling, and sensitivity analyses."""

import pytest

from repro.analysis.sensitivity import (
    adder_ablation,
    cache_ablation,
    memory_pressure,
    policy_ablation,
    technology_scaling,
)
from repro.arch.regions import CqlaFloorplan
from repro.circuits.shor import shor_estimate, shor_kq
from repro.core.cqla import CqlaDesign
from repro.core.granularity import (
    fine_grained_gain,
    granularity_study,
)
from repro.physical.control import (
    MEMS_FANOUT,
    control_budget,
    control_reduction,
    laser_power,
    qla_control_budget,
)


class TestShorModel:
    def test_estimate_fields(self):
        e = shor_estimate("bacon_shor", 256, 49)
        assert e.logical_qubits == 5 * 256 + 512
        assert e.modexp_time_s > e.qft_time_s
        assert e.total_time_s == pytest.approx(
            e.modexp_time_s + e.qft_time_s
        )

    def test_qft_is_minor_fraction(self):
        # Section 6.1: the QFT is a small fraction of Shor's algorithm.
        e = shor_estimate("bacon_shor", 512, 81)
        assert e.qft_fraction < 0.35

    def test_shor_1024_within_weeks_on_bacon_shor(self):
        e = shor_estimate("bacon_shor", 1024, 121)
        assert 5 < e.total_time_days < 120

    def test_steane_slower(self):
        st = shor_estimate("steane", 256, 49)
        bs = shor_estimate("bacon_shor", 256, 49)
        assert st.total_time_s > 2 * bs.total_time_s

    def test_kq_scale(self):
        kq = shor_kq("steane", 1024, 121)
        assert 1e10 < kq < 1e12


class TestControl:
    def test_laser_power_proportional_to_fanout(self):
        assert laser_power(8) == 8.0
        with pytest.raises(ValueError):
            laser_power(0)

    def test_budget_counts(self):
        plan = CqlaFloorplan("steane", memory_qubits=160, l2_blocks=9)
        budget = control_budget(plan)
        assert budget.laser_banks >= 1
        assert budget.total_fanout > 9 * 49  # at least compute data ions
        assert budget.electrode_signals > 0
        assert budget.power_per_bank <= MEMS_FANOUT

    def test_cqla_needs_fewer_lasers_than_qla(self):
        plan = CqlaFloorplan("steane", memory_qubits=5120, l2_blocks=121)
        assert control_reduction(plan, 1024) > 3.0

    def test_qla_budget_scales_with_qubits(self):
        small = qla_control_budget(64)
        large = qla_control_budget(256)
        assert large.laser_banks > small.laser_banks


class TestGranularity:
    @pytest.fixture(scope="class")
    def study(self):
        return granularity_study(CqlaDesign("bacon_shor", 64, 16))

    def test_sweep_covers_unit_interval(self, study):
        fractions = [p.l1_fraction for p in study.points]
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_speedup_monotone_in_l1_share(self, study):
        speedups = [p.adder_speedup for p in study.points]
        assert speedups == sorted(speedups)

    def test_paper_policy_point(self, study):
        point = study.paper_policy_point()
        assert abs(point.l1_fraction - 1 / 3) < 0.12

    def test_best_safe_at_least_paper_policy(self, study):
        assert (
            study.best_safe().adder_speedup
            >= study.paper_policy_point().adder_speedup
        )

    def test_fine_grained_gain_at_least_one(self):
        gain = fine_grained_gain(CqlaDesign("bacon_shor", 64, 16))
        assert gain >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            granularity_study(CqlaDesign("steane", 64, 16), steps=1)


class TestSensitivity:
    def test_technology_scaling_monotone(self):
        points = technology_scaling("steane", scales=(1.0, 100.0))
        assert points[0].level1_failure < points[1].level1_failure
        assert points[0].level_for_shor_1024 <= points[1].level_for_shor_1024

    def test_far_above_threshold_needs_no_level(self):
        points = technology_scaling("steane", scales=(1e5,))
        # p0 above threshold: recursion cannot help (flagged as -1).
        assert points[0].level_for_shor_1024 == -1

    def test_policy_ablation_ordering(self):
        points = policy_ablation(CqlaDesign("bacon_shor", 64, 16))
        by_fraction = sorted(points, key=lambda p: p.l1_op_fraction)
        speeds = [p.adder_speedup for p in by_fraction]
        assert speeds == sorted(speeds)

    def test_adder_ablation_penalty(self):
        ab = adder_ablation(64, 16)
        assert 1.5 < ab.in_place_penalty < 3.0

    def test_cache_ablation_hit_rate_monotone(self):
        points = cache_ablation("steane", 64, factors=(0.5, 2.0))
        assert points[1].hit_rate >= points[0].hit_rate

    def test_memory_pressure_grows_with_size(self):
        points = memory_pressure("steane", sizes=(32, 1024))
        assert points[1].memory_fraction > points[0].memory_fraction
        for p in points:
            assert 0 < p.memory_fraction < 1
            assert 0 < p.compute_fraction < 1
