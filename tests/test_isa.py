"""Tests for the assembly-like ISA (Section 5.2 instruction format)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GateKind, cnot_gate, cphase_gate, toffoli_gate
from repro.circuits.isa import (
    IsaError,
    assemble,
    assemble_line,
    disassemble,
    gates_from_lines,
    read_program,
    round_trip,
    write_program,
)
from repro.circuits.qft import qft_circuit


class TestAssembleLine:
    def test_basic_gates(self):
        g = assemble_line("cnot q0 q5")
        assert g.kind is GateKind.CNOT
        assert g.qubits == (0, 5)

    def test_toffoli(self):
        g = assemble_line("toffoli q1 q2 q3")
        assert g.qubits == (1, 2, 3)

    def test_cphase_with_order(self):
        g = assemble_line("cphase q3 q1 4")
        assert g.param == 4

    def test_case_insensitive_mnemonic(self):
        assert assemble_line("CNOT q0 q1").kind is GateKind.CNOT

    def test_errors(self):
        with pytest.raises(IsaError):
            assemble_line("")
        with pytest.raises(IsaError):
            assemble_line("frobnicate q0")
        with pytest.raises(IsaError):
            assemble_line("cnot q0")
        with pytest.raises(IsaError):
            assemble_line("cnot q0 five")
        with pytest.raises(IsaError):
            assemble_line("cphase q0 q1")  # missing order
        with pytest.raises(IsaError):
            assemble_line("x q0 junk")


class TestAssembleProgram:
    def test_comments_and_blanks_skipped(self):
        text = """
        # a small program
        h q0
        cnot q0 q1  # entangle
        """
        c = assemble(text)
        assert len(c) == 2
        assert c.n_qubits == 2

    def test_qubit_count_inferred(self):
        c = assemble("x q9")
        assert c.n_qubits == 10

    def test_explicit_qubit_count_respected(self):
        c = assemble("x q0", n_qubits=16)
        assert c.n_qubits == 16

    def test_empty_program_rejected(self):
        with pytest.raises(IsaError):
            assemble("# nothing here")


class TestRoundTrip:
    def test_qft_round_trips(self):
        original = qft_circuit(6)
        restored = round_trip(original)
        assert len(restored) == len(original)
        for a, b in zip(original.gates, restored.gates):
            assert a == b

    def test_mixed_circuit_round_trips(self):
        c = Circuit(n_qubits=4, gates=[
            toffoli_gate(0, 1, 2), cnot_gate(2, 3), cphase_gate(0, 3, 2),
        ], name="mixed")
        assert round_trip(c).gates == c.gates

    def test_disassemble_has_header(self):
        c = Circuit(n_qubits=2, gates=[cnot_gate(0, 1)], name="t")
        text = disassemble(c)
        assert text.startswith("# t: 2 qubits")


class TestFileIo:
    def test_write_and_read(self, tmp_path):
        c = qft_circuit(4)
        path = tmp_path / "qft.qasm"
        write_program(str(path), c)
        restored = read_program(str(path), n_qubits=4)
        assert restored.gates == c.gates

    def test_gates_from_lines_streaming(self):
        gates = gates_from_lines(["h q0", "# skip", "cnot q0 q1"])
        assert len(gates) == 2
