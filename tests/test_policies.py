"""Eviction-policy registry and policy invariants.

Every registered policy must (a) keep the resident set within
capacity at all times, (b) pair each eviction with exactly one
write-back transfer — qubits are uncopyable, an eviction *is* a move —
and (c) lose to Belady's offline-optimal replacement on no tested
workload.
"""

import pytest

from repro.circuits.workloads import build_workload
from repro.sim.cache import LruCache
from repro.sim.levels import (
    simulate_hierarchy_run,
    standard_stack,
    two_level_stack,
)
from repro.sim.policies import (
    EvictionPolicy,
    PolicyCache,
    available_policies,
    make_policy,
    register_policy,
)

#: Small stacks keep the resident set under pressure so replacement
#: decisions actually differ between policies.
PRESSURED = dict(compute_qubits=12, cache_factor=1.0)

WORKLOADS = [
    ("draper_adder", 32),
    ("qft", 32),
    ("modexp_trace", 16),
]


def _trace(workload, n_bits):
    circuit = build_workload(workload, n_bits)
    return [q for gate in circuit.gates for q in gate.qubits]


class TestRegistry:
    def test_shipped_policies_registered(self):
        names = available_policies()
        for expected in ("belady", "fifo", "lru", "score"):
            assert expected in names

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("clairvoyant")

    def test_fresh_instance_per_call(self):
        assert make_policy("lru") is not make_policy("lru")

    def test_duplicate_registration_rejected(self):
        class Dup(EvictionPolicy):
            name = "lru"

        with pytest.raises(ValueError, match="already registered"):
            register_policy(Dup)

    def test_abstract_name_rejected(self):
        class Anon(EvictionPolicy):
            pass

        with pytest.raises(ValueError, match="concrete"):
            register_policy(Anon)


class TestResidentSetInvariant:
    @pytest.mark.parametrize("policy_name", available_policies())
    @pytest.mark.parametrize("workload,n_bits", WORKLOADS)
    def test_resident_never_exceeds_capacity(
        self, policy_name, workload, n_bits
    ):
        trace = _trace(workload, n_bits)
        capacity = 8
        cache = PolicyCache(capacity, make_policy(policy_name), trace)
        for pos, q in enumerate(trace):
            cache.access_evicting(q, pos)
            assert len(cache) <= capacity
        stats = cache.stats
        assert stats.accesses == len(trace)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.evictions <= stats.misses

    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            PolicyCache(1, make_policy("lru"), [])


class TestLruMatchesLegacyCache:
    @pytest.mark.parametrize("workload,n_bits", WORKLOADS)
    def test_stats_identical_to_lrucache(self, workload, n_bits):
        trace = _trace(workload, n_bits)
        legacy = LruCache(16)
        policy = PolicyCache(16, make_policy("lru"), trace)
        for pos, q in enumerate(trace):
            legacy_hit = legacy.access(q)
            policy_hit, _ = policy.access_evicting(q, pos)
            assert legacy_hit == policy_hit
        assert policy.stats == legacy.stats
        assert sorted(policy.resident()) == sorted(legacy.resident())


class TestEvictionWritebackPairing:
    @pytest.mark.parametrize("policy_name", available_policies())
    @pytest.mark.parametrize("depth", [2, 3])
    @pytest.mark.parametrize("workload,n_bits", WORKLOADS)
    def test_each_eviction_is_a_writeback(
        self, policy_name, depth, workload, n_bits
    ):
        stack = standard_stack("steane", depth, **PRESSURED)
        run = simulate_hierarchy_run(stack, build_workload(workload, n_bits),
                                     policy=policy_name)
        # level_stats[k].evictions are the qubits pushed out of level k;
        # writebacks[k] are the moves across network k away from the
        # compute level.  Uncopyable qubits: these must match 1:1.
        for k in range(depth - 1):
            assert run.level_stats[k].evictions == run.writebacks[k]

    @pytest.mark.parametrize("policy_name", available_policies())
    def test_qubit_conservation(self, policy_name):
        circuit = build_workload("draper_adder", 32)
        stack = standard_stack("steane", 3, **PRESSURED)
        run = simulate_hierarchy_run(stack, circuit, policy=policy_name)
        assert sum(s.final_occupancy for s in run.level_stats) == len(
            circuit.touched_qubits()
        )
        for level, stat in zip(stack.levels, run.level_stats):
            if level.capacity is not None:
                assert stat.final_occupancy <= level.capacity


class TestOperandPinning:
    """A gate's operands cannot be teleported away while it issues:
    victim selection must skip the in-flight operands (qubits are
    uncopyable, and the gate needs all of them resident at once)."""

    def _tiny_stack(self):
        from repro.sim.levels import HierarchyStack, MemoryLevel

        return HierarchyStack((
            MemoryLevel("L1", "steane", 1, 2),
            MemoryLevel("memory", "steane", 2, None),
        ))

    @pytest.mark.parametrize("policy_name", available_policies())
    def test_current_gate_operand_never_evicted(self, policy_name):
        from repro.circuits.gates import cnot_gate
        from repro.circuits.circuit import Circuit

        # Capacity-2 compute level, gates (0,1), (0,2), (0,3) in order.
        # Without pinning, FIFO/score/Belady may evict qubit 0 while
        # gate (0,2) is issuing (0 is the oldest/least-useful-looking
        # resident), making 0 a spurious miss at gate (0,3).  With
        # pinning, 0 stays resident through every gate: exactly 2 hits.
        circuit = Circuit(n_qubits=4, gates=[
            cnot_gate(0, 1), cnot_gate(0, 2), cnot_gate(0, 3),
        ])
        run = simulate_hierarchy_run(
            self._tiny_stack(), circuit, policy=policy_name,
            fetch="in-order",
        )
        assert run.level_stats[0].hits == 2
        assert run.level_stats[0].misses == 4

    def test_unsatisfiable_pin_falls_back(self):
        from repro.circuits.gates import toffoli_gate
        from repro.circuits.circuit import Circuit

        # A Toffoli has three operands but the level holds two: the pin
        # cannot be satisfied, and the engine must still make progress
        # (the reference LRU model evicts an in-gate operand here too).
        circuit = Circuit(n_qubits=3, gates=[toffoli_gate(0, 1, 2)])
        for policy_name in available_policies():
            run = simulate_hierarchy_run(
                self._tiny_stack(), circuit, policy=policy_name,
                fetch="in-order",
            )
            assert run.level_stats[0].misses == 3


class TestBeladyUpperBound:
    @pytest.mark.parametrize("workload,n_bits", WORKLOADS)
    @pytest.mark.parametrize("other", ["lru", "fifo", "score"])
    def test_belady_hit_rate_dominates(self, workload, n_bits, other):
        circuit = build_workload(workload, n_bits)
        stack = two_level_stack("steane", **PRESSURED)
        belady = simulate_hierarchy_run(stack, circuit, policy="belady")
        online = simulate_hierarchy_run(stack, circuit, policy=other)
        assert belady.hit_rate >= online.hit_rate - 1e-12

    def test_policies_actually_differ_under_pressure(self):
        circuit = build_workload("modexp_trace", 16)
        stack = two_level_stack("steane", **PRESSURED)
        rates = {
            name: simulate_hierarchy_run(stack, circuit, policy=name).hit_rate
            for name in available_policies()
        }
        assert len(set(rates.values())) > 1, rates
