"""Tests for the sweep query service (repro.service).

The service is read-only plumbing over a store backend: every test
spins a :class:`~repro.service.server.BackgroundService` on a daemon
thread against a real store (fs or sqlite) and speaks to it through
:class:`~repro.service.client.ServiceClient` — the same stack the CI
``sweep-service`` job drives over HTTP from the shell.
"""

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from urllib.request import urlopen

import pytest

from repro.core.design_space import engine_grid, transfer_grid
from repro.analysis.tables import engine_table_text_from_store
from repro.perf.backends import open_store
from repro.service import BackgroundService, ServiceClient, ServiceError
from repro.sweep.runner import compute_grid, kernel_registry

GRID_KWARGS = dict(workloads=("draper_adder",), sizes=(16,), depths=(2,))

FAILURE = {
    "kind": "exception",
    "exception_type": "ChaosFault",
    "message": "scripted",
    "attempts": 3,
    "traceback_digest": "abc123def456",
}


def fill(grid, store):
    fn, row_type = kernel_registry()[grid.kernel]
    return compute_grid(grid, fn, row_type, store=store)


@pytest.fixture(params=("fs", "sqlite"))
def warm(request, tmp_path):
    """A completed transfer grid in either backend, plus its locator."""
    if request.param == "fs":
        locator = f"fs:{tmp_path / 'store'}"
    else:
        locator = f"sqlite:{tmp_path / 'store.db'}"
    store = open_store(locator)
    grid = transfer_grid()
    fill(grid, store)
    return store, grid, locator


class TestEndpoints:
    def test_healthz_names_the_deployment(self, warm):
        store, grid, locator = warm
        with BackgroundService(store, grid, locator=locator) as svc:
            health = ServiceClient(svc.url).healthz()
        assert health == {
            "ok": True,
            "kernel": "transfer_cell",
            "cells": 16,
            "store": locator,
        }

    def test_status_reports_the_grid_split(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            status = ServiceClient(svc.url).status()
        assert status["total"] == 16
        assert status["done"] == 16
        assert status["missing"] == 0
        assert status["failed"] == 0
        assert status["complete"] is True

    def test_table_matches_direct_render(self, warm):
        store, grid, _ = warm
        from repro.analysis.tables import render_table_from_store

        with BackgroundService(store, grid) as svc:
            table = ServiceClient(svc.url).table()
        assert table == render_table_from_store(grid, store)
        assert "Table 3" in table

    def test_engine_table_byte_identical_to_from_store_text(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = open_store(f"sqlite:{tmp_path / 'engine.db'}")
        fill(grid, store)
        with BackgroundService(store, grid) as svc:
            table = ServiceClient(svc.url).table()
        assert table == engine_table_text_from_store(store, **GRID_KWARGS)

    def test_cells_lists_every_design_point(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            payload = ServiceClient(svc.url).cells()
        assert payload["total"] == 16
        assert len(payload["cells"]) == 16
        assert all(cell["done"] for cell in payload["cells"])
        assert [c["key"] for c in payload["cells"]] == list(grid.keys())

    def test_cell_lookup_roundtrips_the_record(self, warm):
        store, grid, _ = warm
        key = next(iter(grid.keys()))
        with BackgroundService(store, grid) as svc:
            payload = ServiceClient(svc.url).cell(key)
        assert payload["key"] == key
        assert payload["value"] == store.get(key)
        assert payload["meta"]["kernel"] == "transfer_cell"

    def test_unknown_cell_is_404(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            with pytest.raises(ServiceError) as exc_info:
                ServiceClient(svc.url).cell("no-such-cell")
        assert exc_info.value.code == 404
        assert exc_info.value.payload["error"] == "missing"
        assert exc_info.value.payload["failure"] is None

    def test_quarantined_cell_404_carries_the_failure(self, tmp_path):
        grid = transfer_grid()
        store = open_store(f"sqlite:{tmp_path / 'store.db'}")
        key = next(iter(grid.keys()))
        store.put_failure(key, FAILURE)
        with BackgroundService(store, grid) as svc:
            with pytest.raises(ServiceError) as exc_info:
                ServiceClient(svc.url).cell(key)
        assert exc_info.value.code == 404
        assert exc_info.value.payload["failure"] == FAILURE

    def test_incomplete_store_answers_409_then_degrades(self, tmp_path):
        grid = transfer_grid()
        store = open_store(f"fs:{tmp_path / 'store'}")
        with BackgroundService(store, grid) as svc:
            client = ServiceClient(svc.url)
            with pytest.raises(ServiceError) as exc_info:
                client.table()
            assert exc_info.value.code == 409
            assert exc_info.value.payload["error"] == "store incomplete"
            assert exc_info.value.payload["done"] == 0
            assert exc_info.value.payload["total"] == 16
            assert "allow_missing=1" in exc_info.value.payload["hint"]
            degraded = client.table(allow_missing=True)
            assert degraded  # renders holes instead of refusing

    def test_service_sees_writes_landing_after_startup(self, tmp_path):
        """No snapshotting: a stale 409 turns into a table once the
        sweep finishes, without restarting the service."""
        grid = transfer_grid()
        store = open_store(f"sqlite:{tmp_path / 'store.db'}")
        with BackgroundService(store, grid) as svc:
            client = ServiceClient(svc.url)
            assert client.status()["done"] == 0
            fill(grid, store)
            assert client.status()["complete"] is True
            assert "Table 3" in client.table()

    def test_unknown_route_is_404(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            with pytest.raises(ServiceError) as exc_info:
                ServiceClient(svc.url)._get_json("/v1/nope")
        assert exc_info.value.code == 404


class TestProgressStream:
    def test_complete_store_streams_one_final_tick(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            ticks = list(
                ServiceClient(svc.url).progress(interval=0.05, ticks=50)
            )
        assert len(ticks) == 1
        assert ticks[0]["complete"] is True
        assert ticks[0]["done"] == 16
        assert ticks[0]["total"] == 16

    def test_stream_follows_an_inflight_sweep(self, tmp_path):
        grid = transfer_grid()
        store = open_store(f"sqlite:{tmp_path / 'store.db'}")
        fn, row_type = kernel_registry()[grid.kernel]
        cells = list(grid.cells)
        with BackgroundService(store, grid) as svc:
            client = ServiceClient(svc.url)
            stream = client.progress(interval=0.05, ticks=1000)
            seen = []
            for tick in stream:
                seen.append(tick)
                if tick["complete"]:
                    break
                # Play the sweep: land a few more cells between polls.
                for cell in cells[: 4 * len(seen)]:
                    store.put(
                        cell.key,
                        asdict(fn(cell.as_dict())),
                        kernel=grid.kernel,
                        params=cell.as_dict(),
                    )
        assert seen[-1]["complete"] is True
        done = [tick["done"] for tick in seen]
        assert done == sorted(done)  # progress is monotone
        assert done[-1] == 16
        assert all(tick["failed"] == 0 for tick in seen)
        assert all(tick["elapsed_s"] >= 0 for tick in seen)

    def test_stream_is_chunked_ndjson_on_the_wire(self, warm):
        """curl-compatibility: plain HTTP, one JSON object per line."""
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            with urlopen(svc.url + "/v1/progress?interval=0.05") as response:
                assert response.headers["Transfer-Encoding"] == "chunked"
                assert response.headers["Content-Type"].startswith(
                    "application/x-ndjson"
                )
                lines = [line for line in response if line.strip()]
        assert json.loads(lines[-1])["complete"] is True


class TestConcurrentReaders:
    def test_many_simultaneous_readers_agree(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            url = svc.url

            def read(_):
                client = ServiceClient(url)
                return client.table(), client.status()["done"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(read, range(8)))
        tables = {table for table, _ in results}
        assert len(tables) == 1
        assert all(done == 16 for _, done in results)

    def test_readers_do_not_block_the_progress_stream(self, warm):
        store, grid, _ = warm
        with BackgroundService(store, grid) as svc:
            client = ServiceClient(svc.url)
            with ThreadPoolExecutor(max_workers=4) as pool:
                stream = pool.submit(
                    lambda: list(client.progress(interval=0.05))
                )
                tables = [pool.submit(client.table) for _ in range(3)]
                assert stream.result(timeout=10)[-1]["complete"] is True
                assert len({f.result(timeout=10) for f in tables}) == 1
