"""Tests for the quantum cache simulator (Section 5.2 / Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import cnot_gate, x_gate
from repro.sim.cache import (
    LruCache,
    hit_rate_study,
    simulate_in_order,
    simulate_optimized,
    simulate_optimized_reference,
)
from repro.sim.scheduler import _adder_circuit


class TestLruCache:
    def test_capacity_enforced(self):
        cache = LruCache(2)
        for q in range(5):
            cache.access(q)
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_lru_eviction_order(self):
        cache = LruCache(2)
        cache.access(0)
        cache.access(1)
        cache.access(0)   # 0 is now most recent
        cache.access(2)   # evicts 1
        assert 0 in cache and 2 in cache and 1 not in cache

    def test_hit_miss_counting(self):
        cache = LruCache(4)
        assert not cache.access(7)   # miss
        assert cache.access(7)       # hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_peek_does_not_touch(self):
        cache = LruCache(1)
        cache.access(0)
        assert cache.peek_hits([0, 1]) == 1
        assert cache.stats.accesses == 1  # peek not counted

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruCache(0)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=60))
    @settings(max_examples=40)
    def test_never_exceeds_capacity(self, refs):
        cache = LruCache(3)
        for q in refs:
            cache.access(q)
            assert len(cache) <= 3

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=40))
    @settings(max_examples=40)
    def test_counters_consistent(self, refs):
        cache = LruCache(2)
        for q in refs:
            cache.access(q)
        s = cache.stats
        assert s.hits + s.misses == s.accesses == len(refs)


class TestInOrder:
    def test_streaming_never_hits(self):
        c = Circuit(n_qubits=16, gates=[x_gate(q) for q in range(16)])
        stats = simulate_in_order(c, capacity=4)
        assert stats.hit_rate == 0.0

    def test_tight_loop_always_hits_after_warmup(self):
        gates = [cnot_gate(0, 1) for _ in range(10)]
        c = Circuit(n_qubits=2, gates=gates)
        stats = simulate_in_order(c, capacity=2)
        assert stats.misses == 2
        assert stats.hits == 18


class TestOptimized:
    def test_order_is_valid_topological_permutation(self):
        circuit = _adder_circuit(16, False)
        result = simulate_optimized(circuit, capacity=24)
        order = result.order
        assert sorted(order) == list(range(len(circuit.gates)))
        position = {idx: pos for pos, idx in enumerate(order)}
        dag = CircuitDag.build(circuit)
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert position[p] < position[i]

    def test_beats_in_order_on_the_adder(self):
        circuit = _adder_circuit(64, False)
        in_order = simulate_in_order(circuit, capacity=81)
        optimized = simulate_optimized(circuit, capacity=81)
        assert optimized.stats.hit_rate > 2 * in_order.hit_rate

    def test_window_limits_lookahead(self):
        circuit = _adder_circuit(16, False)
        full = simulate_optimized(circuit, capacity=24)
        narrow = simulate_optimized(circuit, capacity=24, window=1)
        assert narrow.stats.hit_rate <= full.stats.hit_rate + 1e-9

    def test_reordered_gates_helper(self):
        circuit = _adder_circuit(8, False)
        result = simulate_optimized(circuit, capacity=12)
        gates = result.reordered_gates(circuit)
        assert len(gates) == len(circuit.gates)


class TestWindowedFetch:
    """Regression coverage for ``simulate_optimized(window=k)``."""

    def test_window_one_picks_arrival_order(self):
        # With a single-entry window there is no choice to make: every
        # pick takes the oldest ready instruction, so the schedule is
        # the dependency-respecting analogue of in-order issue.
        circuit = _adder_circuit(16, False)
        result = simulate_optimized(circuit, capacity=24, window=1)
        assert sorted(result.order) == list(range(len(circuit.gates)))
        position = {idx: pos for pos, idx in enumerate(result.order)}
        dag = CircuitDag.build(circuit)
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert position[p] < position[i]

    def test_window_one_matches_reference(self):
        circuit = _adder_circuit(32, False)
        fast = simulate_optimized(circuit, capacity=40, window=1)
        ref = simulate_optimized_reference(circuit, capacity=40, window=1)
        assert fast.order == ref.order
        assert fast.stats == ref.stats

    def test_window_none_is_whole_program(self):
        # A window at least as large as the gate count is the same as
        # no window at all.
        circuit = _adder_circuit(16, False)
        unwindowed = simulate_optimized(circuit, capacity=24, window=None)
        huge = simulate_optimized(
            circuit, capacity=24, window=len(circuit.gates)
        )
        assert unwindowed.order == huge.order
        assert unwindowed.stats == huge.stats

    def test_window_hit_rates_monotone_in_practice(self):
        circuit = _adder_circuit(32, False)
        narrow = simulate_optimized(circuit, capacity=40, window=1)
        full = simulate_optimized(circuit, capacity=40, window=None)
        assert narrow.stats.hit_rate <= full.stats.hit_rate + 1e-9
        # The whole-program window is what recovers the paper's ~85%
        # region; a unit window falls well short of it.
        assert full.stats.hit_rate > narrow.stats.hit_rate

    def test_stats_account_every_access(self):
        circuit = _adder_circuit(16, False)
        for window in (1, 4, None):
            stats = simulate_optimized(
                circuit, capacity=24, window=window
            ).stats
            expected = sum(len(g.qubits) for g in circuit.gates)
            assert stats.accesses == expected
            assert stats.hits + stats.misses == expected

    def test_invalid_window_rejected(self):
        circuit = _adder_circuit(8, False)
        with pytest.raises(ValueError):
            simulate_optimized(circuit, capacity=12, window=0)


class TestHitRateStudy:
    def test_study_covers_policies_and_sizes(self):
        points = hit_rate_study([16, 32], compute_qubits=20,
                                cache_factors=(1.0, 2.0))
        assert len(points) == 2 * 2 * 2
        policies = {p.policy for p in points}
        assert policies == {"in-order", "optimized"}

    def test_optimized_dominates_each_config(self):
        points = hit_rate_study([32], compute_qubits=27)
        by_cap = {}
        for p in points:
            by_cap.setdefault(p.capacity, {})[p.policy] = p.hit_rate
        for rates in by_cap.values():
            assert rates["optimized"] > rates["in-order"]
