"""Tests for circuit-level fault injection."""

import numpy as np
import pytest

from repro.ecc.clifford import cnot, h
from repro.ecc.fault_injection import (
    bacon_shor_encoder_injection,
    circuit_pseudo_threshold,
    fault_locations,
    inject_encoder_faults,
    sample_circuit_error,
    steane_encoder_injection,
)
from repro.ecc.steane import encoder_circuit, steane_code


class TestSampling:
    def test_fault_locations_count(self):
        circuit = [h(0), cnot(0, 1), cnot(1, 2)]
        assert fault_locations(circuit) == 1 + 2 + 2

    def test_zero_rate_yields_identity(self):
        rng = np.random.default_rng(0)
        err = sample_circuit_error(encoder_circuit(), 7, 0.0, rng)
        assert err.is_identity()

    def test_full_rate_yields_errors(self):
        rng = np.random.default_rng(0)
        err = sample_circuit_error(encoder_circuit(), 7, 1.0, rng)
        assert not err.is_identity()

    def test_faults_propagate_through_cnots(self):
        """An X fault on a CNOT control before a fan-out must spread."""
        rng = np.random.default_rng(1)
        circuit = [cnot(0, 1), cnot(0, 2)]
        spread = 0
        for _ in range(200):
            err = sample_circuit_error(circuit, 3, 0.3, rng)
            if err.weight >= 2:
                spread += 1
        assert spread > 0


class TestInjection:
    def test_zero_noise_never_fails(self):
        result = steane_encoder_injection(0.0, trials=50, seed=1)
        assert result.failures == 0

    def test_reproducible(self):
        a = steane_encoder_injection(0.01, trials=400, seed=9)
        b = steane_encoder_injection(0.01, trials=400, seed=9)
        assert a.failures == b.failures

    def test_low_noise_suppressed(self):
        result = steane_encoder_injection(0.0005, trials=3000, seed=5)
        # Circuit-level: still suppressed well below the physical rate
        # after one ideal EC of the encoder output.
        assert result.logical_error_rate < 0.01

    def test_bacon_shor_injection_runs(self):
        result = bacon_shor_encoder_injection(0.002, trials=800, seed=4)
        assert result.fault_locations == 18  # 6 H + 6 CNOT x 2 qubits
        assert 0.0 <= result.logical_error_rate < 0.1

    def test_rate_monotonicity(self):
        lo = steane_encoder_injection(0.001, trials=2500, seed=2)
        hi = steane_encoder_injection(0.03, trials=2500, seed=2)
        assert hi.logical_error_rate > lo.logical_error_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_encoder_faults(steane_code(), encoder_circuit(), 1.5)
        with pytest.raises(ValueError):
            inject_encoder_faults(
                steane_code(), encoder_circuit(), 0.1, trials=0
            )


class TestPseudoThreshold:
    def test_threshold_scan(self):
        crossing, results = circuit_pseudo_threshold(
            steane_code(), encoder_circuit(),
            rates=(0.0003, 0.003, 0.03), trials=1200, seed=7,
        )
        assert len(results) == 3
        assert 0.0003 <= crossing <= 0.03
