"""Tests for the code-transfer network against the paper's Table 3."""

import pytest

from repro.analysis import paper_values
from repro.ecc.transfer import (
    CodePoint,
    TransferNetwork,
    standard_points,
    transfer_matrix,
    transfer_time_s,
)


class TestCodePoint:
    def test_labels(self):
        assert CodePoint("steane", 1).label == "7-L1"
        assert CodePoint("bacon_shor", 2).label == "9-L2"

    def test_rejects_unencoded(self):
        with pytest.raises(ValueError):
            CodePoint("steane", 0)

    def test_standard_points(self):
        labels = [p.label for p in standard_points()]
        assert labels == ["7-L1", "7-L2", "9-L1", "9-L2"]


class TestTransferTimes:
    def test_diagonal_is_zero(self):
        for p in standard_points():
            assert transfer_time_s(p, p) == 0.0

    def test_matrix_complete(self):
        matrix = transfer_matrix()
        assert len(matrix) == 16

    def test_matches_paper_within_rounding(self):
        """15 of 16 published cells within 35%; the one documented
        outlier (9-L1 -> 9-L2) within a factor of 2.2."""
        matrix = transfer_matrix()
        outliers = []
        for key, paper in paper_values.TRANSFER_S.items():
            ours = matrix[key]
            if paper == 0.0:
                assert ours == 0.0
                continue
            ratio = ours / paper
            if not 0.65 <= ratio <= 1.35:
                outliers.append((key, ratio))
        assert len(outliers) <= 1, f"too many deviating cells: {outliers}"
        for key, ratio in outliers:
            assert 0.45 <= ratio <= 2.2

    def test_demotion_costlier_than_promotion(self):
        # Leaving level 2 costs 4 EC(L2); entering costs 2 EC(L2).
        for code in ("steane", "bacon_shor"):
            down = transfer_time_s(CodePoint(code, 2), CodePoint(code, 1))
            up = transfer_time_s(CodePoint(code, 1), CodePoint(code, 2))
            assert down > up

    def test_source_destination_decomposition(self):
        # T(a->b) + T(b->a) is symmetric under exchanging endpoints.
        a, b = CodePoint("steane", 2), CodePoint("bacon_shor", 1)
        round_trip = transfer_time_s(a, b) + transfer_time_s(b, a)
        reverse = transfer_time_s(b, a) + transfer_time_s(a, b)
        assert round_trip == pytest.approx(reverse)


class TestTransferNetwork:
    def test_effective_concurrency_steane(self):
        net = TransferNetwork("steane", parallel_transfers=10)
        assert net.effective_concurrency == 10.0

    def test_effective_concurrency_bacon_shor(self):
        # Bacon-Shor needs three channels per transfer (Section 5.1).
        net = TransferNetwork("bacon_shor", parallel_transfers=10)
        assert net.effective_concurrency == pytest.approx(10 / 3)

    def test_batch_times_scale_with_waves(self):
        net = TransferNetwork("steane", parallel_transfers=5)
        one_wave = net.batch_demote_time_s(5)
        two_waves = net.batch_demote_time_s(6)
        assert two_waves == pytest.approx(2 * one_wave)

    def test_zero_batch_is_free(self):
        net = TransferNetwork("steane")
        assert net.batch_demote_time_s(0) == 0.0
        assert net.batch_promote_time_s(0) == 0.0

    def test_negative_batch_rejected(self):
        net = TransferNetwork("steane")
        with pytest.raises(ValueError):
            net.batch_demote_time_s(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferNetwork("steane", parallel_transfers=0)

    def test_demote_promote_match_matrix(self):
        net = TransferNetwork("steane")
        matrix = transfer_matrix()
        assert net.demote_time_s == pytest.approx(matrix[("7-L2", "7-L1")])
        assert net.promote_time_s == pytest.approx(matrix[("7-L1", "7-L2")])
