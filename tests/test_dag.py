"""Unit tests for circuit dependency analysis."""

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag, parallelism_series
from repro.circuits.gates import cnot_gate, toffoli_gate, x_gate


def chain_circuit():
    """x(0); cnot(0,1); cnot(1,2) — a pure dependency chain."""
    return Circuit(n_qubits=3, gates=[
        x_gate(0), cnot_gate(0, 1), cnot_gate(1, 2),
    ])


def wide_circuit():
    """Four independent single-qubit gates."""
    return Circuit(n_qubits=4, gates=[x_gate(q) for q in range(4)])


class TestBuild:
    def test_chain_dependencies(self):
        dag = CircuitDag.build(chain_circuit())
        assert dag.preds == [[], [0], [1]]
        assert dag.succs == [[1], [2], []]

    def test_independent_gates(self):
        dag = CircuitDag.build(wide_circuit())
        assert all(not p for p in dag.preds)

    def test_shared_qubit_dedup(self):
        c = Circuit(n_qubits=3, gates=[
            toffoli_gate(0, 1, 2), toffoli_gate(0, 1, 2),
        ])
        dag = CircuitDag.build(c)
        assert dag.preds[1] == [0]  # three shared qubits, one edge


class TestLevels:
    def test_chain_depth(self):
        dag = CircuitDag.build(chain_circuit())
        assert dag.asap_levels() == [0, 1, 2]
        assert dag.depth() == 3

    def test_wide_depth(self):
        dag = CircuitDag.build(wide_circuit())
        assert dag.depth() == 1
        assert dag.max_parallelism() == 4

    def test_profile_sums_to_gate_count(self):
        for circuit in (chain_circuit(), wide_circuit()):
            profile = parallelism_series(circuit)
            assert sum(profile) == len(circuit)

    def test_empty_circuit(self):
        dag = CircuitDag.build(Circuit(n_qubits=1))
        assert dag.depth() == 0
        assert dag.parallelism_profile() == []
        assert dag.critical_path_slots() == 0


class TestWeightedPaths:
    def test_critical_path_respects_durations(self):
        c = Circuit(n_qubits=3, gates=[
            toffoli_gate(0, 1, 2),  # 15 slots
            x_gate(0),              # depends on the toffoli
        ])
        dag = CircuitDag.build(c)
        assert dag.critical_path_slots() == 16
        assert dag.asap_start_slots() == [0, 15]

    def test_downstream_slack_orders_critical_gates_first(self):
        dag = CircuitDag.build(chain_circuit())
        slack = dag.downstream_slack()
        assert slack[0] > slack[1] > slack[2]

    def test_ready_at_start(self):
        dag = CircuitDag.build(chain_circuit())
        assert dag.ready_at_start() == [0]
        dag_wide = CircuitDag.build(wide_circuit())
        assert dag_wide.ready_at_start() == [0, 1, 2, 3]
