"""Mixed-code hierarchy stacks: cross-code pricing, engine runs, sweeps.

The tentpole invariants of the multi-backend-codes change:

* a cross-code ``TransferNetwork`` prices both directions from both
  endpoints' EC periods — the *off-diagonal* Table 3 cells, pinned
  against the published values;
* replacement decisions are a function of (capacity, policy, trace)
  only, so a mixed stack and a pure stack of identical geometry produce
  identical traffic counters while their makespans diverge per the
  boundary pricing;
* pure-code stacks and grids are bit-identical to the pre-mixed-stack
  engine (the same-code equivalence tests elsewhere stay unmodified).
"""

import pytest

from repro.analysis import paper_values, table3_text_from_store
from repro.core.cqla import CqlaDesign
from repro.core.design_space import (
    TransferRow,
    engine_grid,
    engine_sweep,
    transfer_cell,
    transfer_grid,
    transfer_sweep,
)
from repro.core.hierarchy import MemoryHierarchy
from repro.ecc.transfer import CodePoint, TransferNetwork, transfer_time_s
from repro.sim.levels import (
    HierarchyStack,
    MemoryLevel,
    mixed_stack,
    simulate_hierarchy_run,
    simulate_hierarchy_run_audited,
    simulate_hierarchy_run_reference,
    standard_stack,
)
from repro.sim.policies import available_policies
from repro.sweep.cli import main as sweep_main

#: Small, policy-separating engine geometry (matches the engine study).
SMALL = dict(compute_qubits=12, cache_factor=1.0)


class TestCrossCodeNetwork:
    def test_off_diagonal_cells_match_paper(self):
        """Every cross-code Table 3 cell within the same 35% tolerance
        the same-code reproduction meets."""
        for (src, dst), paper in paper_values.TRANSFER_S.items():
            if src[0] == dst[0] or paper == 0.0:
                continue  # same code family (or diagonal): covered elsewhere
            code = {"7": "steane", "9": "bacon_shor"}
            ours = transfer_time_s(
                CodePoint(code[src[0]], int(src[-1])),
                CodePoint(code[dst[0]], int(dst[-1])),
            )
            assert 0.65 <= ours / paper <= 1.35, (src, dst, ours, paper)

    def test_network_prices_from_both_codes(self):
        net = TransferNetwork("bacon_shor", memory_code_key="steane")
        assert net.is_cross_code
        assert net.demote_time_s == transfer_time_s(
            CodePoint("steane", 2), CodePoint("bacon_shor", 1)
        )
        assert net.promote_time_s == transfer_time_s(
            CodePoint("bacon_shor", 1), CodePoint("steane", 2)
        )

    def test_cross_code_direction_asymmetry(self):
        """4 EC(source) + 2 EC(dest) is direction-asymmetric whenever
        the endpoints' EC periods differ, even at equal code levels."""
        a, b = CodePoint("steane", 1), CodePoint("bacon_shor", 1)
        assert transfer_time_s(a, b) != transfer_time_s(b, a)
        # ... but the round trip depends only on the endpoint set: both
        # directions together cost 6 EC periods of each endpoint.
        assert transfer_time_s(a, b) + transfer_time_s(b, a) == pytest.approx(
            6 * (a.ec_time_s() + b.ec_time_s())
        )

    def test_channels_take_the_wider_requirement(self):
        cross = TransferNetwork("steane", memory_code_key="bacon_shor",
                                parallel_transfers=9)
        assert cross.channels_per_transfer == 3
        assert cross.effective_concurrency == pytest.approx(3.0)
        pure = TransferNetwork("steane", parallel_transfers=9)
        assert pure.channels_per_transfer == 1

    def test_same_code_spelled_out_normalizes(self):
        assert (TransferNetwork("steane", memory_code_key="steane")
                == TransferNetwork("steane"))

    def test_unknown_memory_code_rejected(self):
        with pytest.raises(ValueError, match="unknown code key"):
            TransferNetwork("steane", memory_code_key="shor_code")


class TestMixedStacks:
    def test_builder_shapes(self):
        stack = mixed_stack("bacon_shor", "steane", depth=3, **SMALL)
        assert stack.code_keys == ("bacon_shor", "steane", "steane")
        assert stack.is_mixed
        assert [lvl.code_level for lvl in stack.levels] == [1, 2, 3]
        # Same geometry as the pure standard stack.
        pure = standard_stack("steane", 3, **SMALL)
        assert [lvl.capacity for lvl in stack.levels] == \
               [lvl.capacity for lvl in pure.levels]

    def test_same_code_pair_equals_standard_stack(self):
        from repro.sim.levels import two_level_stack

        assert (mixed_stack("steane", "steane", depth=3, **SMALL)
                == standard_stack("steane", 3, **SMALL))
        assert (mixed_stack("steane", "steane", **SMALL)
                == two_level_stack("steane", **SMALL))

    def test_boundary_networks_use_level_codes(self):
        stack = mixed_stack("bacon_shor", "steane", depth=3, **SMALL)
        top_net, lower_net = stack.networks()
        assert top_net.is_cross_code
        assert (top_net.memory_point.label, top_net.cache_point.label) == \
               ("7-L2", "9-L1")
        assert not lower_net.is_cross_code  # steane L3 -> steane L2

    def test_starved_cross_code_network_names_the_boundary(self):
        with pytest.raises(ValueError, match="network 0") as exc:
            mixed_stack("bacon_shor", "steane", parallel_transfers=2)
        message = str(exc.value)
        assert "steane memory" in message
        assert "bacon_shor L1" in message
        assert "3 channels" in message
        # The wider requirement applies whichever side needs it: a
        # Steane compute level over Bacon-Shor memory is starved too.
        with pytest.raises(ValueError, match="network 0"):
            mixed_stack("steane", "bacon_shor", parallel_transfers=2)
        # At exactly the wider requirement both directions are legal.
        assert mixed_stack("bacon_shor", "steane", parallel_transfers=3)
        assert mixed_stack("steane", "bacon_shor", parallel_transfers=3)

    def test_hand_built_arbitrary_mix_is_legal(self):
        stack = HierarchyStack((
            MemoryLevel("L1", "steane", 1, 24),
            MemoryLevel("L2", "bacon_shor", 2, 48),
            MemoryLevel("memory", "steane", 3, None),
        ))
        assert stack.is_mixed
        assert all(net.is_cross_code for net in stack.networks())


class TestMixedEngineRuns:
    @pytest.mark.parametrize("policy", available_policies())
    def test_reservation_model_matches_reference(self, policy):
        stack = mixed_stack("bacon_shor", "steane", **SMALL)
        engine = simulate_hierarchy_run(stack, "draper_adder", policy=policy)
        reference = simulate_hierarchy_run_reference(
            stack, "draper_adder", policy=policy
        )
        assert engine == reference  # field-for-field, float-for-float

    def test_traffic_invariant_under_code_mix(self):
        """Replacement sees only (capacity, policy, trace): a mixed and
        a pure stack of equal geometry move the same qubits, while the
        cross-code boundary reprices the time domain."""
        mixed = simulate_hierarchy_run(
            mixed_stack("bacon_shor", "steane", **SMALL), "draper_adder"
        )
        pure = simulate_hierarchy_run(
            standard_stack("steane", 2, **SMALL), "draper_adder"
        )
        assert mixed.fetches == pure.fetches
        assert mixed.writebacks == pure.writebacks
        assert mixed.level_stats == pure.level_stats
        assert mixed.total_time_s != pure.total_time_s

    @pytest.mark.parametrize("prefetch", ["none", "next_k"])
    def test_audit_invariants_hold_on_mixed_stacks(self, prefetch):
        stack = mixed_stack("bacon_shor", "steane", depth=3, **SMALL)
        run, audit = simulate_hierarchy_run_audited(
            stack, "qft", prefetch=prefetch
        )
        assert audit.conservation_ok
        assert audit.pinned_evictions == 0
        assert all(
            peak <= lanes for peak, lanes
            in zip(audit.port_peak_concurrency, audit.port_lanes)
        )
        # The cross-code boundary's lanes reflect the 3-channel cost.
        assert audit.port_lanes[0] == 3

    def test_cross_code_boundary_reprices_the_makespan(self):
        """The mixed run's transfer waits follow the off-diagonal
        pricing: with Steane memory behind a Bacon-Shor compute level,
        demotions cost ~3x a pure Bacon-Shor stack's, and the makespan
        orders accordingly."""
        mixed = simulate_hierarchy_run(
            mixed_stack("bacon_shor", "steane", **SMALL), "draper_adder"
        )
        pure_bs = simulate_hierarchy_run(
            standard_stack("bacon_shor", 2, **SMALL), "draper_adder"
        )
        assert mixed.transfer_wait_s > pure_bs.transfer_wait_s
        assert mixed.total_time_s > pure_bs.total_time_s


class TestMixedSweepAxis:
    GRID_KWARGS = dict(
        workloads=("draper_adder",), sizes=(16,), depths=(2,),
        policies=("lru",), prefetches=("none",),
    )

    def test_pure_rows_unchanged_by_the_axis(self):
        base = engine_sweep(**self.GRID_KWARGS, cache=False)
        with_pairs = engine_sweep(
            **self.GRID_KWARGS, code_pairs=[("bacon_shor", "steane")],
            cache=False,
        )
        pure = [row for row in with_pairs
                if row.memory_code_key == row.code_key]
        assert pure == base  # bit-identical diagonal cells
        mixed = [row for row in with_pairs
                 if row.memory_code_key != row.code_key]
        assert [(r.code_key, r.memory_code_key) for r in mixed] == \
               [("bacon_shor", "steane")]

    def test_mixed_row_matches_direct_simulation(self):
        (row,) = [
            r for r in engine_sweep(
                **self.GRID_KWARGS, code_pairs=[("bacon_shor", "steane")],
                cache=False,
            )
            if r.memory_code_key != r.code_key
        ]
        from repro.circuits.workloads import build_workload

        run = simulate_hierarchy_run(
            mixed_stack("bacon_shor", "steane", **SMALL),
            build_workload("draper_adder", 16),
        )
        # ENGINE_COMPUTE_QUBITS/ENGINE_CACHE_FACTOR == SMALL by design.
        assert row.makespan_s == run.total_time_s
        assert row.hit_rate == run.hit_rate

    def test_pure_pairs_rejected(self):
        with pytest.raises(ValueError, match="not mixed"):
            engine_grid(code_pairs=[("steane", "steane")])

    def test_sharded_cli_round_trip_with_code_pairs(self, tmp_path):
        args = ["--workloads", "draper_adder", "--sizes", "16",
                "--depths", "2", "--policies", "lru",
                "--prefetches", "none", "--code-pairs", "bacon_shor:steane"]
        store = str(tmp_path / "store")
        for index in range(2):
            assert sweep_main(["run", "--shard", f"{index}/2",
                               "--store", store, *args]) == 0
        assert sweep_main(["merge", "--store", store, "--verify",
                           "--output", str(tmp_path / "rows.json"),
                           *args]) == 0

    @pytest.mark.parametrize("spec", [
        "bacon_shor",                # not a pair
        "steane:steane",             # not mixed
        "shor_code:steane",          # unknown compute code
        "bacon_shor:shor_code",      # unknown memory code
    ])
    def test_bad_code_pairs_fail_at_parse_time(self, tmp_path, spec):
        """Bad pairs die with a clean usage error before any cell runs
        (every subcommand, not just run)."""
        for command in (["run", "--shard", "0/1"], ["status"]):
            with pytest.raises(SystemExit):
                sweep_main([*command, "--store", str(tmp_path / "store"),
                            "--code-pairs", spec])

    def test_unknown_pair_codes_fail_at_grid_build(self):
        with pytest.raises(ValueError, match="unknown code key"):
            engine_grid(code_pairs=[("shor_code", "steane")])


class TestTransferKernel:
    def test_grid_covers_the_full_matrix_once(self):
        grid = transfer_grid()
        assert len(grid) == 16
        pairs = [(c.as_dict()["source_code_key"], c.as_dict()["source_level"],
                  c.as_dict()["dest_code_key"], c.as_dict()["dest_level"])
                 for c in grid]
        assert len(set(pairs)) == 16

    def test_rows_match_the_matrix(self):
        from repro.analysis.tables import table3

        matrix = table3()
        rows = transfer_sweep(cache=False)
        assert len(rows) == 16
        for row in rows:
            assert row.transfer_s == matrix[(row.source, row.dest)]

    def test_cell_kernel_is_pure(self):
        row = transfer_cell(dict(
            source_code_key="steane", source_level=2,
            dest_code_key="bacon_shor", dest_level=1,
        ))
        assert isinstance(row, TransferRow)
        assert (row.source, row.dest) == ("7-L2", "9-L1")
        assert row.channels_per_transfer == 3

    def test_sharded_table3_from_store(self, tmp_path):
        store = str(tmp_path / "store")
        for index in range(2):
            assert sweep_main(["run", "--kernel", "transfer_cell",
                               "--shard", f"{index}/2",
                               "--store", store]) == 0
        text = table3_text_from_store(store)
        assert "Table 3" in text
        for label in ("7-L1", "7-L2", "9-L1", "9-L2"):
            assert label in text

    def test_engine_only_options_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="sizes"):
            sweep_main(["run", "--kernel", "transfer_cell",
                        "--store", str(tmp_path / "store"),
                        "--sizes", "16"])


class TestMixedHierarchyObject:
    def test_l1_code_key_builds_a_mixed_stack(self):
        design = CqlaDesign("steane", 256, 49)
        hierarchy = MemoryHierarchy(design, l1_code_key="bacon_shor")
        stack = hierarchy.stack()
        assert stack.is_mixed
        assert stack.code_keys == ("bacon_shor", "steane")
        assert hierarchy.l1_speedup() > 1.0
        assert hierarchy.l1_speedup() != MemoryHierarchy(design).l1_speedup()

    def test_same_code_l1_normalizes(self):
        design = CqlaDesign("steane", 256, 49)
        assert (MemoryHierarchy(design, l1_code_key="steane")
                == MemoryHierarchy(design))

    def test_unknown_l1_code_fails_at_construction(self):
        from repro.sim.hierarchy_sim import simulate_l1_run

        design = CqlaDesign("steane", 256, 49)
        with pytest.raises(ValueError, match="unknown code key"):
            MemoryHierarchy(design, l1_code_key="shor_code")
        # ... and before any memo lookup on the simulate path too.
        with pytest.raises(ValueError, match="unknown code key"):
            simulate_l1_run("steane", 256, l1_code_key="shor_code")

    def test_floorplan_routes_cross_code_ports(self):
        from repro.arch.regions import CqlaFloorplan
        from repro.ecc.concatenated import by_key

        assert (CqlaFloorplan("steane", 1000, 49, l1_blocks=9,
                              l1_code_key="steane")
                == CqlaFloorplan("steane", 1000, 49, l1_blocks=9))
        plan = CqlaFloorplan("steane", 1000, 49, l1_blocks=9,
                             l1_code_key="bacon_shor")
        net = plan.transfer_network
        assert net.is_cross_code
        assert (net.memory_point.label, net.cache_point.label) == \
               ("7-L2", "9-L1")
        assert plan.cache.code_key == "bacon_shor"
        expected_port = (by_key("steane").qubit_area_mm2(2)
                         + by_key("bacon_shor").qubit_area_mm2(1))
        assert plan.transfer_area_mm2() == pytest.approx(
            plan.parallel_transfers * expected_port
        )
        same = CqlaFloorplan("steane", 1000, 49, l1_blocks=9)
        assert plan.area_mm2() != same.area_mm2()
