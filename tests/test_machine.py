"""Unit tests for the cycle-level trap machine executor."""

import pytest

from repro.physical.layout import GridSpec
from repro.physical.machine import (
    ContentionError,
    MicroOp,
    TrapMachine,
    interaction_cost_cycles,
)
from repro.physical.params import Op, future_params


def make_machine(rows=4, cols=4):
    return TrapMachine(grid=GridSpec(rows=rows, cols=cols))


class TestSetup:
    def test_add_and_position(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        assert m.position("a") == (0, 0)
        assert m.ions() == ["a"]

    def test_duplicate_name_rejected(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        with pytest.raises(ValueError):
            m.add_ion("a", (1, 1))

    def test_out_of_grid_rejected(self):
        m = make_machine()
        with pytest.raises(ValueError):
            m.add_ion("a", (9, 9))

    def test_region_capacity_two(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 0))
        with pytest.raises(ContentionError):
            m.add_ion("c", (0, 0))


class TestExecution:
    def test_single_gate_one_cycle(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        result = m.run([[MicroOp(Op.SINGLE_GATE, ("a",))]])
        assert result.cycles == 1
        assert result.op_counts[Op.SINGLE_GATE] == 1

    def test_move_counts_hops(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        result = m.run([[MicroOp(Op.MOVE, ("a",), dest=(0, 3))]])
        assert result.cycles == 3
        assert m.position("a") == (0, 3)
        assert result.op_counts[Op.MOVE] == 3

    def test_two_qubit_gate_requires_colocation(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 1))
        with pytest.raises(ContentionError):
            m.run([[MicroOp(Op.DOUBLE_GATE, ("a", "b"))]])

    def test_two_qubit_gate_after_move(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 1))
        result = m.run([
            [MicroOp(Op.MOVE, ("a",), dest=(0, 1))],
            [MicroOp(Op.DOUBLE_GATE, ("a", "b"))],
        ])
        assert result.cycles == 2
        assert result.op_counts[Op.DOUBLE_GATE] == 1

    def test_parallel_step_takes_max_duration(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.add_ion("b", (3, 0))
        result = m.run([[
            MicroOp(Op.MOVE, ("a",), dest=(0, 2)),   # 2 hops
            MicroOp(Op.SINGLE_GATE, ("b",)),          # 1 cycle
        ]])
        assert result.cycles == 2

    def test_junction_contention_serializes(self):
        # Two ions entering the same region on the same cycle must
        # serialize (one junction slot per cycle).
        m = make_machine(rows=1, cols=3)
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 2))
        result = m.run([[
            MicroOp(Op.MOVE, ("a",), dest=(0, 1)),
            MicroOp(Op.MOVE, ("b",), dest=(0, 1)),
        ]])
        assert result.stall_cycles > 0
        assert result.cycles == 2  # second entry waits one cycle

    def test_pipelined_following_does_not_stall(self):
        # An ion may enter a region the cycle after another vacated it.
        m = make_machine(rows=1, cols=5)
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 1))
        result = m.run([[
            MicroOp(Op.MOVE, ("a",), dest=(0, 3)),
            MicroOp(Op.MOVE, ("b",), dest=(0, 4)),
        ]])
        assert result.stall_cycles == 0

    def test_unknown_ion(self):
        m = make_machine()
        with pytest.raises(KeyError):
            m.run([[MicroOp(Op.SINGLE_GATE, ("ghost",))]])

    def test_move_to_full_region_rejected(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.add_ion("b", (0, 1))
        m.add_ion("c", (0, 1))
        with pytest.raises(ContentionError):
            m.run([[MicroOp(Op.MOVE, ("a",), dest=(0, 1))]])

    def test_clock_accumulates_over_runs(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        m.run([[MicroOp(Op.SINGLE_GATE, ("a",))]])
        result = m.run([[MicroOp(Op.SINGLE_GATE, ("a",))]])
        assert result.cycles == 2


class TestFailureAccounting:
    def test_failure_probability_accumulates(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        result = m.run([
            [MicroOp(Op.SINGLE_GATE, ("a",))],
            [MicroOp(Op.SINGLE_GATE, ("a",))],
        ])
        p = future_params().failure_rate(Op.SINGLE_GATE)
        assert result.failure_probability == pytest.approx(
            1 - (1 - p) ** 2, rel=1e-6
        )

    def test_zero_failure_ops_contribute_nothing(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        result = m.run([[MicroOp(Op.SPLIT, ("a",))]])
        assert result.failure_probability == 0.0


class TestMicroOpValidation:
    def test_double_gate_arity(self):
        with pytest.raises(ValueError):
            MicroOp(Op.DOUBLE_GATE, ("a",))

    def test_move_needs_dest(self):
        with pytest.raises(ValueError):
            MicroOp(Op.MOVE, ("a",))

    def test_single_op_arity(self):
        with pytest.raises(ValueError):
            MicroOp(Op.MEASURE, ("a", "b"))


class TestHelpers:
    def test_interaction_cost_closed_form(self):
        g = GridSpec(rows=5, cols=5)
        cost = interaction_cost_cycles(g, (0, 0), (0, 3))
        # 3 hops out, 3 hops back, one two-qubit gate cycle.
        assert cost == 2 * 3 * 1 + 1

    def test_duration_properties(self):
        m = make_machine()
        m.add_ion("a", (0, 0))
        result = m.run([[MicroOp(Op.SINGLE_GATE, ("a",))]])
        assert result.duration_us == pytest.approx(10.0)
        assert result.duration_s == pytest.approx(1e-5)
