"""The persistent movement-trace cache (repro.perf.tracecache).

The contract under test: a cache hit is always a *verified, bit-exact*
trace (pricing a loaded trace equals pricing a fresh extraction with
``==``), every conceivable blob defect reads as a miss that silently
re-extracts, concurrent same-key writers are safe, and the durable
counters accumulate across processes and cache instances.
"""

import json
import multiprocessing
import os

import pytest

from repro.circuits.workloads import build_workload
from repro.perf.tracecache import (
    TRACE_SUBDIR,
    TraceCache,
    default_trace_cache,
    resolve_trace_cache,
)
from repro.sim.cache import simulate_optimized
from repro.sim.levels import standard_stack
from repro.sim.replay import (
    TRACE_FORMAT_VERSION,
    MovementTrace,
    extract_movement_trace,
    price_movement_trace_batch,
    trace_key,
)


def _fixture_trace(n_bits=16, depth=3, policy="lru"):
    circuit = build_workload("draper_adder", n_bits)
    stack = standard_stack("steane", depth, compute_qubits=12)
    order = simulate_optimized(circuit, stack.levels[0].capacity).order
    trace = extract_movement_trace(stack, circuit, policy, order=order)
    return trace, stack


class TestSerialization:
    def test_round_trip_bytes_and_pricing(self):
        trace, stack = _fixture_trace()
        blob = trace.to_bytes()
        restored = MovementTrace.from_bytes(blob)
        assert restored == trace
        assert restored.to_bytes() == blob
        assert price_movement_trace_batch(restored, [stack]) == \
            price_movement_trace_batch(trace, [stack])

    def test_from_bytes_rejects_tampering(self):
        trace, _ = _fixture_trace()
        blob = trace.to_bytes()
        with pytest.raises(ValueError):
            MovementTrace.from_bytes(blob[:-10])
        with pytest.raises(ValueError):
            MovementTrace.from_bytes(b"not json at all")
        # Valid JSON of the wrong shape must not round-trip either.
        payload = json.loads(blob.decode("ascii"))
        payload["extra_field"] = 1
        with pytest.raises(ValueError):
            MovementTrace.from_bytes(json.dumps(payload).encode("ascii"))

    def test_trace_key_is_versioned_and_geometry_sensitive(self):
        base = trace_key("token", 3, [12, 24, None])
        assert base != trace_key("other-token", 3, [12, 24, None])
        assert base != trace_key("token", 2, [12, 24, None])
        assert base != trace_key("token", 3, [12, 48, None])
        assert base == trace_key("token", 3, [12, 24, None])


class TestCacheRoundTrip:
    def test_put_get_is_verified_and_exact(self, tmp_path):
        trace, stack = _fixture_trace()
        cache = TraceCache(tmp_path)
        key = trace_key("tok", trace.depth, trace.capacities)
        assert cache.get(key) is None  # cold
        cache.put(key, trace)
        loaded = cache.get(key)
        assert loaded == trace
        assert price_movement_trace_batch(loaded, [stack]) == \
            price_movement_trace_batch(trace, [stack])
        assert len(cache) == 1
        assert cache.counters()["hits"] == 1
        assert cache.counters()["misses"] == 1

    def test_load_or_extract_extracts_exactly_once(self, tmp_path):
        trace, _ = _fixture_trace()
        cache = TraceCache(tmp_path)
        calls = []

        def extract():
            calls.append(1)
            return trace

        first = cache.load_or_extract("k", extract)
        second = cache.load_or_extract("k", extract)
        assert first == trace and second == trace
        assert len(calls) == 1
        assert cache.counters()["extractions"] == 1
        # A second cache instance (another process, a resume) loads the
        # persisted blob without re-extracting.
        other = TraceCache(tmp_path)
        assert other.load_or_extract("k", extract) == trace
        assert len(calls) == 1
        assert other.counters()["extractions"] == 0

    @pytest.mark.parametrize("defect", [
        "truncate", "bitflip", "stale_version", "empty", "garbage",
        "payload_tamper",
    ])
    def test_corrupt_blob_reads_as_miss_and_reextracts(self, tmp_path,
                                                       defect):
        trace, _ = _fixture_trace()
        cache = TraceCache(tmp_path)
        cache.put("k", trace)
        path = cache.blob_path("k")
        blob = path.read_bytes()
        if defect == "truncate":
            path.write_bytes(blob[: len(blob) // 2])
        elif defect == "bitflip":
            flipped = bytearray(blob)
            flipped[len(flipped) // 2] ^= 0x01
            path.write_bytes(bytes(flipped))
        elif defect == "stale_version":
            path.write_bytes(
                blob.replace(
                    f"REPRO-TRACE v{TRACE_FORMAT_VERSION} ".encode(),
                    f"REPRO-TRACE v{TRACE_FORMAT_VERSION + 1} ".encode(),
                )
            )
        elif defect == "empty":
            path.write_bytes(b"")
        elif defect == "garbage":
            path.write_bytes(b"\x00\xff" * 100)
        elif defect == "payload_tamper":
            # Valid header line over a payload whose JSON decodes but
            # whose shape the strict round-trip must reject.
            head, _, payload = blob.partition(b"\n")
            doc = json.loads(payload.decode("ascii"))
            doc.pop("workload")
            path.write_bytes(head + b"\n" + json.dumps(doc).encode())

        assert cache.get("k") is None, defect
        # ...and load_or_extract silently repairs the entry.
        fresh = cache.load_or_extract("k", lambda: trace)
        assert fresh == trace
        assert cache.counters()["extractions"] == 1
        assert cache.get("k") == trace

    def test_clear_drops_blobs_only(self, tmp_path):
        trace, _ = _fixture_trace()
        cache = TraceCache(tmp_path)
        cache.put("a", trace)
        cache.put("b", trace)
        cache.flush_stats()
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_path.is_file()


class TestDurableStats:
    def test_stats_accumulate_across_instances(self, tmp_path):
        trace, _ = _fixture_trace()
        first = TraceCache(tmp_path)
        first.load_or_extract("k", lambda: trace)   # miss + extraction
        second = TraceCache(tmp_path)
        second.load_or_extract("k", lambda: trace)  # hit
        second.flush_stats()
        stats = second.read_stats()
        assert stats["extractions"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] == stats["bytes_written"]

    def test_summary_reports_disk_entries(self, tmp_path):
        trace, _ = _fixture_trace()
        cache = TraceCache(tmp_path)
        cache.load_or_extract("k", lambda: trace)
        summary = cache.summary()
        assert summary["entries"] == 1
        assert summary["entry_bytes"] == cache.blob_path("k").stat().st_size
        assert summary["extractions"] == 1

    def test_corrupt_stats_file_reads_empty(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.directory.mkdir(exist_ok=True)
        cache.stats_path.write_text("{broken json")
        assert cache.read_stats() == {}
        cache.stats_path.write_text('["wrong shape"]')
        assert cache.read_stats() == {}


def _writer_proc(directory, key, n_bits, out_queue):
    trace, _ = _fixture_trace(n_bits=n_bits)
    cache = TraceCache(directory)
    for _ in range(5):
        cache.put(key, trace)
    loaded = cache.get(key)
    out_queue.put(loaded == trace)


class TestConcurrentWriters:
    def test_two_processes_same_key(self, tmp_path):
        # Deterministic extraction means both writers produce identical
        # bytes; the atomic-rename discipline means every interleaved
        # read sees a complete, verifiable blob.
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_writer_proc,
                        args=(str(tmp_path), "shared", 16, queue))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        results = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert all(results)
        cache = TraceCache(tmp_path)
        trace, _ = _fixture_trace(n_bits=16)
        assert cache.get("shared") == trace


class TestResolution:
    def test_resolve_semantics(self, tmp_path, monkeypatch):
        assert resolve_trace_cache(None) is None
        assert resolve_trace_cache(False) is None
        explicit = resolve_trace_cache(tmp_path)
        assert isinstance(explicit, TraceCache)
        assert explicit.directory == tmp_path
        assert resolve_trace_cache(explicit) is explicit
        with pytest.raises(TypeError):
            resolve_trace_cache(123)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_trace_cache(True) is None
        assert default_trace_cache() is None

    def test_default_owns_traces_subdir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_trace_cache()
        assert cache.directory == tmp_path / TRACE_SUBDIR
        assert resolve_trace_cache(True).directory == cache.directory

    def test_namespaces_are_disjoint(self, tmp_path, monkeypatch):
        # memo/, traces/, and (by convention) store/ never collide
        # under one REPRO_CACHE_DIR root.
        from repro.perf.memo import MEMO_SUBDIR, SweepCache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        trace_dir = default_trace_cache().directory
        memo_dir = (tmp_path / MEMO_SUBDIR)
        assert trace_dir != memo_dir
        assert trace_dir.name == TRACE_SUBDIR
        cache = SweepCache(directory=memo_dir)
        assert cache.directory == memo_dir
