"""Unit tests for Clifford conjugation and GF(2) solving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.clifford import (
    cnot,
    conjugate,
    gf2_solve,
    h,
    product_of,
    s,
    sdg,
    stabilizer_group_contains,
    x,
    y,
    z,
)
from repro.ecc.pauli import Pauli

X = Pauli.from_label("X")
Y = Pauli(x=(1,), z=(1,), phase=1)  # true Y operator
Z = Pauli.from_label("Z")


def _eq(a: Pauli, b: Pauli) -> bool:
    return a == b


class TestSingleQubitRules:
    def test_h_swaps_x_and_z(self):
        assert _eq(conjugate(X, [h(0)]), Z)
        assert _eq(conjugate(Z, [h(0)]), X)

    def test_h_negates_y(self):
        out = conjugate(Y, [h(0)])
        assert out.x == (1,) and out.z == (1,)
        assert (out.phase - Y.phase) % 4 == 2  # -Y

    def test_s_sends_x_to_y(self):
        assert _eq(conjugate(X, [s(0)]), Y)

    def test_s_sends_y_to_minus_x(self):
        out = conjugate(Y, [s(0)])
        assert out.label() == "X"
        assert out.phase == 2

    def test_s_fixes_z(self):
        assert _eq(conjugate(Z, [s(0)]), Z)

    def test_sdg_inverts_s(self):
        for p in (X, Y, Z):
            assert _eq(conjugate(conjugate(p, [s(0)]), [sdg(0)]), p)

    def test_x_negates_z(self):
        out = conjugate(Z, [x(0)])
        assert out.label() == "Z" and out.phase == 2

    def test_z_negates_x(self):
        out = conjugate(X, [z(0)])
        assert out.label() == "X" and out.phase == 2

    def test_y_negates_x_and_z(self):
        assert conjugate(X, [y(0)]).phase == 2
        assert conjugate(Z, [y(0)]).phase == 2
        assert _eq(conjugate(Y, [y(0)]), Y)


class TestCnotRules:
    def test_control_x_propagates(self):
        xi = Pauli.from_label("XI")
        assert conjugate(xi, [cnot(0, 1)]).label() == "XX"

    def test_target_z_propagates(self):
        iz = Pauli.from_label("IZ")
        assert conjugate(iz, [cnot(0, 1)]).label() == "ZZ"

    def test_target_x_fixed(self):
        ix = Pauli.from_label("IX")
        assert conjugate(ix, [cnot(0, 1)]).label() == "IX"

    def test_control_z_fixed(self):
        zi = Pauli.from_label("ZI")
        assert conjugate(zi, [cnot(0, 1)]).label() == "ZI"

    def test_yy_goes_to_minus_xz(self):
        yy = Pauli(x=(1, 1), z=(1, 1), phase=2)  # Y (x) Y = i^2 XZ(x)XZ
        out = conjugate(yy, [cnot(0, 1)])
        assert out.label() == "XZ"
        assert out.phase == 2

    def test_cnot_same_qubit_rejected(self):
        with pytest.raises(ValueError):
            cnot(1, 1)


class TestCircuitComposition:
    def test_hxh_then_s(self):
        # S H X H S^dag = S Z S^dag = Z
        out = conjugate(X, [h(0), s(0)])
        assert _eq(out, Z)

    def test_conjugation_is_homomorphism(self):
        gates = [h(0), cnot(0, 1), s(1)]
        a = Pauli.from_label("XZ")
        b = Pauli.from_label("ZY")
        lhs = conjugate(a * b, gates)
        rhs = conjugate(a, gates) * conjugate(b, gates)
        assert lhs == rhs

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=4)
    def test_commutation_preserved(self, seed):
        gates = [h(0), cnot(0, 1), s(1), cnot(1, 0)][: seed + 1]
        a = Pauli.from_label("XZ")
        b = Pauli.from_label("ZX")
        before = a.commutes_with(b)
        after = conjugate(a, gates).commutes_with(conjugate(b, gates))
        assert before == after


class TestGf2Solve:
    def test_simple_combination(self):
        rows = np.array([[1, 0, 0], [0, 1, 0], [1, 1, 1]], dtype=np.uint8)
        combo = gf2_solve(rows, np.array([0, 1, 1], dtype=np.uint8))
        total = np.zeros(3, dtype=np.uint8)
        for i in combo:
            total ^= rows[i]
        assert list(total) == [0, 1, 1]

    def test_unsolvable(self):
        rows = np.array([[1, 0]], dtype=np.uint8)
        with pytest.raises(ValueError):
            gf2_solve(rows, np.array([0, 1], dtype=np.uint8))


class TestGroupContains:
    def test_positive_membership(self):
        gens = [Pauli.from_label("XX"), Pauli.from_label("ZZ")]
        member = gens[0] * gens[1]
        assert stabilizer_group_contains(gens, member)

    def test_sign_sensitivity(self):
        gens = [Pauli.from_label("XX")]
        minus = Pauli(x=(1, 1), z=(0, 0), phase=2)
        assert not stabilizer_group_contains(gens, minus)

    def test_non_member(self):
        gens = [Pauli.from_label("XX")]
        assert not stabilizer_group_contains(gens, Pauli.from_label("XI"))

    def test_product_of(self):
        gens = [Pauli.from_label("XI"), Pauli.from_label("IX")]
        assert product_of(gens, [0, 1]).label() == "XX"
