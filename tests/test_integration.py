"""Integration tests: the paper's headline claims, end to end."""

import pytest

from repro import (
    CqlaDesign,
    MemoryHierarchy,
    QlaMachine,
    carry_lookahead_adder,
)
from repro.core.design_space import hierarchy_sweep, specialization_sweep
from repro.ecc import logical_error_rate, steane_code
from repro.sim.scheduler import parallelism_profiles


class TestHeadlineClaims:
    """The abstract's claims, reproduced end to end."""

    def test_area_savings_up_to_order_ten(self):
        """Abstract: 'up to a factor of thirteen savings in area'.

        Our geometry peaks near 10x (Bacon-Shor, 1024-bit); the paper's
        13.4x for that cell is its own outlier (see EXPERIMENTS.md)."""
        best = max(
            row.area_reduction for row in specialization_sweep()
        )
        assert best > 9.0

    def test_speedup_of_about_eight(self):
        """Abstract: 'increase time performance by a factor of eight'."""
        rows = hierarchy_sweep(sizes=(256,), transfer_options=(10,))
        best = max(row.adder_speedup for row in rows)
        assert best > 7.0

    def test_gain_products_far_exceed_qla(self):
        for row in hierarchy_sweep(sizes=(256,), transfer_options=(10, 5)):
            assert row.gain_product > 10.0

    def test_specialization_minimal_steane_slowdown_at_k2(self):
        """Section 5.1: 'performance is minimally impacted for the
        Steane code' at the performance-leaning block count."""
        d = CqlaDesign("steane", 256, 49)
        assert d.speedup() > 0.9

    def test_bacon_shor_smaller_and_faster(self):
        st = CqlaDesign("steane", 256, 49)
        bs = CqlaDesign("bacon_shor", 256, 49)
        assert bs.area_reduction() > st.area_reduction()
        assert bs.speedup() > 2 * st.speedup()


class TestFigure2Claim:
    def test_fifteen_blocks_suffice_for_64_bit_adder(self):
        data = parallelism_profiles(64, 15)
        assert data["makespan_capped"] <= data["makespan_unlimited"] + 1


class TestCrossStack:
    def test_adder_feeds_scheduler_feeds_design(self):
        adder = carry_lookahead_adder(32, in_place=False)
        design = CqlaDesign("steane", 32, 9)
        # The design's makespan can never beat the adder critical path.
        assert design.adder_makespan_slots() >= adder.n_rounds

    def test_qla_vs_cqla_modexp_consistency(self):
        qla = QlaMachine(64)
        design = CqlaDesign("steane", 64, 16)
        ratio = qla.modexp_time_s() / design.modexp_time_s()
        assert ratio == pytest.approx(design.speedup(), rel=1e-6)

    def test_code_layer_feeds_architecture(self):
        """The algebraic code, EC schedule and area model agree on the
        same object."""
        design = CqlaDesign("bacon_shor", 64, 16)
        from repro.ecc.concatenated import by_key

        concat = by_key("bacon_shor")
        algebraic = concat.algebraic_code()
        assert algebraic.n == concat.spec.n == 9
        # One ideal EC cycle corrects any single-qubit error.
        from repro.ecc.pauli import Pauli

        for q in (0, 4, 8):
            _, ok = algebraic.correct(Pauli.single(9, q, "Y"))
            assert ok

    def test_full_hierarchy_pipeline(self):
        hierarchy = MemoryHierarchy(
            CqlaDesign("bacon_shor", 128, 25), parallel_transfers=10
        )
        assert hierarchy.policy_is_safe()
        assert hierarchy.adder_speedup() > hierarchy.l2_speedup()
        assert hierarchy.gain_product() > 15.0

    def test_monte_carlo_consistent_with_fidelity_model(self):
        """At physical rates far below the pseudo-threshold, one EC
        round suppresses errors — the premise of Equation 1."""
        result = logical_error_rate(steane_code(), 0.001, trials=3000, seed=2)
        assert result.logical_error_rate < 0.001
