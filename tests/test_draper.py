"""Functional and structural tests for the Draper carry-lookahead adder."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.draper import (
    AdderLayout,
    adder_stats,
    carry_lookahead_adder,
)
from repro.circuits.gates import GateKind


@pytest.fixture(scope="module")
def adder16():
    return carry_lookahead_adder(16)


@pytest.fixture(scope="module")
def adder16_out():
    return carry_lookahead_adder(16, in_place=False)


class TestLayout:
    def test_register_sizes(self):
        layout = AdderLayout.allocate(8)
        assert len(layout.a) == 8
        assert len(layout.b) == 8
        assert len(layout.z) == 8
        # Tree nodes: 4 + 2 + 1 at levels 1..3.
        assert len(layout.p_tree) == 7

    def test_qubit_ids_disjoint(self):
        layout = AdderLayout.allocate(8)
        ids = layout.a + layout.b + layout.z + list(layout.p_tree.values())
        assert len(ids) == len(set(ids)) == layout.n_qubits

    def test_carry_indexing(self):
        layout = AdderLayout.allocate(4)
        assert layout.carry(1) == layout.z[0]
        assert layout.carry_out == layout.z[3]
        with pytest.raises(ValueError):
            layout.carry(0)
        with pytest.raises(ValueError):
            layout.carry(5)

    def test_p_node_level_zero_is_b(self):
        layout = AdderLayout.allocate(4)
        assert layout.p_node(0, 2) == layout.b[2]

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            AdderLayout.allocate(1)


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16])
    def test_exhaustive_small_or_sampled(self, n):
        adder = carry_lookahead_adder(n)
        if n <= 4:
            cases = [(a, b) for a in range(1 << n) for b in range(1 << n)]
        else:
            cases = [(0, 0), (1, 1), ((1 << n) - 1, (1 << n) - 1),
                     (0b1010 % (1 << n), 0b0101 % (1 << n)),
                     ((1 << n) - 1, 1)]
        for a, b in cases:
            total, _ = adder.add(a, b)
            assert total == a + b, f"n={n}: {a}+{b} gave {total}"

    def test_a_register_preserved(self, adder16):
        total, final = adder16.add(40961, 12345)
        a_value = sum(
            final[adder16.layout.a[i]] << i for i in range(16)
        )
        assert a_value == 40961

    def test_ancilla_clean_in_place(self, adder16):
        _, final = adder16.add(54321, 65535)
        for j in range(1, 16):
            assert final[adder16.layout.carry(j)] == 0
        for q in adder16.layout.p_tree.values():
            assert final[q] == 0

    def test_carry_out_set_on_overflow(self, adder16):
        total, final = adder16.add(65535, 1)
        assert total == 65536
        assert final[adder16.layout.carry_out] == 1

    def test_out_of_place_sum_correct(self, adder16_out):
        total, _ = adder16_out.add(1234, 4321)
        assert total == 5555

    def test_out_of_place_leaves_true_carries(self, adder16_out):
        a, b = 0b1111000011110000, 0b0000111100001111
        _, final = adder16_out.add(a, b)
        # Recompute carries classically and compare.
        carry = 0
        for i in range(16):
            abit = (a >> i) & 1
            bbit = (b >> i) & 1
            carry = (abit & bbit) | (carry & (abit ^ bbit))
            assert final[adder16_out.layout.carry(i + 1)] == carry

    def test_operand_range_validated(self, adder16):
        with pytest.raises(ValueError):
            adder16.add(1 << 16, 0)
        with pytest.raises(ValueError):
            adder16.add(0, -1)

    @given(
        n=st.integers(min_value=2, max_value=24),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_widths_and_operands(self, n, data):
        a = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        adder = carry_lookahead_adder(n)
        total, final = adder.add(a, b)
        assert total == a + b
        for j in range(1, n):
            assert final[adder.layout.carry(j)] == 0


class TestStructure:
    def test_gate_vocabulary(self, adder16):
        kinds = {g.kind for g in adder16.circuit.gates}
        assert kinds <= {GateKind.X, GateKind.CNOT, GateKind.TOFFOLI}

    def test_toffoli_scaling_linear(self):
        t64 = adder_stats(64, in_place=False).toffoli_count
        t128 = adder_stats(128, in_place=False).toffoli_count
        assert 1.8 < t128 / t64 < 2.2

    def test_round_count_logarithmic(self):
        # Out-of-place rounds ~ 4 lg n + 3 (the published depth).
        for n in (64, 256):
            rounds = carry_lookahead_adder(n, in_place=False).n_rounds
            expected = 4 * int(math.log2(n)) + 3
            assert abs(rounds - expected) <= 2

    def test_stages_monotonic_and_aligned(self, adder16):
        stages = adder16.stages
        assert len(stages) == len(adder16.circuit)
        assert all(b - a in (0, 1) for a, b in zip(stages, stages[1:]))

    def test_in_place_roughly_doubles_work(self):
        out = adder_stats(32, in_place=False)
        inp = adder_stats(32, in_place=True)
        assert 1.6 < inp.toffoli_count / out.toffoli_count < 2.4

    def test_stats_fields(self):
        s = adder_stats(32, in_place=False)
        assert s.n == 32
        assert s.gate_count == s.toffoli_count + s.cnot_count
        assert s.total_ec_slots == 15 * s.toffoli_count + s.cnot_count
        assert s.max_parallelism >= 32
