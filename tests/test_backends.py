"""Backend conformance suite (repro.perf.backends).

Every store backend reachable through a locator must honour the same
contracts the filesystem store established in the atomicity, corruption
and quarantine tests of ``tests/test_store.py`` — so each contract here
is parametrized over ``fs``/``sqlite`` and exercised through the shared
method surface only.  The cross-backend class then pins the stronger
claim: the *same grid* swept into either backend persists byte-identical
record text and merges ``--verify``-clean into byte-identical outputs.
"""

import json
import multiprocessing
import sqlite3
from contextlib import closing

import pytest

from repro.core.design_space import transfer_grid
from repro.perf.backends import (
    STORE_SCHEMES,
    SqliteStore,
    StoreBackendError,
    locator_path,
    open_store,
    parse_locator,
)
from repro.perf.chaos import ChaosPlan
from repro.perf.store import ResultStore, resolve_store
from repro.sweep.cli import main as sweep_main
from repro.sweep.runner import compute_grid, kernel_registry

BACKENDS = ("fs", "sqlite")

FAILURE = {
    "kind": "exception",
    "exception_type": "ChaosFault",
    "message": "scripted",
    "attempts": 3,
    "traceback_digest": "abc123def456",
}


def make_locator(backend, tmp_path, name="store"):
    if backend == "fs":
        return f"fs:{tmp_path / name}"
    return f"sqlite:{tmp_path / name}.db"


def corrupt_record(store, key, text='{"value": [1, 2'):
    """Tear ``key``'s persisted record through the backend's own storage."""
    if isinstance(store, SqliteStore):
        with closing(sqlite3.connect(str(store.path))) as conn, conn:
            conn.execute(
                "UPDATE records SET record=? WHERE key=?", (text, key)
            )
    else:
        store.record_path(key).write_text(text)


def corrupt_failure(store, key, text='{"failure": [torn'):
    if isinstance(store, SqliteStore):
        with closing(sqlite3.connect(str(store.path))) as conn, conn:
            conn.execute(
                "UPDATE failures SET record=? WHERE key=?", (text, key)
            )
    else:
        store.failure_path(key).write_text(text)


def delete_record(store, key):
    if isinstance(store, SqliteStore):
        with closing(sqlite3.connect(str(store.path))) as conn, conn:
            conn.execute("DELETE FROM records WHERE key=?", (key,))
    else:
        store.record_path(key).unlink()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    return open_store(make_locator(backend, tmp_path))


class TestLocators:
    def test_parse_locator(self, tmp_path):
        assert parse_locator("fs:/shared/sweep") == ("fs", "/shared/sweep")
        assert parse_locator("sqlite:/shared/sweep.db") == (
            "sqlite",
            "/shared/sweep.db",
        )
        # Bare paths (and Path objects) stay the filesystem backend, so
        # every pre-backend ``--store DIR`` invocation is unchanged.
        assert parse_locator("relative/dir") == ("fs", "relative/dir")
        assert parse_locator(tmp_path) == ("fs", str(tmp_path))

    def test_unknown_scheme_is_an_error_not_a_path(self):
        with pytest.raises(StoreBackendError, match="unknown store backend"):
            parse_locator("redis:/somewhere")

    def test_empty_path_rejected(self):
        with pytest.raises(StoreBackendError, match="empty path"):
            parse_locator("sqlite:")

    def test_locator_path_anchors_sibling_artifacts(self, tmp_path):
        assert locator_path(f"sqlite:{tmp_path}/s.db") == tmp_path / "s.db"
        assert locator_path(str(tmp_path)) == tmp_path

    def test_open_store_picks_the_backend(self, tmp_path):
        assert isinstance(open_store(f"fs:{tmp_path}/a"), ResultStore)
        assert isinstance(
            open_store(f"sqlite:{tmp_path}/a.db"), SqliteStore
        )
        assert isinstance(open_store(tmp_path / "bare"), ResultStore)

    def test_fs_locator_on_sqlite_file_names_the_fix(self, tmp_path):
        db = tmp_path / "store.db"
        SqliteStore(db).put("k", 1)
        with pytest.raises(StoreBackendError, match=f"sqlite:{db}"):
            open_store(str(db))

    def test_sqlite_locator_on_directory_names_the_fix(self, tmp_path):
        with pytest.raises(StoreBackendError, match=f"fs:{tmp_path}"):
            open_store(f"sqlite:{tmp_path}")

    def test_sqlite_locator_on_foreign_file(self, tmp_path):
        noise = tmp_path / "rows.json"
        noise.write_text("[]")
        with pytest.raises(StoreBackendError, match="not a SQLite database"):
            open_store(f"sqlite:{noise}")

    def test_resolve_store_accepts_locators_and_backends(self, tmp_path):
        built = resolve_store(f"sqlite:{tmp_path}/s.db")
        assert isinstance(built, SqliteStore)
        # An already-open backend object passes through untouched.
        assert resolve_store(built) is built
        assert isinstance(resolve_store(f"fs:{tmp_path}/d"), ResultStore)

    def test_every_scheme_is_openable(self, tmp_path):
        for scheme in STORE_SCHEMES:
            name = f"probe-{scheme}" + (".db" if scheme == "sqlite" else "")
            store = open_store(f"{scheme}:{tmp_path / name}")
            store.put("k", 1)
            assert store.get("k") == 1


class TestBackendConformance:
    """The PR 4/6 store contracts, over every backend."""

    def test_put_get_roundtrip_with_meta(self, store):
        assert store.get("k") is None
        assert not store.has("k")
        store.put(
            "k", {"speedup": 2.5}, kernel="engine_cell", params={"n_bits": 16}
        )
        assert store.get("k") == {"speedup": 2.5}
        assert store.has("k")
        record = store.record("k")
        assert record["meta"]["kernel"] == "engine_cell"
        assert record["meta"]["params"] == {"n_bits": 16}

    def test_keys_sorted(self, store):
        for key in ("b", "a", "c"):
            store.put(key, key.upper())
        assert store.keys() == ["a", "b", "c"]

    def test_corrupt_record_counts_as_missing(self, store):
        store.put("good", 1)
        store.put("torn", 2)
        store.put("wrongshape", 3)
        corrupt_record(store, "torn")
        corrupt_record(store, "wrongshape", json.dumps([1, 2]))
        assert store.get("torn") is None
        assert store.get("wrongshape") is None
        assert store.get("good") == 1
        assert store.keys() == ["good"]
        status = store.status(["good", "torn", "wrongshape", "absent"])
        assert (status.total, status.done, status.missing) == (4, 1, 3)
        assert status.missing_keys == ("torn", "wrongshape", "absent")
        assert not status.complete

    def test_status_complete(self, store):
        store.put("k", 1)
        status = store.status(["k"])
        assert status.complete and status.missing == 0

    def test_failure_roundtrip_and_quarantine_split(self, store):
        assert store.failure("k") is None
        store.put_failure(
            "k", FAILURE, kernel="engine_cell", params={"n_bits": 16}
        )
        record = store.failure("k")
        assert record["failure"] == FAILURE
        assert record["meta"]["kernel"] == "engine_cell"
        assert store.failure_keys() == ["k"]
        store.put("done", 1)
        status = store.status(["done", "k", "absent"])
        assert (status.done, status.missing, status.failed) == (1, 2, 1)
        assert status.failed_keys == ("k",)

    def test_failure_never_shadows_a_result(self, store):
        store.put_failure("k", FAILURE)
        assert not store.has("k")
        assert store.keys() == []
        store.put("k", {"speedup": 2.0})
        assert store.has("k")
        assert store.status(["k"]).complete
        assert store.status(["k"]).failed == 0

    def test_clear_failure_is_idempotent(self, store):
        store.put_failure("k", FAILURE)
        store.clear_failure("k")
        assert store.failure("k") is None
        assert store.failure_keys() == []
        store.clear_failure("never-existed")

    def test_corrupt_failure_record_counts_as_none(self, store):
        store.put_failure("k", FAILURE)
        corrupt_failure(store, "k")
        assert store.failure("k") is None
        store.put_failure("shapeless", FAILURE)
        corrupt_failure(store, "shapeless", json.dumps({"failure": "str"}))
        assert store.failure("shapeless") is None
        assert store.failure_keys() == []

    def test_index_tracks_puts(self, store):
        store.put("k1", 1, kernel="engine_cell")
        store.put("k2", 2, kernel="engine_cell")
        index = store.read_index()
        assert set(index) == {"k1", "k2"}
        assert index["k1"]["kernel"] == "engine_cell"

    def test_index_add_merges(self, store):
        store.index_add({"k1": {"kernel": "engine_cell"}})
        store.index_add({"k2": {"kernel": "engine_cell"}})
        assert set(store.read_index()) == {"k1", "k2"}

    def test_rebuild_index_drops_stale_entries(self, store):
        store.put("gone", 1)
        delete_record(store, "gone")
        store.put("kept", 2)
        assert set(store.rebuild_index()) == {"kept"}
        assert set(store.read_index()) == {"kept"}

    def test_records_never_depend_on_the_index(self, store):
        store.put("k", 1, index=False)
        assert store.get("k") == 1
        assert store.read_index() == {}
        assert set(store.rebuild_index()) == {"k"}

    def test_empty_store_reads_empty(self, store):
        assert store.get("k") is None
        assert store.keys() == []
        assert store.read_index() == {}
        assert store.failure_keys() == []

    def test_chaos_tear_then_record_reads_missing(self, store, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "corrupt", "match": {"x": 1}, "times": 1}],
            state_dir=tmp_path / "chaos-state",
        )
        store.put("hit", {"value": "full"}, params={"x": 1})
        store.put("spared", {"value": "full"}, params={"x": 2})
        assert not store.chaos_tear(plan, "spared", {"x": 2})
        assert store.chaos_tear(plan, "hit", {"x": 1})
        # The torn record models a tear that survived persistence: it
        # must read as missing, and a resume must recompute it.
        assert store.get("hit") is None
        assert not store.has("hit")
        assert store.get("spared") == {"value": "full"}
        # times=1 is spent — the recomputed record survives.
        store.put("hit", {"value": "full"}, params={"x": 1})
        assert not store.chaos_tear(plan, "hit", {"x": 1})
        assert store.has("hit")


def _hammer_same_cell(args):
    locator, key, rounds = args
    store = open_store(locator)
    for _ in range(rounds):
        store.put(
            key,
            {"cell": "deterministic-value", "n": 12},
            kernel="engine_cell",
            params={"n_bits": 12},
        )
    return True


def _hammer_many_cells(args):
    locator, rounds = args
    store = open_store(locator)
    for i in range(rounds):
        key = f"cell{i % 8}"
        store.put(key, {"value-for": key}, kernel="engine_cell")
    return True


class TestConcurrentWriters:
    """Worker processes open stores from locator strings, like real shards."""

    def test_two_processes_racing_one_cell(self, backend, tmp_path):
        locator = make_locator(backend, tmp_path)
        with multiprocessing.Pool(2) as pool:
            done = pool.map(_hammer_same_cell, [(locator, "cell", 40)] * 2)
        assert done == [True, True]
        store = open_store(locator)
        # Cells are deterministic, so last-writer-wins is value-identical;
        # the record must be complete and readable, never torn.
        assert store.get("cell") == {"cell": "deterministic-value", "n": 12}
        assert set(store.read_index()) == {"cell"}

    def test_two_processes_racing_many_cells(self, backend, tmp_path):
        locator = make_locator(backend, tmp_path)
        with multiprocessing.Pool(2) as pool:
            pool.map(_hammer_many_cells, [(locator, 40)] * 2)
        store = open_store(locator)
        expected = {f"cell{i}" for i in range(8)}
        for key in expected:
            assert store.get(key) == {"value-for": key}
        assert set(store.keys()) == expected
        assert set(store.read_index()) == expected


class TestCrossBackendIdentity:
    """One grid, two backends, zero observable difference."""

    def test_records_byte_identical(self, tmp_path):
        grid = transfer_grid()
        fn, row_type = kernel_registry()[grid.kernel]
        fs = open_store(f"fs:{tmp_path / 'fs-store'}")
        sq = open_store(f"sqlite:{tmp_path / 'store.db'}")
        rows_fs = compute_grid(grid, fn, row_type, store=fs)
        rows_sq = compute_grid(grid, fn, row_type, store=sq)
        assert rows_fs == rows_sq
        with closing(sqlite3.connect(str(sq.path))) as conn:
            sq_text = dict(conn.execute("SELECT key, record FROM records"))
        assert sorted(sq_text) == fs.keys()
        for key in fs.keys():
            # The *persisted bytes*, not just the parsed values, match.
            assert fs.record_path(key).read_text() == sq_text[key]

    def test_cli_merge_verify_identical_across_backends(self, tmp_path):
        outputs = {}
        for backend in BACKENDS:
            locator = make_locator(backend, tmp_path, f"cli-{backend}")
            args = ["--kernel", "transfer_cell"]
            for shard in ("0/2", "1/2"):
                code = sweep_main(
                    ["run", "--shard", shard, "--store", locator, *args]
                )
                assert code == 0
            assert (
                sweep_main(["status", "--store", locator, *args]) == 0
            )
            output = tmp_path / f"rows-{backend}.json"
            code = sweep_main(
                [
                    "merge",
                    "--store",
                    locator,
                    "--verify",
                    "--output",
                    str(output),
                    *args,
                ]
            )
            assert code == 0
            outputs[backend] = output.read_bytes()
        assert outputs["fs"] == outputs["sqlite"]
