"""The N-level hierarchy engine: stacks, workload registry, engine runs."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.workloads import (
    available_workloads,
    build_workload,
    get_workload,
)
from repro.ecc.transfer import TransferNetwork
from repro.sim.cache import simulate_optimized
from repro.sim.levels import (
    HierarchyStack,
    MemoryLevel,
    simulate_hierarchy_run,
    standard_stack,
    three_level_stack,
    two_level_stack,
)
from repro.sim.policies import available_policies


class TestMemoryLevel:
    def test_derived_costs(self):
        level = MemoryLevel("L1", "steane", 1, 100)
        assert level.op_time_s > 0
        assert level.ec_time_s > 0
        assert level.channels_per_transfer == 1
        assert MemoryLevel("m", "bacon_shor", 2, None).channels_per_transfer == 3

    def test_deeper_code_level_is_slower(self):
        times = [
            MemoryLevel(f"L{lvl}", "steane", lvl, None).op_time_s
            for lvl in (1, 2, 3)
        ]
        assert times == sorted(times)
        assert times[0] < times[1] < times[2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            MemoryLevel("L1", "steane", 1, 1)
        with pytest.raises(ValueError, match="encoded"):
            MemoryLevel("L1", "steane", 0, 100)
        with pytest.raises(ValueError, match="unknown code key"):
            MemoryLevel("L1", "shor_code", 1, 100)


class TestHierarchyStack:
    def test_two_level_matches_legacy_network(self):
        stack = two_level_stack("steane", parallel_transfers=10)
        legacy = TransferNetwork(code_key="steane", parallel_transfers=10)
        (net,) = stack.networks()
        assert net.demote_time_s == legacy.demote_time_s
        assert net.promote_time_s == legacy.promote_time_s
        assert stack.levels[0].capacity == 243
        assert stack.levels[-1].capacity is None

    def test_parallel_transfers_broadcast(self):
        stack = standard_stack("steane", 4, parallel_transfers=5)
        assert stack.parallel_transfers == (5, 5, 5)
        explicit = standard_stack("steane", 3, parallel_transfers=(10, 4))
        assert [n.parallel_transfers for n in explicit.networks()] == [10, 4]

    def test_validation(self):
        memory = MemoryLevel("memory", "steane", 2, None)
        cache = MemoryLevel("L1", "steane", 1, 100)
        with pytest.raises(ValueError, match="at least two levels"):
            HierarchyStack((memory,))
        with pytest.raises(ValueError, match="unbounded"):
            HierarchyStack((cache, MemoryLevel("m", "steane", 2, 500)))
        with pytest.raises(ValueError, match="unbounded"):
            HierarchyStack((memory, memory))
        # Mixed-code stacks are supported since the multi-backend-codes
        # change: the boundary prices from both codes (Table 3
        # off-diagonals).  Construction must succeed.
        mixed = HierarchyStack((cache, MemoryLevel("m", "bacon_shor", 2, None)))
        assert mixed.is_mixed
        assert mixed.code_keys == ("steane", "bacon_shor")
        with pytest.raises(ValueError, match="one entry per"):
            HierarchyStack((cache, memory), parallel_transfers=(10, 5, 2))
        with pytest.raises(ValueError, match="parallel transfer"):
            HierarchyStack((cache, memory), parallel_transfers=0)
        with pytest.raises(ValueError, match="at least two levels"):
            standard_stack("steane", 1)

    def test_parallel_transfers_below_channel_requirement_rejected(self):
        # One Bacon-Shor transfer occupies 3 teleport channels; a
        # network provisioned with fewer could never dispatch a single
        # transfer once ports model channel occupancy.  Fail at
        # construction, naming the starved network.
        with pytest.raises(ValueError, match="network 0"):
            two_level_stack("bacon_shor", parallel_transfers=2)
        with pytest.raises(ValueError, match="network 1"):
            standard_stack("bacon_shor", 3, parallel_transfers=(3, 2))
        # At exactly the channel requirement the stack is valid.
        stack = two_level_stack("bacon_shor", parallel_transfers=3)
        assert stack.parallel_transfers == (3,)
        # Steane needs one channel, so parallel_transfers=1 stays legal.
        assert two_level_stack("steane", parallel_transfers=1)


class TestWorkloadRegistry:
    def test_required_workloads_registered(self):
        names = available_workloads()
        for expected in ("draper_adder", "qft", "modexp_trace"):
            assert expected in names

    def test_build_sizes(self):
        qft = build_workload("qft", 12)
        assert qft.n_qubits == 12
        default = build_workload("qft")
        assert default.n_qubits == get_workload("qft").default_bits

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("grover")

    def test_specs_have_descriptions(self):
        for name in available_workloads():
            assert get_workload(name).description


class TestEngineRuns:
    @pytest.mark.parametrize("workload", ["draper_adder", "qft", "modexp_trace"])
    @pytest.mark.parametrize("policy", available_policies())
    def test_three_level_stack_runs(self, workload, policy):
        stack = three_level_stack("steane", compute_qubits=12,
                                  cache_factor=1.0)
        run = simulate_hierarchy_run(stack, workload, policy=policy)
        assert run.depth == 3
        assert len(run.level_stats) == 3
        assert len(run.fetches) == len(run.writebacks) == 2
        assert run.total_time_s >= run.compute_time_s
        assert run.total_time_s == pytest.approx(
            run.compute_time_s + run.transfer_wait_s, rel=0.01
        )
        assert 0.0 < run.hit_rate < 1.0
        assert run.speedup > 1.0
        # Everything starts in memory, so the bottom network carries at
        # least the compulsory fetches.
        assert run.fetches[1] > 0
        assert run.fetches[0] >= run.fetches[1]

    def test_workload_accepts_circuit_and_name(self):
        stack = two_level_stack("steane")
        by_name = simulate_hierarchy_run(stack, "qft")
        by_circuit = simulate_hierarchy_run(stack, build_workload("qft"))
        assert by_name == by_circuit

    def test_victim_caching_beats_cold_climb(self):
        # A qubit evicted from L1 parks at L2; re-fetching it crosses
        # one network, not two, so intermediate levels must see hits.
        stack = three_level_stack("steane", compute_qubits=12,
                                  cache_factor=1.0)
        run = simulate_hierarchy_run(stack, "draper_adder", policy="lru")
        assert run.level_stats[1].hits > 0

    def test_more_ports_never_slower(self):
        slow = simulate_hierarchy_run(
            three_level_stack("steane", parallel_transfers=2), "draper_adder"
        )
        fast = simulate_hierarchy_run(
            three_level_stack("steane", parallel_transfers=10), "draper_adder"
        )
        assert fast.total_time_s <= slow.total_time_s + 1e-12

    def test_in_order_fetch_mode(self):
        stack = two_level_stack("steane", compute_qubits=12, cache_factor=1.0)
        optimized = simulate_hierarchy_run(stack, "draper_adder")
        in_order = simulate_hierarchy_run(stack, "draper_adder",
                                          fetch="in-order")
        # The paper's point: optimized fetch massively out-hits in-order.
        assert optimized.hit_rate > in_order.hit_rate

    def test_simulate_l1_run_policy_kwarg(self):
        from repro.sim.hierarchy_sim import simulate_l1_run

        base = simulate_l1_run("steane", 64, cache=False)
        fifo = simulate_l1_run("steane", 64, cache=False,
                               eviction_policy="fifo")
        assert fifo.l1_time_s > 0
        assert base.transfers <= fifo.transfers  # LRU wins on this trace
        with pytest.raises(ValueError, match="unknown eviction policy"):
            simulate_l1_run("steane", 64, eviction_policy="mru")

    def test_memory_hierarchy_policy_knob(self):
        from repro.core.cqla import CqlaDesign
        from repro.core.hierarchy import MemoryHierarchy

        design = CqlaDesign("steane", 64, 16)
        hierarchy = MemoryHierarchy(design, eviction_policy="belady")
        assert hierarchy.l1_speedup() > 1.0
        assert hierarchy.stack().depth == 2
        with pytest.raises(ValueError, match="unknown eviction policy"):
            MemoryHierarchy(design, eviction_policy="mru")

    def test_engine_validation(self):
        stack = two_level_stack("steane")
        with pytest.raises(ValueError, match="empty circuit"):
            simulate_hierarchy_run(stack, Circuit(n_qubits=4))
        with pytest.raises(ValueError, match="unknown fetch mode"):
            simulate_hierarchy_run(stack, "qft", fetch="random")
        with pytest.raises(ValueError, match="unknown eviction policy"):
            simulate_hierarchy_run(stack, "qft", policy="mru")
        with pytest.raises(TypeError, match="workload"):
            simulate_hierarchy_run(stack, 42)
        with pytest.raises(ValueError, match="window"):
            simulate_hierarchy_run(stack, "qft", fetch="in-order", window=2)
        with pytest.raises(ValueError, match="permutation"):
            simulate_hierarchy_run(stack, "qft", order=[0, 0, 1])
        with pytest.raises(ValueError, match="contradict"):
            simulate_hierarchy_run(stack, "qft", fetch="in-order",
                                   order=[0, 1])
        with pytest.raises(ValueError, match="unknown prefetcher"):
            simulate_hierarchy_run(stack, "qft", prefetch="oracle")

    def test_prefetch_knob_threads_through(self):
        from repro.core.cqla import CqlaDesign
        from repro.core.design_space import engine_sweep
        from repro.core.hierarchy import MemoryHierarchy
        from repro.sim.hierarchy_sim import simulate_l1_run

        run = simulate_l1_run("steane", 32, cache=False, prefetch="next_k")
        assert run.l1_time_s > 0
        with pytest.raises(ValueError, match="unknown prefetcher"):
            simulate_l1_run("steane", 32, prefetch="oracle")

        design = CqlaDesign("steane", 64, 16)
        hierarchy = MemoryHierarchy(design, prefetch="next_k")
        assert hierarchy.l1_speedup() > 0
        with pytest.raises(ValueError, match="unknown prefetcher"):
            MemoryHierarchy(design, prefetch="oracle")

        rows = engine_sweep(
            workloads=("draper_adder",), sizes=(16,), depths=(3,),
            policies=("lru",), prefetches=("none", "next_k"),
            cache=False,
        )
        by_prefetch = {row.prefetch: row for row in rows}
        assert set(by_prefetch) == {"none", "next_k"}
        assert by_prefetch["none"].makespan_s > 0
        assert by_prefetch["next_k"].makespan_s > 0

    def test_precomputed_order_matches_inline_scheduling(self):
        stack = two_level_stack("steane", compute_qubits=12,
                                cache_factor=1.0)
        circuit = build_workload("modexp_trace", 16)
        order = simulate_optimized(
            circuit, stack.levels[0].capacity
        ).order
        for policy in available_policies():
            inline = simulate_hierarchy_run(stack, circuit, policy=policy)
            shared = simulate_hierarchy_run(stack, circuit, policy=policy,
                                            order=order)
            assert inline == shared
        with pytest.raises(ValueError, match="window"):
            simulate_hierarchy_run(stack, circuit, order=order, window=2)
