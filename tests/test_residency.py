"""Noise-aware residency: the property/equivalence harness.

Pins the coupling between the engine dialects and the ECC Monte Carlo:

* **Partition properties** — for every (policy x prefetch) cell on all
  three study workloads, each qubit's residency intervals are
  non-overlapping, level/network-tagged, and exactly partition
  ``[0, horizon]`` (no gaps, float-exact telescoping), with the checks
  also wired through the :class:`~repro.sim.levels.EngineAudit`
  ``residency_*`` counters.
* **Equivalence pins** — a recorder never changes engine arithmetic
  (recorded runs are bit-identical to recorder-less runs in every
  dialect); the split-transaction reference and the flattened fastsplit
  engine record bit-identical interval lists; every dialect agrees on
  each qubit's untimed hop sequence for ``prefetch="none"``; and with
  fidelity off, engine cells, memo keys and store records are pinned
  byte-identical to the pre-fidelity layout.
* **Seed determinism** — fidelity accrual is reproducible across the
  process-pool fan-out (4 workers vs serial, byte-compared) and
  consistent with the batched replay engine's pricing.
"""

import json
import math
from dataclasses import asdict, fields

import pytest

from repro.circuits.workloads import build_workload
from repro.core.design_space import (
    ENGINE_FIDELITY_SEED,
    ENGINE_FIDELITY_TRIALS,
    EngineRow,
    FidelityRow,
    engine_cell,
    engine_sweep,
    fidelity_cell,
    fidelity_grid,
    pareto_rows,
)
from repro.ecc.concatenated import by_key
from repro.perf.memo import SweepCache, stable_key
from repro.sim.cache import simulate_optimized
from repro.sim.fastsplit import supports_fast_split
from repro.sim.levels import (
    l1_capacity,
    mixed_stack,
    simulate_hierarchy_run,
    simulate_hierarchy_run_audited,
    three_level_stack,
)
from repro.sim.policies import available_policies
from repro.sim.residency import (
    LEVEL,
    P_CAL,
    TRANSIT,
    FidelityResult,
    ResidencyRecorder,
    accrue_residency,
    code_noise,
    simulate_fidelity_run,
    stack_noise,
)
from repro.sweep.grid import Cell
from repro.sweep.runner import compute_grid

WORKLOADS = ("draper_adder", "qft", "modexp_trace")
N_BITS = 16
COMPUTE_QUBITS = 12
CACHE_FACTOR = 1.0

#: Content hash of the canonical lru/none engine cell and the memo key
#: of its one-cell fidelity-off sweep.  These literals pin the
#: fidelity-off design space to the pre-fidelity layout: adding the
#: fidelity axis must not perturb existing cell identity, store
#: records, or memoized sweeps.
PINNED_CELL_KEY = "d3355bf582b62096c3127457047b96867454ee06"
PINNED_SWEEP_KEY = "320ac717401318287d72bf3802591240824c1fa1"

#: Small Monte Carlo budget for tests that only need determinism, not
#: the calibration default.
TRIALS = 300
SEED = 7


def _stack():
    return three_level_stack(
        "steane",
        compute_qubits=COMPUTE_QUBITS,
        cache_factor=CACHE_FACTOR,
        parallel_transfers=10,
    )


_ORDERS = {}


def _order(workload):
    if workload not in _ORDERS:
        circuit = build_workload(workload, N_BITS)
        capacity = l1_capacity(COMPUTE_QUBITS, CACHE_FACTOR)
        _ORDERS[workload] = (
            circuit,
            tuple(simulate_optimized(circuit, capacity).order),
        )
    return _ORDERS[workload]


def _check_partition(recorder, stack):
    """The full interval-partition property set on a finished recorder."""
    assert recorder.finished
    assert recorder.partition_ok()
    assert recorder.mismatches == 0
    assert recorder.horizon >= recorder.makespan
    depth = stack.depth
    for q, timeline in recorder.intervals.items():
        assert timeline, f"qubit {q} has an empty timeline"
        t = 0.0
        for iv in timeline:
            # Contiguous and non-overlapping: float-exact, no gaps.
            assert iv.start == t
            assert iv.end >= iv.start
            assert iv.kind in (LEVEL, TRANSIT)
            if iv.kind == LEVEL:
                assert 0 <= iv.place < depth
            else:
                assert 0 <= iv.place < depth - 1
            t = iv.end
        assert t == recorder.horizon
        # Summed interval time is conserved (telescoping is exact; the
        # re-summed durations only see float addition error).
        total = sum(iv.duration for iv in timeline)
        assert math.isclose(total, recorder.horizon, rel_tol=1e-9)
        by_kind = sum(recorder.level_time(q).values()) + recorder.transit_time(q)
        assert math.isclose(by_kind, recorder.horizon, rel_tol=1e-9)
        # A timeline that ends parked closes at the qubit's final
        # level; one that ends exactly at a hop's completion may close
        # on the transit interval itself.
        if timeline[-1].kind == LEVEL:
            assert timeline[-1].place == recorder.final_level[q]


class TestPartitionProperties:
    """Satellite 1: the invariant matrix over every engine cell."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("policy", available_policies())
    @pytest.mark.parametrize("prefetch", ("none", "next_k"))
    def test_audited_dialects(self, workload, policy, prefetch):
        # prefetch="none" runs the reservation reference, anything else
        # the split-transaction reference — both through the audit.
        circuit, order = _order(workload)
        recorder = ResidencyRecorder()
        result, audit = simulate_hierarchy_run_audited(
            _stack(), circuit, policy, order=order, prefetch=prefetch,
            recorder=recorder,
        )
        recorder.finish(result.total_time_s)
        stack = _stack()
        _check_partition(recorder, stack)
        assert set(recorder.intervals) == set(circuit.touched_qubits())
        assert audit.residency_partition_ok
        assert audit.residency_mismatches == 0
        if prefetch != "none":
            # Per-qubit movement queues serialize split-transaction
            # transfers: recorded times are exact, never monotonized.
            assert recorder.clamped == 0
            assert audit.residency_clamped == 0
        else:
            assert audit.residency_clamped == recorder.clamped

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize(
        "policy", [p for p in available_policies() if supports_fast_split(p, "next_k")]
    )
    @pytest.mark.parametrize("prefetch", ("none", "next_k"))
    def test_fastsplit_dialect(self, workload, policy, prefetch):
        circuit, order = _order(workload)
        recorder = ResidencyRecorder()
        result = simulate_hierarchy_run(
            _stack(), circuit, policy, order=order, prefetch=prefetch,
            pipeline=True, recorder=recorder,
        )
        recorder.finish(result.total_time_s)
        _check_partition(recorder, _stack())
        assert recorder.clamped == 0

    @pytest.mark.parametrize("policy", available_policies())
    def test_reservation_partitions_against_own_horizon(self, policy):
        # Reservation write-backs can complete after the compute level
        # frees: the partition closes at the horizon, not the makespan.
        circuit, order = _order("draper_adder")
        recorder = ResidencyRecorder()
        result = simulate_hierarchy_run(
            _stack(), circuit, policy, order=order, recorder=recorder,
        )
        recorder.finish(result.total_time_s)
        _check_partition(recorder, _stack())

    def test_mixed_stack_partition(self):
        stack = mixed_stack(
            "steane", "bacon_shor", 3,
            compute_qubits=COMPUTE_QUBITS, cache_factor=CACHE_FACTOR,
            parallel_transfers=10,
        )
        circuit, order = _order("draper_adder")
        recorder = ResidencyRecorder()
        result, audit = simulate_hierarchy_run_audited(
            stack, circuit, "lru", order=order, prefetch="next_k",
            recorder=recorder,
        )
        recorder.finish(result.total_time_s)
        _check_partition(recorder, stack)
        assert audit.residency_partition_ok


class TestRecorderUnit:
    def test_clamp_truncation_monotonizes(self):
        recorder = ResidencyRecorder()
        recorder.begin({0: 2})
        recorder.transfer(0, 2, 1, 5.0, 6.0, 1)
        # Scan-time inversion: booked before the previous arrival.
        recorder.transfer(0, 1, 0, 4.0, 4.5, 0)
        recorder.finish(10.0)
        assert recorder.clamped == 1
        assert recorder.mismatches == 0
        assert recorder.partition_ok()
        # The inverted transit span truncates to zero width at t=6.
        kinds = [(iv.kind, iv.place) for iv in recorder.intervals[0]]
        assert kinds == [(LEVEL, 2), (TRANSIT, 1), (LEVEL, 0)]
        assert recorder.final_level[0] == 0

    def test_mismatch_counted(self):
        recorder = ResidencyRecorder()
        recorder.begin({0: 2})
        recorder.transfer(0, 1, 0, 1.0, 2.0, 0)  # src 1, but parked at 2
        recorder.finish(5.0)
        assert recorder.mismatches == 1
        assert recorder.partition_ok()

    def test_finish_idempotent(self):
        recorder = ResidencyRecorder()
        recorder.begin({0: 1})
        recorder.finish(3.0)
        first = recorder.intervals[0]
        recorder.finish(99.0)  # no-op: horizon unchanged
        assert recorder.horizon == 3.0
        assert recorder.intervals[0] == first

    def test_horizon_extends_past_makespan(self):
        recorder = ResidencyRecorder()
        recorder.begin({0: 1})
        recorder.transfer(0, 1, 2, 2.0, 7.0, 1)
        recorder.finish(5.0)
        assert recorder.makespan == 5.0
        assert recorder.horizon == 7.0
        assert recorder.partition_ok()

    def test_unfinished_guards(self):
        recorder = ResidencyRecorder()
        recorder.begin({0: 1})
        with pytest.raises(RuntimeError, match="before finish"):
            recorder.partition_ok()
        with pytest.raises(ValueError, match="finished recorder"):
            accrue_residency(recorder, _stack())


class TestDialectEquivalence:
    """Satellite 2: recorded intervals agree across the dialects."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("prefetch", ("none", "next_k"))
    def test_fastsplit_intervals_bit_identical_to_reference(
        self, workload, prefetch
    ):
        circuit, order = _order(workload)
        fast_rec = ResidencyRecorder()
        fast = simulate_hierarchy_run(
            _stack(), circuit, "lru", order=order, prefetch=prefetch,
            pipeline=True, recorder=fast_rec,
        )
        ref_rec = ResidencyRecorder()
        ref, _ = simulate_hierarchy_run_audited(
            _stack(), circuit, "lru", order=order, prefetch=prefetch,
            pipeline=True, recorder=ref_rec,
        )
        assert fast == ref
        fast_rec.finish(fast.total_time_s)
        ref_rec.finish(ref.total_time_s)
        # Same floats, same interval objects — not just "close".
        assert fast_rec.intervals == ref_rec.intervals
        assert fast_rec.final_level == ref_rec.final_level

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("policy", available_policies())
    def test_cross_dialect_hop_sequences(self, workload, policy):
        # Untimed equivalence: for prefetch="none" every dialect moves
        # each qubit through the same hop sequence (same residency
        # *structure*; the time prices differ by transfer model).
        circuit, order = _order(workload)
        res_rec = ResidencyRecorder()
        res = simulate_hierarchy_run(
            _stack(), circuit, policy, order=order, recorder=res_rec,
        )
        split_rec = ResidencyRecorder()
        split = simulate_hierarchy_run(
            _stack(), circuit, policy, order=order, pipeline=True,
            recorder=split_rec,
        )
        res_rec.finish(res.total_time_s)
        split_rec.finish(split.total_time_s)
        assert res.fetches == split.fetches
        assert res.writebacks == split.writebacks
        for q in res_rec.intervals:
            hops_res = [
                (rec[1], rec[2]) for rec in res_rec.records if rec[0] == q
            ]
            hops_split = [
                (rec[1], rec[2]) for rec in split_rec.records if rec[0] == q
            ]
            assert hops_res == hops_split

    @pytest.mark.parametrize("prefetch", ("none", "next_k"))
    def test_recorder_never_changes_results(self, prefetch):
        circuit, order = _order("draper_adder")
        for policy in available_policies():
            plain = simulate_hierarchy_run(
                _stack(), circuit, policy, order=order, prefetch=prefetch,
            )
            recorded = simulate_hierarchy_run(
                _stack(), circuit, policy, order=order, prefetch=prefetch,
                recorder=ResidencyRecorder(),
            )
            assert recorded == plain  # bit-identical dataclass floats


class TestAccrual:
    def test_parked_qubit_hand_computed(self):
        stack = _stack()
        noise = stack_noise(stack, trials=TRIALS, seed=SEED)
        recorder = ResidencyRecorder()
        recorder.begin({0: 2})
        recorder.finish(100.0)
        fid = accrue_residency(recorder, stack, trials=TRIALS, seed=SEED)
        expected = 100.0 * noise.level_rates[2]
        assert fid.level_exponents == (0.0, 0.0, expected)
        assert fid.transit_exponent == 0.0
        assert fid.logical_error == -math.expm1(-expected)

    def test_transit_charged_at_worse_endpoint(self):
        stack = _stack()
        noise = stack_noise(stack, trials=TRIALS, seed=SEED)
        for k in range(stack.depth - 1):
            assert noise.transit_rates[k] == max(
                noise.level_rates[k], noise.level_rates[k + 1]
            )
        # Shallower levels (lower code level here) are noisier.
        assert noise.level_rates[0] > noise.level_rates[-1]

    def test_breakdown_consistency(self):
        circuit, order = _order("qft")
        _, fid = simulate_fidelity_run(
            _stack(), circuit, "lru", order=order, prefetch="next_k",
            trials=TRIALS, seed=SEED,
        )
        assert isinstance(fid, FidelityResult)
        assert fid.total_exponent == sum(fid.level_exponents) + fid.transit_exponent
        assert fid.logical_error == -math.expm1(-fid.total_exponent)
        assert len(fid.level_errors) == _stack().depth
        assert 0.0 < fid.logical_error < 1.0
        assert fid.makespan_s > 0 and fid.horizon_s >= fid.makespan_s

    def test_longer_residency_accrues_more_error(self):
        recorder_short, recorder_long = ResidencyRecorder(), ResidencyRecorder()
        for recorder, horizon in ((recorder_short, 10.0), (recorder_long, 1000.0)):
            recorder.begin({0: 0})
            recorder.finish(horizon)
        stack = _stack()
        short = accrue_residency(recorder_short, stack, trials=TRIALS, seed=SEED)
        long = accrue_residency(recorder_long, stack, trials=TRIALS, seed=SEED)
        assert long.logical_error > short.logical_error

    def test_code_noise_is_mc_calibrated(self):
        noise = code_noise("steane", 1)  # default calibration budget
        code = by_key("steane")
        analytic = code.failure_rate(1)
        # The default seed resolves a nonzero failure count at P_CAL, so
        # the rate is the *scaled* analytic value, not the raw one.
        assert noise.cycle_error_rate != analytic
        assert noise.cycle_error_rate > 0
        assert noise.cycle_time_s == code.ec_time_s(1)
        assert math.isclose(
            noise.coherence_time_s * noise.cycle_error_rate,
            noise.cycle_time_s,
        )
        # Deeper recursion: doubly-exponentially more reliable.
        assert code_noise("steane", 2).cycle_error_rate < noise.cycle_error_rate
        assert 0 < P_CAL < 1

    def test_simulate_fidelity_run_result_unchanged(self):
        circuit, order = _order("draper_adder")
        plain = simulate_hierarchy_run(_stack(), circuit, "lru", order=order)
        result, _ = simulate_fidelity_run(
            _stack(), circuit, "lru", order=order, trials=TRIALS, seed=SEED,
        )
        assert result == plain


class TestFidelityOffPins:
    """Satellite 2 (cont.): fidelity off == pre-fidelity bytes."""

    def test_pinned_cell_hash(self):
        cell = Cell.make(
            "engine_cell", workload="draper_adder", n_bits=N_BITS,
            code_key="steane", depth=2, policy="lru", prefetch="none",
            parallel_transfers=10, compute_qubits=COMPUTE_QUBITS,
            cache_factor=CACHE_FACTOR,
        )
        assert cell.key == PINNED_CELL_KEY

    def test_fidelity_off_memo_key_and_store_records(self, tmp_path):
        memo = SweepCache(directory=tmp_path / "memo")
        store = tmp_path / "store"
        rows = engine_sweep(
            workloads=("draper_adder",), sizes=(N_BITS,), depths=(2,),
            policies=("lru",), prefetches=("none",),
            cache=memo, store=str(store),
        )
        assert len(rows) == 1 and type(rows[0]) is EngineRow
        # The memoized sweep landed under the exact pre-fidelity key.
        assert memo.get(PINNED_SWEEP_KEY) is not None
        # The store record holds exactly the EngineRow fields — no
        # fidelity leakage into fidelity-off record bytes.
        from repro.perf.store import ResultStore

        record = ResultStore(store).get(PINNED_CELL_KEY)
        assert record is not None
        assert sorted(record) == sorted(f.name for f in fields(EngineRow))

    @pytest.mark.parametrize(
        "params",
        [
            {"policy": "lru", "prefetch": "none"},
            {"policy": "fidelity", "prefetch": "next_k"},
            {"policy": "belady", "prefetch": "next_k", "depth": 3},
            {
                "policy": "lru", "prefetch": "none",
                "memory_code_key": "bacon_shor",
            },
        ],
    )
    def test_fidelity_cell_embeds_exact_engine_row(self, params):
        base = {
            "workload": "draper_adder", "n_bits": N_BITS,
            "code_key": "steane", "depth": 2, "parallel_transfers": 10,
            "compute_qubits": COMPUTE_QUBITS, "cache_factor": CACHE_FACTOR,
        }
        base.update(params)
        engine_row = engine_cell(base)
        fid_row = fidelity_cell(
            dict(base, fidelity_trials=TRIALS, fidelity_seed=SEED)
        )
        for field in fields(EngineRow):
            assert getattr(fid_row, field.name) == getattr(
                engine_row, field.name
            )
        assert fid_row.fidelity_trials == TRIALS
        assert 0 < fid_row.logical_error < 1
        assert len(fid_row.level_errors) == base["depth"]

    def test_fidelity_grid_mirrors_engine_grid(self):
        from repro.core.design_space import engine_grid

        kwargs = dict(
            workloads=("qft",), sizes=(N_BITS,), depths=(2,),
            policies=("lru", "fidelity"), prefetches=("none", "next_k"),
        )
        base = engine_grid(**kwargs)
        grid = fidelity_grid(fidelity_trials=TRIALS, fidelity_seed=SEED, **kwargs)
        assert grid.kernel == "fidelity_cell"
        assert len(grid.cells) == len(base.cells)
        for fid_cell, eng_cell in zip(grid.cells, base.cells):
            params = fid_cell.as_dict()
            assert params.pop("fidelity_trials") == TRIALS
            assert params.pop("fidelity_seed") == SEED
            assert params == eng_cell.as_dict()

    def test_batched_fidelity_rejected(self):
        with pytest.raises(ValueError, match="per-cell"):
            engine_sweep(fidelity=True, batched=True)


class TestSeedDeterminism:
    """Satellite 3: same seed, same bytes — across workers and engines."""

    GRID_KW = dict(
        workloads=("draper_adder",), sizes=(N_BITS,), depths=(2,),
        policies=("lru", "fidelity"), prefetches=("none", "next_k"),
        fidelity_trials=TRIALS, fidelity_seed=SEED,
    )

    @staticmethod
    def _row_bytes(rows):
        return json.dumps([asdict(row) for row in rows], sort_keys=True)

    def test_process_pool_fanout_bit_identical(self):
        grid = fidelity_grid(**self.GRID_KW)
        serial = compute_grid(grid, fidelity_cell, FidelityRow)
        fanned = compute_grid(grid, fidelity_cell, FidelityRow, workers=4)
        assert self._row_bytes(fanned) == self._row_bytes(serial)
        assert all(
            (row.makespan_s, row.logical_error)
            == (ref.makespan_s, ref.logical_error)
            for row, ref in zip(fanned, serial)
        )

    def test_repeat_sweep_bit_identical(self):
        kwargs = dict(
            workloads=("qft",), sizes=(N_BITS,), depths=(2,),
            policies=("lru",), prefetches=("none",), cache=False,
            fidelity={"trials": TRIALS, "seed": SEED},
        )
        first = engine_sweep(**kwargs)
        second = engine_sweep(**kwargs)
        assert self._row_bytes(first) == self._row_bytes(second)
        assert type(first[0]) is FidelityRow
        assert first[0].fidelity_seed == SEED

    def test_batched_replay_prices_match_fidelity_rows(self):
        # The batched replay engine (fidelity off) and the recorded
        # per-cell runs must agree on every shared engine field.
        kwargs = dict(
            workloads=("draper_adder",), sizes=(N_BITS,), depths=(2, 3),
            policies=("lru", "fidelity"), prefetches=("none",), cache=False,
        )
        batched = engine_sweep(batched=True, **kwargs)
        fid = engine_sweep(fidelity={"trials": TRIALS, "seed": SEED}, **kwargs)
        assert len(batched) == len(fid)
        for eng_row, fid_row in zip(batched, fid):
            for field in fields(EngineRow):
                assert getattr(fid_row, field.name) == getattr(
                    eng_row, field.name
                )


class TestPareto:
    @staticmethod
    def _row(makespan, err, policy="lru"):
        return FidelityRow(
            workload="draper_adder", n_bits=N_BITS, code_key="steane",
            memory_code_key="steane", depth=2, policy=policy,
            prefetch="none", parallel_transfers=10, hit_rate=0.9,
            speedup=2.0, transfer_bound_fraction=0.1, transfers=10,
            makespan_s=makespan, fidelity_trials=TRIALS,
            fidelity_seed=SEED, logical_error=err,
            level_errors=(err, 0.0), transit_error=0.0,
        )

    def test_front_selection(self):
        rows = [
            self._row(10.0, 1e-6),
            self._row(12.0, 1e-7),   # slower but more reliable: on front
            self._row(15.0, 5e-7),   # dominated by both above
            self._row(9.0, 2e-6),    # fastest: on front
        ]
        front = pareto_rows(rows)
        assert [(r.makespan_s, r.logical_error) for r in front] == [
            (9.0, 2e-6), (10.0, 1e-6), (12.0, 1e-7),
        ]

    def test_makespan_tie_keeps_most_reliable(self):
        rows = [self._row(10.0, 1e-6), self._row(10.0, 1e-8)]
        front = pareto_rows(rows)
        assert len(front) == 1
        assert front[0].logical_error == 1e-8

    def test_none_rows_ignored(self):
        rows = [None, self._row(10.0, 1e-6), None]
        assert len(pareto_rows(rows)) == 1

    def test_single_row_is_front(self):
        row = self._row(10.0, 1e-6)
        assert pareto_rows([row]) == [row]

    def test_level_errors_tuple_roundtrip(self):
        row = self._row(10.0, 1e-6)
        back = FidelityRow(**json.loads(json.dumps(asdict(row))))
        assert back == row
        assert isinstance(back.level_errors, tuple)


class TestSurfaces:
    """The pareto table renders from the sweep CLI and the service."""

    @pytest.fixture(scope="class")
    def filled_store(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("residency") / "store"
        grid = fidelity_grid(**TestSeedDeterminism.GRID_KW)
        compute_grid(grid, fidelity_cell, FidelityRow, store=str(store))
        return str(store), grid

    def test_cli_table_subcommand(self, filled_store, capsys):
        from repro.sweep.cli import main

        store, _ = filled_store
        rc = main([
            "table", "--store", store, "--kernel", "fidelity_cell",
            "--workloads", "draper_adder", "--sizes", str(N_BITS),
            "--depths", "2", "--policies", "lru", "fidelity",
            "--prefetches", "none", "next_k",
            "--fidelity-trials", str(TRIALS), "--fidelity-seed", str(SEED),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time vs fidelity" in out
        assert "*" in out
        assert "fidelity" in out

    def test_service_v1_table(self, filled_store):
        import urllib.request

        from repro.perf.backends import open_store
        from repro.service.server import BackgroundService

        store, grid = filled_store
        with BackgroundService(open_store(store), grid) as svc:
            body = urllib.request.urlopen(svc.url + "/v1/table").read().decode()
        assert "time vs fidelity" in body
        assert "logical err" in body

    def test_degraded_render_marks_holes(self, filled_store):
        from repro.analysis.tables import _render_fidelity_table

        store, grid = filled_store
        rows = [None] + [
            fidelity_cell(grid.cells[1].as_dict()),
        ]
        text = _render_fidelity_table(rows, grid=grid, store=store)
        assert "—" in text
        assert "missing/quarantined" in text

    def test_cli_rejects_fidelity_options_on_other_kernels(self):
        from repro.sweep.cli import main

        with pytest.raises(SystemExit, match="fidelity-grid options"):
            main([
                "status", "--store", "/tmp/nonexistent-store",
                "--kernel", "engine_cell", "--fidelity-trials", "10",
            ])

    def test_memo_key_distinct_with_fidelity(self):
        axes = dict(
            workloads=["draper_adder"], sizes=[N_BITS], code_keys=["steane"],
            depths=[2], policies=["lru"], prefetches=["none"],
            transfer_options=[10], compute_qubits=COMPUTE_QUBITS,
            cache_factor=CACHE_FACTOR, code_pairs=[],
        )
        off = stable_key("engine_sweep", **axes)
        on = stable_key(
            "engine_sweep",
            fidelity_trials=ENGINE_FIDELITY_TRIALS,
            fidelity_seed=ENGINE_FIDELITY_SEED,
            **axes,
        )
        assert off == PINNED_SWEEP_KEY
        assert on != off
