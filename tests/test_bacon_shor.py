"""Tests for the Bacon-Shor [[9,1,3]] subsystem code."""

import pytest

from repro.ecc.bacon_shor import (
    bacon_shor_code,
    encoder_circuit,
    x_gauge_pairs,
    z_gauge_pairs,
)
from repro.ecc.clifford import conjugate, stabilizer_group_contains
from repro.ecc.pauli import Pauli, enumerate_errors


@pytest.fixture(scope="module")
def code():
    return bacon_shor_code()


class TestStructure:
    def test_parameters(self, code):
        assert (code.n, code.k, code.d) == (9, 1, 3)
        assert len(code.stabilizers) == 4
        assert len(code.gauge_ops) == 12

    def test_gauge_pairs_are_nearest_neighbor(self):
        for q1, q2 in x_gauge_pairs():
            assert q2 - q1 == 3  # vertical neighbor on the 3x3 grid
        for q1, q2 in z_gauge_pairs():
            assert q2 - q1 == 1  # horizontal neighbor
            assert q1 % 3 != 2   # no wraparound pairs

    def test_stabilizers_weight_six(self, code):
        assert all(s.weight == 6 for s in code.stabilizers)

    def test_gauge_ops_weight_two(self, code):
        assert all(g.weight == 2 for g in code.gauge_ops)

    def test_stabilizers_inside_gauge_group(self, code):
        # Every stabilizer is a product of two-qubit gauge operators.
        for stab in code.stabilizers:
            assert code.is_trivial(stab)

    def test_gauge_ops_commute_with_stabilizers(self, code):
        for g in code.gauge_ops:
            for s in code.stabilizers:
                assert g.commutes_with(s)

    def test_logicals_commute_with_gauge(self, code):
        for g in code.gauge_ops:
            assert code.logical_xs[0].commutes_with(g)
            assert code.logical_zs[0].commutes_with(g)


class TestCorrection:
    def test_all_single_errors_corrected(self, code):
        for error in enumerate_errors(9, 1):
            residual, ok = code.correct(error)
            assert ok, f"failed to correct {error.label()}"

    def test_corrections_are_gauge_equivalent_not_exact(self, code):
        # An X error in row 2 shares its syndrome with row 0 of the same
        # column; the residual is a gauge element, not identity.
        error = Pauli.single(9, 6, "X")  # row 2, column 0
        residual, ok = code.correct(error)
        assert ok
        assert not residual.is_identity()
        assert code.is_trivial(residual)

    def test_x_syndrome_identifies_column(self, code):
        # X errors anywhere in one column share a syndrome.
        for col in range(3):
            syndromes = {
                code.syndrome(Pauli.single(9, 3 * row + col, "X"))
                for row in range(3)
            }
            assert len(syndromes) == 1

    def test_z_syndrome_identifies_row(self, code):
        for row in range(3):
            syndromes = {
                code.syndrome(Pauli.single(9, 3 * row + col, "Z"))
                for col in range(3)
            }
            assert len(syndromes) == 1


class TestEncoder:
    def test_gate_budget(self):
        gates = encoder_circuit()
        assert len(gates) == 12
        names = [g.name for g in gates]
        assert names.count("H") == 6
        assert names.count("CNOT") == 6

    def test_encoder_prepares_gauge_fixed_logical_zero(self, code):
        gates = encoder_circuit()
        conjugated = [
            conjugate(Pauli.single(9, q, "Z"), gates) for q in range(9)
        ]
        for stab in code.stabilizers:
            assert stabilizer_group_contains(conjugated, stab), (
                f"missing stabilizer {stab.label()}"
            )
        assert stabilizer_group_contains(conjugated, code.logical_zs[0])

    def test_encoder_not_logical_plus(self, code):
        gates = encoder_circuit()
        conjugated = [
            conjugate(Pauli.single(9, q, "Z"), gates) for q in range(9)
        ]
        assert not stabilizer_group_contains(conjugated, code.logical_xs[0])
