"""Tests for the sharded sweep subsystem (repro.sweep)."""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict

import pytest

from repro.core.design_space import (
    EngineRow,
    HierarchyRow,
    SpecializationRow,
    engine_cell,
    engine_grid,
    engine_sweep,
    hierarchy_grid,
    hierarchy_sweep,
    specialization_grid,
    specialization_sweep,
)
from repro.perf import chaos
from repro.perf.memo import stable_key
from repro.perf.store import ResultStore
from repro.perf.supervise import RetryPolicy, Supervision
from repro.sweep.cli import main as sweep_main
from repro.sweep.grid import Cell, Grid, parse_shard_spec, shard_index
from repro.sweep.runner import (
    CellFailed,
    MissingCells,
    compute_grid,
    missing_report,
    persist_rows,
    rows_from_store,
)

#: One small grid, used consistently so CLI and in-process runs agree.
GRID_KWARGS = dict(workloads=("draper_adder", "modexp_trace"), sizes=(16,),
                   depths=(2,))
GRID_ARGS = ["--workloads", "draper_adder", "modexp_trace",
             "--sizes", "16", "--depths", "2"]


class TestShardPlanner:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7, 16])
    def test_every_cell_in_exactly_one_shard(self, count):
        grid = engine_grid(**GRID_KWARGS)
        shards = [grid.shard(index, count) for index in range(count)]
        seen = [cell for shard in shards for cell in shard]
        assert len(seen) == len(grid)
        assert set(seen) == set(grid.cells)
        assert sum(grid.shard_sizes(count)) == len(grid)

    def test_assignment_is_stable_and_key_only(self):
        grid = engine_grid(**GRID_KWARGS)
        for cell in grid:
            index = shard_index(cell.key, 4)
            assert shard_index(cell.key, 4) == index  # pure function
            assert cell in grid.shard(index, 4).cells

    def test_shards_preserve_canonical_order(self):
        grid = engine_grid(**GRID_KWARGS)
        positions = {cell: i for i, cell in enumerate(grid)}
        for index in range(3):
            owned = list(grid.shard(index, 3))
            assert [positions[c] for c in owned] == sorted(
                positions[c] for c in owned
            )

    def test_shard_validation(self):
        grid = engine_grid(**GRID_KWARGS)
        with pytest.raises(ValueError, match="0 <= i < K"):
            grid.shard(4, 4)
        with pytest.raises(ValueError, match="0 <= i < K"):
            grid.shard(-1, 4)
        with pytest.raises(ValueError, match="at least 1"):
            shard_index("abc", 0)

    def test_parse_shard_spec(self):
        assert parse_shard_spec("0/1") == (0, 1)
        assert parse_shard_spec("3/4") == (3, 4)
        for bad in ["4/4", "-1/4", "1", "a/b", "1/0"]:
            with pytest.raises(ValueError):
                parse_shard_spec(bad)


class TestGridAndCells:
    def test_cell_key_matches_memo_hash(self):
        cell = Cell.make("engine_cell", n_bits=16, workload="qft")
        assert cell.key == stable_key("engine_cell", n_bits=16, workload="qft")

    def test_cell_params_canonical_order(self):
        a = Cell.make("k", x=1, y=2)
        b = Cell.make("k", y=2, x=1)
        assert a == b and a.key == b.key

    def test_grid_rejects_foreign_cells(self):
        with pytest.raises(ValueError, match="kernel"):
            Grid("engine_cell", (Cell.make("other", x=1),))

    def test_sweep_grids_match_sweep_enumeration(self):
        # The grid *is* the sweep's canonical order: computing every
        # cell in grid order reproduces the sweep row list exactly.
        from repro.core.design_space import hierarchy_cell, specialization_cell

        grid = specialization_grid(sizes=(32, 64))
        computed = [specialization_cell(cell.as_dict()) for cell in grid]
        assert computed == specialization_sweep(sizes=(32, 64), cache=False)

        hgrid = hierarchy_grid(sizes=(256,))
        computed = [hierarchy_cell(cell.as_dict()) for cell in hgrid]
        assert computed == hierarchy_sweep(sizes=(256,), cache=False)


class TestComputeGrid:
    def test_store_roundtrip_and_no_recompute(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path)
        rows = compute_grid(grid, engine_cell, EngineRow, store=store)
        assert store.status(grid.keys()).complete
        # Warm pass: the kernel must never be called again.
        warm = compute_grid(grid, _explodes, EngineRow, store=store)
        assert warm == rows
        assert rows_from_store(grid, EngineRow, store) == rows

    def test_without_store_matches_with_store(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        plain = compute_grid(grid, engine_cell, EngineRow)
        stored = compute_grid(
            grid, engine_cell, EngineRow, store=ResultStore(tmp_path)
        )
        assert plain == stored

    def test_schema_mismatched_record_is_recomputed(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path)
        rows = compute_grid(grid, engine_cell, EngineRow, store=store)
        victim = grid.cells[0]
        store.put(victim.key, {"not": "an engine row"})
        healed = compute_grid(grid, engine_cell, EngineRow, store=store)
        assert healed == rows
        assert rows_from_store(grid, EngineRow, store) == rows

    def test_rows_from_store_raises_on_missing(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        with pytest.raises(MissingCells, match="missing"):
            rows_from_store(grid, EngineRow, ResultStore(tmp_path))

    def test_results_persist_incrementally(self, tmp_path):
        """Each record lands as its cell finishes: a crash mid-grid
        keeps everything computed so far, not just full batches."""
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path)
        progress = {"calls": 0}

        def dies_after_three(params):
            if progress["calls"] >= 3:
                raise RuntimeError("simulated crash")
            progress["calls"] += 1
            return engine_cell(params)

        with pytest.raises(RuntimeError, match="simulated crash"):
            compute_grid(grid, dies_after_three, EngineRow, store=store)
        status = store.status(grid.keys())
        assert status.done == 3
        # The batched advisory index still covers the survivors.
        assert len(store.read_index()) == 3
        # And a resume-style pass completes without touching them.
        mtimes = {
            key: store.record_path(key).stat().st_mtime_ns
            for key in grid.keys() if store.has(key)
        }
        full = compute_grid(grid, engine_cell, EngineRow, store=store)
        for key, mtime in mtimes.items():
            assert store.record_path(key).stat().st_mtime_ns == mtime
        assert rows_from_store(grid, EngineRow, store) == full

    def test_memo_hit_writes_through_to_store(self, tmp_path):
        """A whole-sweep memoization hit must still populate store=."""
        from repro.perf.memo import SweepCache

        memo = SweepCache()
        warm = engine_sweep(**GRID_KWARGS, cache=memo)  # populates the memo
        hit = engine_sweep(**GRID_KWARGS, cache=memo, store=tmp_path)
        assert hit == warm
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path)
        assert store.status(grid.keys()).complete
        assert set(store.read_index()) == set(grid.keys())
        assert rows_from_store(grid, EngineRow, store) == warm

    def test_persist_rows_skips_existing_records(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path)
        rows = compute_grid(grid, engine_cell, EngineRow, store=store)
        mtimes = {
            key: store.record_path(key).stat().st_mtime_ns
            for key in grid.keys()
        }
        persist_rows(grid, rows, store)
        for key, mtime in mtimes.items():
            assert store.record_path(key).stat().st_mtime_ns == mtime


def _explodes(params):
    raise AssertionError(f"cell recomputed despite stored record: {params}")


class TestSweepStoreWiring:
    """All three public sweeps read through a store= before computing."""

    def test_specialization_sweep_store(self, tmp_path):
        plain = specialization_sweep(sizes=(32, 64), cache=False)
        first = specialization_sweep(sizes=(32, 64), cache=False,
                                     store=tmp_path)
        warm = specialization_sweep(sizes=(32, 64), cache=False,
                                    store=tmp_path)
        assert plain == first == warm
        grid = specialization_grid(sizes=(32, 64))
        assert ResultStore(tmp_path).status(grid.keys()).complete

    def test_hierarchy_sweep_store(self, tmp_path):
        plain = hierarchy_sweep(sizes=(256,), cache=False)
        stored = hierarchy_sweep(sizes=(256,), cache=False, store=tmp_path)
        warm = hierarchy_sweep(sizes=(256,), cache=False, store=tmp_path)
        assert plain == stored == warm

    def test_engine_sweep_store(self, tmp_path):
        plain = engine_sweep(**GRID_KWARGS, cache=False)
        stored = engine_sweep(**GRID_KWARGS, cache=False, store=tmp_path)
        warm = engine_sweep(**GRID_KWARGS, cache=False, store=tmp_path)
        assert plain == stored == warm


class TestCliShardedEquivalence:
    """Acceptance: K-sharded CLI run + merge == single-process sweep."""

    @pytest.mark.parametrize("count", [2, 3])
    def test_sharded_run_merge_bit_identical(self, tmp_path, count):
        store_dir = str(tmp_path / "store")
        for index in range(count):
            code = sweep_main(["run", "--shard", f"{index}/{count}",
                               "--store", store_dir, *GRID_ARGS])
            assert code == 0
        out = tmp_path / "rows.json"
        code = sweep_main(["merge", "--store", store_dir, "--output",
                           str(out), *GRID_ARGS])
        assert code == 0
        merged = [EngineRow(**row) for row in json.loads(out.read_text())]
        single = engine_sweep(**GRID_KWARGS, cache=False)
        assert merged == single  # bit-identical: frozen dataclass equality

    def test_merge_verify_gate(self, tmp_path):
        store_dir = str(tmp_path / "store")
        assert sweep_main(["run", "--shard", "0/1", "--store", store_dir,
                           *GRID_ARGS]) == 0
        assert sweep_main(["merge", "--store", store_dir, "--verify",
                           *GRID_ARGS, "--output",
                           str(tmp_path / "rows.json")]) == 0

    def test_merge_verify_catches_tampering(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert sweep_main(["run", "--shard", "0/1", "--store",
                           str(store_dir), *GRID_ARGS]) == 0
        store = ResultStore(store_dir)
        grid = engine_grid(**GRID_KWARGS)
        victim = grid.cells[0]
        tampered = dict(store.get(victim.key))
        tampered["makespan_s"] = tampered["makespan_s"] * 2
        store.put(victim.key, tampered)
        assert sweep_main(["merge", "--store", str(store_dir), "--verify",
                           *GRID_ARGS]) == 1
        assert "verify FAILED" in capsys.readouterr().err

    def test_merge_fails_loudly_on_missing_cells(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert sweep_main(["run", "--shard", "0/2", "--store", store_dir,
                           *GRID_ARGS]) == 0
        code = sweep_main(["merge", "--store", store_dir, *GRID_ARGS])
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_table_kernels_shard_and_merge(self, tmp_path):
        """--kernel shards the Table 4/5 grids, not just the engine's."""
        store_dir = str(tmp_path / "store")
        args = ["--kernel", "specialization_cell", "--sizes", "32", "64"]
        for index in range(2):
            assert sweep_main(["run", "--shard", f"{index}/2", "--store",
                               store_dir, *args]) == 0
        out = tmp_path / "rows.json"
        assert sweep_main(["merge", "--store", store_dir, "--verify",
                           "--output", str(out), *args]) == 0
        merged = [
            SpecializationRow(**row) for row in json.loads(out.read_text())
        ]
        assert merged == specialization_sweep(sizes=(32, 64), cache=False)

        store_dir = str(tmp_path / "store5")
        args = ["--kernel", "hierarchy_cell", "--sizes", "256",
                "--transfers", "10"]
        assert sweep_main(["run", "--shard", "0/1", "--store", store_dir,
                           *args]) == 0
        out = tmp_path / "rows5.json"
        assert sweep_main(["merge", "--store", store_dir, "--verify",
                           "--output", str(out), *args]) == 0
        merged = [HierarchyRow(**row) for row in json.loads(out.read_text())]
        assert merged == hierarchy_sweep(sizes=(256,), transfer_options=(10,),
                                         cache=False)

    def test_engine_only_options_rejected_for_table_kernels(self, tmp_path):
        with pytest.raises(SystemExit, match="engine-grid options"):
            sweep_main(["run", "--shard", "0/1", "--store",
                        str(tmp_path / "s"), "--kernel", "hierarchy_cell",
                        "--depths", "2"])

    def test_status_reports_progress(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert sweep_main(["run", "--shard", "0/2", "--store", store_dir,
                           *GRID_ARGS]) == 0
        code = sweep_main(["status", "--store", store_dir, "--shards", "2",
                           *GRID_ARGS])
        assert code == 1  # incomplete grid: nonzero for scripting
        text = capsys.readouterr().out
        assert "shard 0/2" in text and "shard 1/2" in text
        assert sweep_main(["run", "--shard", "1/2", "--store", store_dir,
                           *GRID_ARGS]) == 0
        assert sweep_main(["status", "--store", store_dir, *GRID_ARGS]) == 0


class TestResume:
    def test_resume_completes_without_recomputing(self, tmp_path, capsys):
        """Partial store (as a killed worker leaves it, plus one torn
        record and a stray temp file) -> resume computes only the gap."""
        store_dir = tmp_path / "store"
        assert sweep_main(["run", "--shard", "0/3", "--store",
                           str(store_dir), *GRID_ARGS]) == 0
        store = ResultStore(store_dir)
        grid = engine_grid(**GRID_KWARGS)
        done_before = {
            key: store.record_path(key).stat().st_mtime_ns
            for key in grid.keys() if store.has(key)
        }
        assert 0 < len(done_before) < len(grid)
        # A non-atomic writer dying mid-write would leave these; the
        # atomic store never does, but resume must shrug either off.
        torn_key = next(k for k in grid.keys() if k not in done_before)
        store.record_path(torn_key).write_text('{"value": {"work')
        (store_dir / ".deadbeef-000.tmp").write_text("half a record")
        capsys.readouterr()
        assert sweep_main(["resume", "--store", str(store_dir),
                           *GRID_ARGS]) == 0
        out = capsys.readouterr().out
        assert f"{len(done_before)} already stored" in out
        assert f"{len(grid) - len(done_before)} computed" in out
        # Finished cells were not rewritten...
        for key, mtime in done_before.items():
            assert store.record_path(key).stat().st_mtime_ns == mtime
        # ...and the completed store merges bit-identically.
        assert rows_from_store(grid, EngineRow, store) == engine_sweep(
            **GRID_KWARGS, cache=False
        )

    def test_resume_after_real_kill(self, tmp_path):
        """SIGKILL a serial worker mid-shard; resume finishes the grid."""
        store_dir = tmp_path / "store"
        args = ["--workloads", "draper_adder", "qft", "--sizes", "16", "32",
                "--depths", "2", "3"]
        kwargs = dict(workloads=("draper_adder", "qft"), sizes=(16, 32),
                      depths=(2, 3))
        env = dict(os.environ)
        inherited = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = "src" + (os.pathsep + inherited if inherited else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.sweep", "run", "--shard", "0/1",
             "--store", str(store_dir), *args],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill: still a valid run
                if store_dir.is_dir() and len(
                    [p for p in store_dir.glob("*.json")
                     if p.name != "index.json"]
                ) >= 2:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.005)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
                proc.wait()
        store = ResultStore(store_dir)
        grid = engine_grid(**kwargs)
        survivors = {
            key: store.record_path(key).stat().st_mtime_ns
            for key in grid.keys() if store.has(key)
        }
        assert survivors  # the poll above saw >= 2 records
        assert sweep_main(["resume", "--store", str(store_dir), *args]) == 0
        for key, mtime in survivors.items():
            assert store.record_path(key).stat().st_mtime_ns == mtime
        assert rows_from_store(grid, EngineRow, store) == engine_sweep(
            **kwargs, cache=False
        )


class TestTablesFromStore:
    def test_engine_table_from_store(self, tmp_path):
        from repro.analysis import (
            engine_table_from_store,
            engine_table_text,
            engine_table_text_from_store,
        )

        rows = engine_sweep(**GRID_KWARGS, cache=False, store=tmp_path)
        assert engine_table_from_store(tmp_path, **GRID_KWARGS) == rows
        assert engine_table_text_from_store(
            tmp_path, **GRID_KWARGS
        ) == engine_table_text(**GRID_KWARGS, cache=False)
        with pytest.raises(MissingCells):
            engine_table_from_store(tmp_path)  # default grid is larger

    def test_row_json_roundtrip_is_exact(self, tmp_path):
        """Floats survive the record JSON bit-for-bit (repr round-trip)."""
        rows = engine_sweep(**GRID_KWARGS, cache=False)
        for row in rows:
            rebuilt = EngineRow(**json.loads(json.dumps(asdict(row))))
            assert rebuilt == row


class TestHierarchySweepRowTypes:
    def test_row_types_json_roundtrip(self):
        for sweep, row_type, kwargs in [
            (specialization_sweep, SpecializationRow, dict(sizes=(32,))),
            (hierarchy_sweep, HierarchyRow, dict(sizes=(256,))),
        ]:
            rows = sweep(cache=False, **kwargs)
            for row in rows:
                assert row_type(**json.loads(json.dumps(asdict(row)))) == row


#: The small fault-tolerance grid: 1 workload x 1 size x 1 depth x
#: 4 policies x 2 prefetchers = 8 cells.
CHAOS_KWARGS = dict(workloads=("draper_adder",), sizes=(16,), depths=(2,))
CHAOS_ARGS = ["--workloads", "draper_adder", "--sizes", "16",
              "--depths", "2"]


def _cell_with(grid, **wanted):
    """The unique grid cell whose params include every (name, value)."""
    matches = [
        cell for cell in grid
        if all(cell.as_dict().get(k) == v for k, v in wanted.items())
    ]
    assert len(matches) == 1, (wanted, matches)
    return matches[0]


def _record_bytes(store, keys):
    return {key: store.record_path(key).read_bytes() for key in keys}


class TestSupervisedComputeGrid:
    def test_fault_free_supervised_store_bit_identical(self, tmp_path):
        """The zero-retry supervised path is the identity wrapper: the
        record *bytes* match the plain runner's, serial and pooled."""
        grid = engine_grid(**CHAOS_KWARGS)
        plain = ResultStore(tmp_path / "plain")
        rows = compute_grid(grid, engine_cell, EngineRow, store=plain)
        baseline = _record_bytes(plain, grid.keys())
        for name, workers in [("serial", None), ("pool", 2)]:
            store = ResultStore(tmp_path / name)
            supervised = compute_grid(
                grid, engine_cell, EngineRow, store=store, workers=workers,
                supervise=Supervision(),
            )
            assert supervised == rows
            assert _record_bytes(store, grid.keys()) == baseline

    def test_quarantine_leaves_none_row_and_failure_record(self, tmp_path):
        grid = engine_grid(**CHAOS_KWARGS)
        poison = _cell_with(grid, policy="fifo", prefetch="next_k")
        store = ResultStore(tmp_path)
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "raise",
              "match": {"policy": "fifo", "prefetch": "next_k"}}]
        )
        with chaos.active(plan):
            rows = compute_grid(
                grid, engine_cell, EngineRow, store=store,
                supervise=Supervision(),
            )
        position = list(grid).index(poison)
        assert rows[position] is None
        assert sum(1 for row in rows if row is None) == 1
        record = store.failure(poison.key)
        assert record["failure"]["exception_type"] == "ChaosFault"
        assert record["meta"]["params"] == poison.as_dict()
        report = missing_report(grid, store)
        assert [cell.key for cell, _ in report] == [poison.key]
        assert report[0][1] == record

    def test_quarantine_false_raises_cell_failed(self, tmp_path):
        grid = engine_grid(**CHAOS_KWARGS)
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "raise",
              "match": {"policy": "fifo", "prefetch": "next_k"}}]
        )
        with chaos.active(plan):
            with pytest.raises(CellFailed, match="failed terminally"):
                compute_grid(
                    grid, engine_cell, EngineRow,
                    store=ResultStore(tmp_path),
                    supervise=Supervision(quarantine=False),
                )

    def test_success_clears_stale_failure_record(self, tmp_path):
        grid = engine_grid(**CHAOS_KWARGS)
        poison = _cell_with(grid, policy="fifo", prefetch="next_k")
        store = ResultStore(tmp_path)
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "raise",
              "match": {"policy": "fifo", "prefetch": "next_k"}}]
        )
        with chaos.active(plan):
            compute_grid(
                grid, engine_cell, EngineRow, store=store,
                supervise=Supervision(),
            )
        assert store.failure(poison.key) is not None
        # Chaos off: a plain (unsupervised) recompute heals the cell and
        # drops the quarantine record.
        healed = compute_grid(grid, engine_cell, EngineRow, store=store)
        assert all(row is not None for row in healed)
        assert store.failure(poison.key) is None
        assert store.status(grid.keys()).complete

    def test_partial_sweep_never_memoized(self, tmp_path):
        """A quarantined sweep (None rows) must not poison the memo —
        and must not crash trying to serialize None."""
        from repro.perf.memo import SweepCache

        memo = SweepCache()
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "raise",
              "match": {"policy": "fifo", "prefetch": "next_k"}}]
        )
        with chaos.active(plan):
            rows = engine_sweep(
                **CHAOS_KWARGS, cache=memo, supervise=Supervision()
            )
        assert sum(1 for row in rows if row is None) == 1
        # A later fault-free sweep through the same memo is complete.
        clean = engine_sweep(**CHAOS_KWARGS, cache=memo)
        assert all(row is not None for row in clean)
        assert clean == engine_sweep(**CHAOS_KWARGS, cache=False)

    def test_rows_from_store_allow_missing_placeholders(self, tmp_path):
        grid = engine_grid(**CHAOS_KWARGS)
        store = ResultStore(tmp_path)
        rows = compute_grid(grid, engine_cell, EngineRow, store=store)
        victim = grid.cells[3]
        store.record_path(victim.key).unlink()
        with pytest.raises(MissingCells):
            rows_from_store(grid, EngineRow, store)
        degraded = rows_from_store(grid, EngineRow, store, allow_missing=True)
        assert len(degraded) == len(grid)
        assert degraded[3] is None
        assert [r for r in degraded if r is not None] == [
            row for i, row in enumerate(rows) if i != 3
        ]
        report = missing_report(grid, store)
        assert [cell.key for cell, failure in report] == [victim.key]
        assert report[0][1] is None  # missing, but not quarantined


class TestChaosShardedAcceptance:
    """Acceptance: a 4-shard run under scripted transient + poison +
    hang faults — every shard exits 0, status names exactly the
    quarantined cell, the degraded merge verifies, and a fault-free
    resume heals the store to bit-identity with a clean run."""

    def test_four_shards_survive_scripted_faults(self, tmp_path, capsys):
        grid = engine_grid(**CHAOS_KWARGS)
        poison = _cell_with(grid, policy="fifo", prefetch="next_k")
        clean = ResultStore(tmp_path / "clean")
        clean_rows = compute_grid(grid, engine_cell, EngineRow, store=clean)
        store_dir = tmp_path / "store"
        plan = chaos.ChaosPlan.scripted(
            [
                {"fault": "transient",
                 "match": {"policy": "lru", "prefetch": "none"}, "times": 1},
                {"fault": "raise",
                 "match": {"policy": "fifo", "prefetch": "next_k"}},
                {"fault": "hang",
                 "match": {"policy": "score", "prefetch": "none"},
                 "times": 1, "hang_s": 120.0},
            ],
            state_dir=tmp_path / "chaos-state",
        )
        with chaos.active(plan):
            for index in range(4):
                code = sweep_main(
                    ["run", "--shard", f"{index}/4", "--store",
                     str(store_dir), "--workers", "2", "--retries", "3",
                     "--cell-timeout", "15", *CHAOS_ARGS]
                )
                assert code == 0  # quarantine never fails a shard

        store = ResultStore(store_dir)
        status = store.status(grid.keys())
        assert status.failed_keys == (poison.key,)
        assert status.done == len(grid) - 1

        capsys.readouterr()
        assert sweep_main(
            ["status", "--store", str(store_dir), *CHAOS_ARGS]
        ) == 1  # incomplete grid: nonzero for scripting
        text = capsys.readouterr().out
        assert "1 quarantined" in text
        assert f"quarantined {poison.key}" in text
        assert "ChaosFault" in text

        # Degraded merge: --verify passes on the 7 present cells.
        out = tmp_path / "partial.json"
        assert sweep_main(
            ["merge", "--store", str(store_dir), "--verify",
             "--allow-missing", "--output", str(out), *CHAOS_ARGS]
        ) == 0
        err = capsys.readouterr().err
        assert f"missing {poison.key}" in err
        merged = [EngineRow(**row) for row in json.loads(out.read_text())]
        position = list(grid).index(poison)
        assert merged == [
            row for i, row in enumerate(clean_rows) if i != position
        ]
        # A strict merge still refuses the partial store.
        assert sweep_main(
            ["merge", "--store", str(store_dir), *CHAOS_ARGS]
        ) == 1

        # Every non-quarantined record is byte-identical to the clean
        # single-process run's (the faults never tainted survivors).
        survivors = [key for key in grid.keys() if key != poison.key]
        assert _record_bytes(store, survivors) == _record_bytes(
            clean, survivors
        )

        # Chaos off: resume heals the poison cell, full merge verifies,
        # and the store is record-for-record identical to the clean one.
        assert sweep_main(
            ["resume", "--store", str(store_dir), *CHAOS_ARGS]
        ) == 0
        assert store.failure(poison.key) is None
        assert sweep_main(
            ["merge", "--store", str(store_dir), "--verify", *CHAOS_ARGS]
        ) == 0
        assert _record_bytes(store, grid.keys()) == _record_bytes(
            clean, grid.keys()
        )

    def test_corrupt_fault_heals_on_resume(self, tmp_path):
        """A record torn after its atomic rename reads as missing and a
        fault-free resume recomputes it bit-identically."""
        grid = engine_grid(**CHAOS_KWARGS)
        victim = _cell_with(grid, policy="belady", prefetch="next_k")
        store_dir = tmp_path / "store"
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "corrupt",
              "match": {"policy": "belady", "prefetch": "next_k"},
              "times": 1}],
            state_dir=tmp_path / "chaos-state",
        )
        with chaos.active(plan):
            assert sweep_main(
                ["run", "--shard", "0/1", "--store", str(store_dir),
                 *CHAOS_ARGS]
            ) == 0
        store = ResultStore(store_dir)
        assert not store.has(victim.key)  # torn record = missing
        status = store.status(grid.keys())
        assert status.missing_keys == (victim.key,)
        assert status.failed == 0  # torn, not quarantined
        assert sweep_main(
            ["resume", "--store", str(store_dir), *CHAOS_ARGS]
        ) == 0
        clean = ResultStore(tmp_path / "clean")
        compute_grid(grid, engine_cell, EngineRow, store=clean)
        assert _record_bytes(store, grid.keys()) == _record_bytes(
            clean, grid.keys()
        )

    def test_max_failures_aborts_shard_nonzero(self, tmp_path, capsys):
        plan = chaos.ChaosPlan.scripted(
            [
                {"fault": "raise", "match": {"policy": "fifo"}},
                {"fault": "raise", "match": {"policy": "lru"}},
            ]
        )
        with chaos.active(plan):
            code = sweep_main(
                ["run", "--shard", "0/1", "--store", str(tmp_path / "s"),
                 "--retries", "1", "--max-failures", "1", *CHAOS_ARGS]
            )
        assert code == 1
        assert "aborted" in capsys.readouterr().err


class TestDegradedTables:
    def test_engine_table_allow_missing_renders_dashes(self, tmp_path):
        from repro.analysis import engine_table_text_from_store

        grid = engine_grid(**CHAOS_KWARGS)
        store = ResultStore(tmp_path)
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "raise",
              "match": {"policy": "fifo", "prefetch": "next_k"}}]
        )
        with chaos.active(plan):
            compute_grid(
                grid, engine_cell, EngineRow, store=store,
                supervise=Supervision(),
            )
        with pytest.raises(MissingCells):
            engine_table_text_from_store(store, **CHAOS_KWARGS)
        text = engine_table_text_from_store(
            store, allow_missing=True, **CHAOS_KWARGS
        )
        assert "—" in text
        assert "1 cell(s) missing/quarantined" in text
        assert "ChaosFault" in text  # the footer names the quarantine
        # The hole still shows its axis parameters.
        assert "fifo" in text

    def test_table3_allow_missing_renders_dashes(self, tmp_path):
        from repro.analysis import table3_text_from_store
        from repro.core.design_space import (
            TransferRow,
            transfer_cell,
            transfer_grid,
        )

        grid = transfer_grid()
        store = ResultStore(tmp_path)
        compute_grid(grid, transfer_cell, TransferRow, store=store)
        store.record_path(grid.cells[5].key).unlink()
        with pytest.raises(MissingCells):
            table3_text_from_store(store)
        text = table3_text_from_store(store, allow_missing=True)
        assert "—" in text
        assert "1 cell(s) missing/quarantined" in text
        # All four standard points keep their axes despite the hole.
        assert "7-L1" in text and "9-L2" in text
