"""Tests for the Steane [[7,1,3]] code and its encoder."""

import pytest

from repro.ecc.clifford import conjugate, stabilizer_group_contains
from repro.ecc.pauli import Pauli, enumerate_errors
from repro.ecc.steane import HAMMING_ROWS, ROW_PIVOTS, encoder_circuit, steane_code


@pytest.fixture(scope="module")
def code():
    return steane_code()


class TestStructure:
    def test_parameters(self, code):
        assert (code.n, code.k, code.d) == (7, 1, 3)
        assert code.n_syndrome_bits == 6
        assert not code.gauge_ops

    def test_stabilizer_weights_are_four(self, code):
        assert all(s.weight == 4 for s in code.stabilizers)

    def test_logicals_are_weight_seven(self, code):
        assert code.logical_xs[0].weight == 7
        assert code.logical_zs[0].weight == 7

    def test_pivots_unique_to_rows(self):
        for row, pivot in zip(HAMMING_ROWS, ROW_PIVOTS):
            assert pivot in row
            for other in HAMMING_ROWS:
                if other is not row:
                    assert pivot not in other


class TestCorrection:
    def test_all_single_errors_corrected(self, code):
        for error in enumerate_errors(7, 1):
            residual, ok = code.correct(error)
            assert ok, f"failed to correct {error.label()}"

    def test_single_error_syndromes_distinct(self, code):
        # CSS distance-3: all 21 single-qubit errors have distinct,
        # non-trivial syndromes.
        syndromes = {code.syndrome(e) for e in enumerate_errors(7, 1)}
        assert len(syndromes) == 21
        assert (0,) * 6 not in syndromes

    def test_logical_x_undetected_but_logical(self, code):
        lx = code.logical_xs[0]
        assert code.syndrome(lx) == (0,) * 6
        assert code.is_logical_error(lx)


class TestEncoder:
    def test_gate_budget(self):
        gates = encoder_circuit()
        assert len(gates) == 12
        names = [g.name for g in gates]
        assert names.count("H") == 3
        assert names.count("CNOT") == 9

    def test_encoder_prepares_logical_zero(self, code):
        """Conjugate the |0...0> stabilizers (Z_i) through the encoder;
        the resulting group must generate every code stabilizer and the
        logical Z, all with + sign."""
        gates = encoder_circuit()
        conjugated = [
            conjugate(Pauli.single(7, q, "Z"), gates) for q in range(7)
        ]
        for stab in code.stabilizers:
            assert stabilizer_group_contains(conjugated, stab), (
                f"missing stabilizer {stab.label()}"
            )
        assert stabilizer_group_contains(conjugated, code.logical_zs[0])

    def test_encoder_does_not_produce_logical_x(self, code):
        gates = encoder_circuit()
        conjugated = [
            conjugate(Pauli.single(7, q, "Z"), gates) for q in range(7)
        ]
        assert not stabilizer_group_contains(conjugated, code.logical_xs[0])
