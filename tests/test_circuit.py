"""Unit tests for the circuit container and classical simulation."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    GateKind,
    cnot_gate,
    h_gate,
    toffoli_gate,
    x_gate,
)


class TestConstruction:
    def test_bounds_checked_on_append(self):
        c = Circuit(n_qubits=2)
        with pytest.raises(ValueError):
            c.append(x_gate(2))

    def test_bounds_checked_on_init(self):
        with pytest.raises(ValueError):
            Circuit(n_qubits=1, gates=[cnot_gate(0, 1)])

    def test_needs_a_qubit(self):
        with pytest.raises(ValueError):
            Circuit(n_qubits=0)

    def test_extend_and_len(self):
        c = Circuit(n_qubits=3)
        c.extend([x_gate(0), cnot_gate(0, 1)])
        assert len(c) == 2
        assert [g.kind for g in c] == [GateKind.X, GateKind.CNOT]


class TestStatistics:
    def test_counts(self):
        c = Circuit(n_qubits=3, gates=[
            x_gate(0), cnot_gate(0, 1), toffoli_gate(0, 1, 2), x_gate(1),
        ])
        assert c.count(GateKind.X) == 2
        assert c.toffoli_count == 1
        assert c.gate_counts()[GateKind.CNOT] == 1

    def test_total_ec_slots(self):
        c = Circuit(n_qubits=3, gates=[toffoli_gate(0, 1, 2), x_gate(0)])
        assert c.total_ec_slots() == 16

    def test_touched_qubits(self):
        c = Circuit(n_qubits=5, gates=[cnot_gate(1, 3)])
        assert c.touched_qubits() == [1, 3]

    def test_is_classical(self):
        classical = Circuit(n_qubits=2, gates=[cnot_gate(0, 1)])
        quantum = Circuit(n_qubits=2, gates=[h_gate(0)])
        assert classical.is_classical()
        assert not quantum.is_classical()


class TestClassicalSimulation:
    def test_x_flips(self):
        c = Circuit(n_qubits=1, gates=[x_gate(0)])
        assert c.simulate_classical([0]) == [1]

    def test_cnot(self):
        c = Circuit(n_qubits=2, gates=[cnot_gate(0, 1)])
        assert c.simulate_classical([1, 0]) == [1, 1]
        assert c.simulate_classical([0, 0]) == [0, 0]

    def test_toffoli_truth_table(self):
        c = Circuit(n_qubits=3, gates=[toffoli_gate(0, 1, 2)])
        assert c.simulate_classical([1, 1, 0]) == [1, 1, 1]
        assert c.simulate_classical([1, 0, 0]) == [1, 0, 0]

    def test_non_classical_rejected(self):
        c = Circuit(n_qubits=1, gates=[h_gate(0)])
        with pytest.raises(ValueError):
            c.simulate_classical([0])

    def test_wrong_width_rejected(self):
        c = Circuit(n_qubits=2, gates=[x_gate(0)])
        with pytest.raises(ValueError):
            c.simulate_classical([0])


class TestComposition:
    def test_concatenate(self):
        a = Circuit(n_qubits=2, gates=[x_gate(0)], name="a")
        b = Circuit(n_qubits=2, gates=[x_gate(1)], name="b")
        c = a.concatenate(b)
        assert len(c) == 2

    def test_concatenate_size_mismatch(self):
        a = Circuit(n_qubits=2)
        b = Circuit(n_qubits=3)
        with pytest.raises(ValueError):
            a.concatenate(b)

    def test_reverse_undoes_classical_circuit(self):
        c = Circuit(n_qubits=3, gates=[
            cnot_gate(0, 1), toffoli_gate(0, 1, 2), x_gate(0),
        ])
        full = c.concatenate(c.reversed_classical())
        for bits in ([0, 0, 0], [1, 0, 1], [1, 1, 1]):
            assert full.simulate_classical(bits) == bits

    def test_reverse_rejects_quantum(self):
        c = Circuit(n_qubits=1, gates=[h_gate(0)])
        with pytest.raises(ValueError):
            c.reversed_classical()
