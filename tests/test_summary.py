"""Tests for the headline-summary module."""

import pytest

from repro.analysis.summary import compute_headline, headline_text


@pytest.fixture(scope="module")
def headline():
    return compute_headline()


class TestHeadline:
    def test_area_reduction_order_of_magnitude(self, headline):
        assert headline.peak_area_reduction > 9.0

    def test_speedup_about_eight(self, headline):
        assert headline.peak_adder_speedup > 7.0

    def test_gain_product_tens(self, headline):
        assert headline.peak_gain_product > 30.0

    def test_crossover(self, headline):
        assert headline.superblock_crossover == 36

    def test_adder_saturation(self, headline):
        assert headline.adder64_saturating_blocks == 15

    def test_no_memory_wall(self, headline):
        assert headline.memory_wall_absent()
        assert headline.comm_step_over_gate_step <= 1.05

    def test_text_render(self, headline):
        text = headline_text()
        assert "Headline claims" in text
        assert "36" in text
