"""Tests for computation-vs-communication accounting (Figure 8)."""

import pytest

from repro.sim.comm import (
    adder_transfer_count,
    modexp_breakdown,
    qft_breakdown,
    superblock_bandwidth_per_period,
)


class TestTraffic:
    def test_adder_transfer_count_scales_with_toffolis(self):
        from repro.sim.scheduler import _adder_circuit

        circuit = _adder_circuit(64, False)
        transfers = adder_transfer_count(64)
        assert transfers >= 18 * circuit.toffoli_count

    def test_superblock_bandwidth_grows_with_blocks(self):
        small = superblock_bandwidth_per_period(16)
        large = superblock_bandwidth_per_period(121)
        assert large > small


class TestModexp:
    def test_communication_subordinate_to_computation(self):
        """Figure 8a's message: modular exponentiation is dominated by
        computation; communication is significant but smaller."""
        for n in (64, 256):
            b = modexp_breakdown("bacon_shor", n, 16 if n == 64 else 49)
            assert 0.1 < b.ratio < 1.0

    def test_totals_grow_steeply_with_size(self):
        small = modexp_breakdown("bacon_shor", 64, 16)
        large = modexp_breakdown("bacon_shor", 256, 49)
        assert large.computation_s > 4 * small.computation_s

    def test_hours_conversion(self):
        b = modexp_breakdown("bacon_shor", 64, 16)
        assert b.computation_hours == pytest.approx(b.computation_s / 3600)

    def test_steane_slower_than_bacon_shor(self):
        st = modexp_breakdown("steane", 64, 16)
        bs = modexp_breakdown("bacon_shor", 64, 16)
        assert st.computation_s > bs.computation_s


class TestQft:
    def test_communication_closely_tracks_computation(self):
        """Figure 8b's message: QFT communication is a little less than
        computation and tracks it across sizes."""
        for n in (100, 500, 1000):
            b = qft_breakdown("bacon_shor", n)
            assert 0.5 < b.ratio < 1.0

    def test_quadratic_growth(self):
        b100 = qft_breakdown("bacon_shor", 100)
        b1000 = qft_breakdown("bacon_shor", 1000)
        assert 80 < b1000.computation_s / b100.computation_s < 120

    def test_magnitude_near_paper(self):
        # Paper Figure 8b tops out around 1e5 seconds at size 1000.
        b = qft_breakdown("bacon_shor", 1000)
        assert 3e4 < b.computation_s < 3e5
