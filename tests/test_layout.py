"""Unit tests for trapping-region grid geometry."""

import pytest

from repro.physical.layout import (
    GridSpec,
    TileGeometry,
    manhattan,
    near_square_grid,
    route,
)


class TestGridSpec:
    def test_basic_counts(self):
        g = GridSpec(rows=3, cols=4)
        assert g.n_regions == 12
        assert g.contains((0, 0)) and g.contains((2, 3))
        assert not g.contains((3, 0)) and not g.contains((0, 4))
        assert not g.contains((-1, 0))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridSpec(rows=0, cols=3)
        with pytest.raises(ValueError):
            GridSpec(rows=3, cols=-1)
        with pytest.raises(ValueError):
            GridSpec(rows=3, cols=3, capacity=0)

    def test_neighbors_interior_and_corner(self):
        g = GridSpec(rows=3, cols=3)
        assert set(g.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}
        assert set(g.neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_coords_enumerates_all(self):
        g = GridSpec(rows=2, cols=3)
        assert len(list(g.coords())) == 6

    def test_area(self):
        g = GridSpec(rows=2, cols=2)
        assert g.area_um2() == pytest.approx(4 * 2500.0)
        assert g.area_mm2() == pytest.approx(0.01)


class TestRouting:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((2, 2), (2, 2)) == 0

    def test_route_endpoints_and_length(self):
        path = route((0, 0), (2, 3))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 3)
        assert len(path) == manhattan((0, 0), (2, 3)) + 1

    def test_route_steps_are_unit_hops(self):
        path = route((4, 1), (1, 3))
        for a, b in zip(path, path[1:]):
            assert manhattan(a, b) == 1

    def test_route_to_self(self):
        assert route((1, 1), (1, 1)) == [(1, 1)]


class TestNearSquareGrid:
    def test_exact_square(self):
        g = near_square_grid(49)
        assert (g.rows, g.cols) == (7, 7)

    def test_at_least_requested(self):
        for n in (1, 2, 5, 13, 88, 89, 100, 1000):
            g = near_square_grid(n)
            assert g.n_regions >= n

    def test_near_square_aspect(self):
        g = near_square_grid(88)
        assert abs(g.rows - g.cols) <= 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            near_square_grid(0)


class TestTileGeometry:
    def test_region_count_includes_channels(self):
        t = TileGeometry(n_ions=10, channel_fraction=1.0)
        assert t.n_regions == 20

    def test_zero_channels(self):
        t = TileGeometry(n_ions=10, channel_fraction=0.0)
        assert t.n_regions == 10

    def test_steane_tile_matches_schedule_grid(self):
        # 28 ions at channel factor 2.15 -> the 9x10 grid the EC
        # schedule is laid out on.
        t = TileGeometry(n_ions=28, channel_fraction=2.15)
        g = t.grid()
        assert (g.rows, g.cols) == (9, 10)

    def test_bacon_shor_tile_is_7x7(self):
        t = TileGeometry(n_ions=21, channel_fraction=1.31)
        g = t.grid()
        assert (g.rows, g.cols) == (7, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            TileGeometry(n_ions=0, channel_fraction=1.0)
        with pytest.raises(ValueError):
            TileGeometry(n_ions=5, channel_fraction=-0.1)

    def test_mean_hop_distance_positive_and_bounded(self):
        t = TileGeometry(n_ions=28, channel_fraction=2.15)
        mean = t.mean_hop_distance()
        g = t.grid()
        assert 0 < mean < g.rows + g.cols

    def test_mean_hop_single_region(self):
        assert TileGeometry(1, 0.0).mean_hop_distance() == 0.0
