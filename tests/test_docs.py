"""The docs gate: executable guides and unbroken references.

Every fenced example in ``docs/*.md`` runs as a doctest (the CI lint
job runs this file as its docs gate; ``pytest --doctest-glob="*.md"
docs/`` is the equivalent direct invocation), and the cross-references
the guides make — test files, example scripts, and ``repro.*`` module
paths — must resolve against the tree, so a rename breaks the build
instead of silently rotting the documentation.
"""

import doctest
import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

DOC_FILES = sorted(DOCS.glob("*.md"))


def test_docs_exist():
    names = [path.name for path in DOC_FILES]
    assert "architecture.md" in names
    assert "reproducing-the-paper.md" in names
    assert "sweep-service.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_examples_execute(path):
    results = doctest.testfile(
        str(path), module_relative=False, verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, f"{path.name} has no executable examples"
    assert results.failed == 0, f"{results.failed} failing examples"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_file_references_resolve(path):
    """Every tests/, examples/, benchmarks/ or docs/ path named in a
    guide points at a real file."""
    text = path.read_text()
    refs = re.findall(
        r"\b((?:tests|examples|benchmarks|docs)/[\w.\-/]+\.(?:py|md|json))",
        text,
    )
    assert refs, f"{path.name} references no repository files"
    missing = [ref for ref in set(refs) if not (ROOT / ref).is_file()]
    assert not missing, f"{path.name} references missing files: {missing}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_module_references_import(path):
    """Every dotted ``repro.*`` reference resolves to a module or to an
    attribute of one (e.g. ``repro.sim.levels.simulate_hierarchy_run``)."""
    text = path.read_text()
    refs = {
        match.rstrip(".")
        for match in re.findall(r"\brepro(?:\.\w+)+", text)
    }
    assert refs, f"{path.name} references no repro modules"
    unresolved = []
    for ref in sorted(refs):
        parts = ref.split(".")
        obj = None
        for split in range(len(parts), 0, -1):
            module_name = ".".join(parts[:split])
            try:
                obj = importlib.import_module(module_name)
            except ImportError:
                continue
            for attr in parts[split:]:
                obj = getattr(obj, attr, None)
                if obj is None:
                    break
            break
        if obj is None:
            unresolved.append(ref)
    assert not unresolved, (
        f"{path.name} references unresolved modules/attributes: {unresolved}"
    )
