"""Tests for the concatenation model against the paper's Table 2."""

import pytest

from repro.analysis import paper_values
from repro.ecc.concatenated import (
    BACON_SHOR_SPEC,
    STEANE_SPEC,
    bacon_shor_concatenated,
    by_key,
    spec_by_key,
    steane_concatenated,
)


class TestSpecs:
    def test_upper_ops_steane(self):
        # 2*12 encode + 2*7 transversal + 10 overhead = 48 per syndrome.
        assert STEANE_SPEC.upper_ops_per_syndrome() == 48

    def test_upper_ops_bacon_shor(self):
        # 6 gauge x (1 + 4 + 1) + 4 = 40 per syndrome.
        assert BACON_SHOR_SPEC.upper_ops_per_syndrome() == 40

    def test_spec_lookup(self):
        assert spec_by_key("steane") is STEANE_SPEC
        with pytest.raises(ValueError):
            spec_by_key("surface")

    def test_by_key(self):
        assert by_key("steane").spec is STEANE_SPEC
        assert by_key("bacon_shor").spec is BACON_SHOR_SPEC
        with pytest.raises(ValueError):
            by_key("nope")


class TestIonCounts:
    def test_table2_data_counts_exact(self):
        for key, level in paper_values.QUBIT_COUNTS:
            code = by_key(key)
            paper_data, _ = paper_values.QUBIT_COUNTS[(key, level)]
            assert code.data_ions(level) == paper_data

    def test_l1_ancilla_counts_exact(self):
        assert steane_concatenated().ancilla_ions(1) == 21
        assert bacon_shor_concatenated().ancilla_ions(1) == 12

    def test_bacon_shor_l2_ancilla_within_one_of_paper(self):
        # Paper: 298; our model: 9 data + 9 ancilla level-1 blocks = 297.
        assert abs(bacon_shor_concatenated().ancilla_ions(2) - 298) <= 1

    def test_level_zero(self):
        code = steane_concatenated()
        assert code.total_ions(0) == 1
        assert code.data_ions(0) == 1

    def test_block_counts(self):
        assert steane_concatenated().logical_block_counts(2) == (7, 7)
        assert bacon_shor_concatenated().logical_block_counts(2) == (9, 9)


class TestTiming:
    @pytest.mark.parametrize("key", ["steane", "bacon_shor"])
    @pytest.mark.parametrize("level", [1, 2])
    def test_ec_time_matches_paper(self, key, level):
        code = by_key(key)
        paper = paper_values.EC_TIME_S[(key, level)]
        assert code.ec_time_s(level) == pytest.approx(paper, rel=0.15)

    def test_transversal_is_two_ec_plus_pulse(self):
        code = steane_concatenated()
        for level in (1, 2):
            assert code.transversal_gate_time_s(level) > 2 * code.ec_time_s(level)
            assert code.transversal_gate_time_s(level) == pytest.approx(
                2 * code.ec_time_s(level), rel=0.05
            )

    def test_l2_two_orders_above_l1(self):
        # "two orders of magnitude more than the time to error correct
        # at level 1" (Section 4.1).
        code = steane_concatenated()
        ratio = code.ec_time_s(2) / code.ec_time_s(1)
        assert 80 < ratio < 120

    def test_bacon_shor_faster_than_steane(self):
        st, bs = steane_concatenated(), bacon_shor_concatenated()
        for level in (1, 2):
            assert bs.ec_time_s(level) < st.ec_time_s(level)

    def test_logical_op_time_between_ec_and_transversal(self):
        code = bacon_shor_concatenated()
        assert (
            code.ec_time_s(2)
            < code.logical_op_time_s(2)
            < code.transversal_gate_time_s(2)
        )

    def test_ec_time_level_zero_is_zero(self):
        assert steane_concatenated().ec_time_s(0) == 0.0


class TestArea:
    @pytest.mark.parametrize("key", ["steane", "bacon_shor"])
    @pytest.mark.parametrize("level", [1, 2])
    def test_qubit_area_matches_paper(self, key, level):
        code = by_key(key)
        paper = paper_values.QUBIT_AREA_MM2[(key, level)]
        assert code.qubit_area_mm2(level) == pytest.approx(paper, rel=0.25)

    def test_steane_l2_area_is_14_l1_tiles_plus_overhead(self):
        code = steane_concatenated()
        expected = 14 * code.qubit_area_mm2(1) * 1.1
        assert code.qubit_area_mm2(2) == pytest.approx(expected)

    def test_bacon_shor_denser_than_steane(self):
        st, bs = steane_concatenated(), bacon_shor_concatenated()
        for level in (1, 2):
            assert bs.qubit_area_mm2(level) < st.qubit_area_mm2(level)


class TestReliability:
    def test_failure_rate_decreases_doubly_exponentially(self):
        code = steane_concatenated()
        p0 = code.failure_rate(0)
        p1 = code.failure_rate(1)
        p2 = code.failure_rate(2)
        assert p1 < p0
        # log-log: p2/pth ~ (p1/pth)^2 modulo the r factor
        assert p2 < p1 * p1 * 1e6

    def test_equation_one_form(self):
        code = steane_concatenated()
        p0 = code.params.average_failure_rate()
        pth = code.spec.threshold
        expected = (pth / 12.0) * (p0 / pth) ** 2
        assert code.failure_rate(1) == pytest.approx(expected)

    def test_explicit_p0(self):
        code = steane_concatenated()
        assert code.failure_rate(1, p0=1e-6) > code.failure_rate(1, p0=1e-8)

    def test_min_level_for(self):
        code = steane_concatenated()
        assert code.min_level_for(0.5) == 0
        level = code.min_level_for(1e-12)
        assert 1 <= level <= 3

    def test_min_level_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            steane_concatenated().min_level_for(0.0)

    def test_bacon_shor_threshold_higher(self):
        assert BACON_SHOR_SPEC.threshold > STEANE_SPEC.threshold


class TestValidation:
    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            steane_concatenated().ec_time_s(-1)

    def test_huge_level_rejected(self):
        with pytest.raises(ValueError):
            steane_concatenated().qubit_area_mm2(9)
