"""Smoke tests for the example scripts (deliverable b).

The quickstart is executed end to end; the heavier examples are
imported (syntax + import-graph check) and their main() entry points
verified to exist.  Full runs of every example are exercised manually /
in the benchmark logs.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports_key_metrics(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "Area reduction" in out
        assert "Gain product" in out
        assert "L1 speedup" in out


class TestOtherExamples:
    @pytest.mark.parametrize("name", [
        "factor_1024",
        "cache_study",
        "error_correction_study",
        "design_space_exploration",
        "policy_comparison",
        "prefetch_comparison",
        "mixed_code_stack",
        "time_vs_fidelity_pareto",
    ])
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(module.main)


class TestCacheStudyExecution:
    def test_small_run(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "cache_study.py"), "16"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "optimized fetch" in result.stdout


class TestPolicyComparisonExecution:
    def test_small_run(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "policy_comparison.py"), "12"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        # Every registered policy and workload shows up in the report.
        for token in ("belady", "lru", "fifo", "score",
                      "draper_adder", "qft", "modexp_trace",
                      "3-level stack"):
            assert token in out, token


class TestMixedCodeStackExecution:
    def test_small_run(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "mixed_code_stack.py"), "16"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        # The two pure stacks, the mixed stack, and the off-diagonal
        # Table 3 endpoints all show up in the report.
        for token in ("steane (pure)", "bacon_shor (pure)", "mixed",
                      "7-L2", "9-L1", "demote", "makespan"):
            assert token in out, token


class TestTimeVsFidelityParetoExecution:
    def test_small_run(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "time_vs_fidelity_pareto.py"),
             "16"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        # Both policies, both prefetchers, the two-objective columns,
        # and at least one starred pareto-front row show up.
        for token in ("lru", "fidelity", "none", "next_k",
                      "makespan", "logical err", "pareto front"):
            assert token in out, token
        assert "*" in out


class TestPrefetchComparisonExecution:
    def test_small_run(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "prefetch_comparison.py"), "16"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        # Every registered policy and prefetcher shows up in the table,
        # plus the demand-vs-prefetch makespan headline.
        for token in ("belady", "lru", "fifo", "score",
                      "none", "next_k", "distance",
                      "draper_adder", "qft", "makespan", "prefetches used"):
            assert token in out, token
