"""Tests for the modular-exponentiation workload model."""

import math

import pytest

from repro.circuits.modexp import (
    ModExpWorkload,
    modexp_addition_trace,
    modexp_logical_qubits,
    serial_adder_depth,
    total_additions,
)


class TestCounts:
    def test_serial_depth_formula(self):
        # 2n multiplications x (lg n + 3 reduction adds).
        assert serial_adder_depth(1024) == 2 * 1024 * (10 + 3)
        assert serial_adder_depth(64) == 2 * 64 * (6 + 3)

    def test_serial_depth_non_power_of_two(self):
        assert serial_adder_depth(100) == 2 * 100 * (math.ceil(math.log2(100)) + 3)

    def test_total_additions_quadratic(self):
        assert total_additions(64) == 2 * 64 * (64 + 3)

    def test_logical_qubits(self):
        assert modexp_logical_qubits(1024) == 5120

    def test_validation(self):
        for fn in (serial_adder_depth, total_additions, modexp_logical_qubits):
            with pytest.raises(ValueError):
                fn(1)


class TestWorkload:
    def test_workload_bundles_adder_stats(self):
        w = ModExpWorkload.for_bits(64)
        assert w.logical_qubits == 320
        assert w.toffolis_per_adder > 64
        assert w.serial_adders == serial_adder_depth(64)
        assert w.total_adders == total_additions(64)
        assert w.gates_per_adder >= w.toffolis_per_adder


class TestTrace:
    def test_trace_repeats_adder(self):
        trace = modexp_addition_trace(8, n_adders=3)
        single = modexp_addition_trace(8, n_adders=1)
        assert len(trace) == 3 * len(single)
        assert trace.n_qubits == single.n_qubits

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            modexp_addition_trace(8, n_adders=0)
