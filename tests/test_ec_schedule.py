"""Tests for the cycle-accurate level-1 EC schedules (Section 4.1)."""

import pytest

from repro.analysis import paper_values
from repro.ecc.schedule import (
    bacon_shor_syndrome_schedule,
    l1_ec_cycles,
    l1_syndrome_cycles,
    steane_syndrome_schedule,
)
from repro.physical.params import Op


@pytest.fixture(scope="module")
def steane_cost():
    return steane_syndrome_schedule()


@pytest.fixture(scope="module")
def bs_cost():
    return bacon_shor_syndrome_schedule()


class TestSteaneSchedule:
    def test_cycles_near_paper_154(self, steane_cost):
        paper = paper_values.STEANE_L1_SYNDROME_CYCLES
        assert abs(steane_cost.cycles - paper) / paper < 0.15

    def test_op_mix(self, steane_cost):
        counts = steane_cost.op_counts
        # 9 encoder CNOTs + 7 verification + 7 transversal two-qubit gates.
        assert counts[Op.DOUBLE_GATE] == 23
        # 7 verification + 7 syndrome measurements.
        assert counts[Op.MEASURE] == 14
        assert counts[Op.MOVE] > 50  # movement dominated

    def test_duration_seconds(self, steane_cost):
        assert steane_cost.duration_s == pytest.approx(
            steane_cost.cycles * 1e-5
        )


class TestBaconShorSchedule:
    def test_cycles_near_sixty(self, bs_cost):
        # EC = 2 syndromes at ~60 cycles -> the paper's 1.2 ms.
        assert 50 <= bs_cost.cycles <= 75

    def test_op_mix(self, bs_cost):
        counts = bs_cost.op_counts
        # 6 gauge ops x 2 CNOTs x 2 repetitions.
        assert counts[Op.DOUBLE_GATE] == 24
        assert counts[Op.MEASURE] == 12

    def test_faster_than_steane(self, bs_cost, steane_cost):
        assert bs_cost.cycles < steane_cost.cycles / 2


class TestCachedAccess:
    def test_l1_syndrome_cycles_matches_schedules(self, steane_cost, bs_cost):
        assert l1_syndrome_cycles("steane") == steane_cost.cycles
        assert l1_syndrome_cycles("bacon_shor") == bs_cost.cycles

    def test_l1_ec_is_two_syndromes(self):
        assert l1_ec_cycles("steane") == 2 * l1_syndrome_cycles("steane")

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            l1_syndrome_cycles("surface")
