"""The benchmark baseline-regression gate (benchmarks/run_bench.py)."""

import importlib.util
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent


def _run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _baseline(tmp_path, kernels, calibration=1.0, calibration_numpy=None):
    path = tmp_path / "baseline.json"
    meta = {"calibration_s": calibration}
    if calibration_numpy is not None:
        meta["calibration_numpy_s"] = calibration_numpy
    path.write_text(json.dumps({"meta": meta, "kernels": kernels}))
    return path


class TestCheckBaseline:
    def test_identical_times_pass(self, tmp_path):
        rb = _run_bench()
        path = _baseline(tmp_path, {"k": 1.0})
        assert rb.check_baseline({"k": 1.0}, 1.0, path, 0.25) == 0

    def test_large_regression_fails(self, tmp_path):
        rb = _run_bench()
        path = _baseline(tmp_path, {"k": 1.0})
        assert rb.check_baseline({"k": 2.0}, 1.0, path, 0.25) == 1

    def test_within_tolerance_passes(self, tmp_path):
        rb = _run_bench()
        path = _baseline(tmp_path, {"k": 1.0})
        assert rb.check_baseline({"k": 1.2}, 1.0, path, 0.25) == 0

    def test_calibration_scales_limit(self, tmp_path):
        rb = _run_bench()
        # This machine is 2x slower than the baseline machine, so a 2x
        # kernel time is not a regression.
        path = _baseline(tmp_path, {"k": 1.0}, calibration=1.0)
        assert rb.check_baseline({"k": 2.0}, 2.0, path, 0.25) == 0

    def test_mixed_calibration_takes_lenient_scale(self, tmp_path):
        rb = _run_bench()
        # Interpreter 30% faster than baseline machine but NumPy speed
        # unchanged: a NumPy-bound kernel at its baseline cost must not
        # become a false regression, so the larger ratio wins.
        path = _baseline(tmp_path, {"k": 1.0}, calibration=1.0,
                         calibration_numpy=1.0)
        assert rb.check_baseline({"k": 1.0}, 0.7, path, 0.25,
                                 calibration_numpy=1.0) == 0

    def test_absolute_slack_absorbs_tiny_kernel_noise(self, tmp_path):
        rb = _run_bench()
        path = _baseline(tmp_path, {"k": 0.001})
        noisy = 0.001 * 1.25 + rb.BASELINE_SLACK_S * 0.9
        assert rb.check_baseline({"k": noisy}, 1.0, path, 0.25) == 0

    def test_new_kernel_without_baseline_is_not_a_failure(self, tmp_path):
        rb = _run_bench()
        path = _baseline(tmp_path, {"k": 1.0})
        assert rb.check_baseline({"k": 1.0, "new": 5.0}, 1.0, path, 0.25) == 0

    def test_dropped_baseline_kernel_is_a_failure(self, tmp_path):
        # Renaming or removing a gated kernel must not silently disable
        # its regression coverage.
        rb = _run_bench()
        path = _baseline(tmp_path, {"old": 1.0})
        assert rb.check_baseline({"new": 5.0}, 1.0, path, 0.25) == 1

    def test_overhead_kernel_uses_absolute_budget(self, tmp_path):
        rb = _run_bench()
        # Ratio kernels: baseline + OVERHEAD_SLACK, no machine scaling
        # — a 10x faster machine must not shrink the overhead budget.
        path = _baseline(tmp_path, {"k_overhead": 0.0}, calibration=10.0)
        under = rb.OVERHEAD_SLACK * 0.8
        over = rb.OVERHEAD_SLACK * 1.2
        assert rb.check_baseline({"k_overhead": under}, 1.0, path, 0.25) == 0
        assert rb.check_baseline({"k_overhead": over}, 1.0, path, 0.25) == 1

    def test_negative_overhead_passes(self, tmp_path):
        # Noise can make the supervised arm measure faster than raw.
        rb = _run_bench()
        path = _baseline(tmp_path, {"k_overhead": 0.0})
        assert rb.check_baseline({"k_overhead": -0.08}, 1.0, path, 0.25) == 0

    def test_committed_quick_baseline_covers_engine(self):
        data = json.loads(
            (REPO / "benchmarks" / "quick_baseline.json").read_text()
        )
        assert "engine_3level_policies_512" in data["kernels"]
        assert "prefetch_3level_next_k_512" in data["kernels"]
        assert "supervised_runner_overhead" in data["kernels"]
        assert "residency_accrual_overhead" in data["kernels"]
        assert data["meta"]["calibration_s"] > 0
        # The committed overhead baseline is pinned at zero so the gate
        # is exactly the OVERHEAD_SLACK budget, not a noisy measurement.
        assert data["kernels"]["supervised_runner_overhead"] == 0.0
        # The gate's absolute slack must stay small relative to every
        # *timed* kernel, or relative regressions hide inside it; ratio
        # kernels use the absolute OVERHEAD_SLACK rule instead.
        rb = _run_bench()
        for name, seconds in data["kernels"].items():
            if name.endswith("_overhead"):
                continue
            assert rb.BASELINE_SLACK_S <= 0.25 * seconds, (name, seconds)
