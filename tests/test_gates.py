"""Unit tests for the logical-gate IR."""

import pytest

from repro.circuits.gates import (
    Gate,
    GateKind,
    cnot_gate,
    cphase_gate,
    h_gate,
    toffoli_gate,
    x_gate,
)


class TestGateKind:
    def test_arities(self):
        assert GateKind.X.n_qubits == 1
        assert GateKind.CNOT.n_qubits == 2
        assert GateKind.TOFFOLI.n_qubits == 3
        assert GateKind.CPHASE.n_qubits == 2

    def test_toffoli_costs_fifteen_slots(self):
        assert GateKind.TOFFOLI.ec_slots == 15
        for kind in GateKind:
            if kind is not GateKind.TOFFOLI:
                assert kind.ec_slots == 1

    def test_classical_gates(self):
        assert GateKind.X.is_classical
        assert GateKind.CNOT.is_classical
        assert GateKind.TOFFOLI.is_classical
        assert not GateKind.H.is_classical
        assert not GateKind.CPHASE.is_classical


class TestGateConstruction:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CNOT, (1,))
        with pytest.raises(ValueError):
            Gate(GateKind.X, (1, 2))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.CNOT, (3, 3))
        with pytest.raises(ValueError):
            toffoli_gate(1, 2, 1)

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateKind.X, (-1,))

    def test_builders(self):
        assert x_gate(4).kind is GateKind.X
        assert h_gate(0).qubits == (0,)
        assert cnot_gate(0, 1).qubits == (0, 1)
        assert toffoli_gate(0, 1, 2).ec_slots == 15

    def test_cphase_carries_order(self):
        g = cphase_gate(2, 0, 5)
        assert g.param == 5
        assert g.label() == "cphase q2 q0 5"

    def test_cphase_rejects_bad_order(self):
        with pytest.raises(ValueError):
            cphase_gate(0, 1, 0)

    def test_labels(self):
        assert toffoli_gate(0, 1, 2).label() == "toffoli q0 q1 q2"
        assert x_gate(7).label() == "x q7"
