"""Unit and property tests for the Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.pauli import Pauli, enumerate_errors, symplectic_matrix


def paulis(n=4):
    """Hypothesis strategy for n-qubit Paulis with phases."""
    bit = st.integers(min_value=0, max_value=1)
    return st.builds(
        lambda xs, zs, p: Pauli(x=tuple(xs), z=tuple(zs), phase=p),
        st.lists(bit, min_size=n, max_size=n),
        st.lists(bit, min_size=n, max_size=n),
        st.integers(min_value=0, max_value=3),
    )


class TestConstruction:
    def test_from_label(self):
        p = Pauli.from_label("XIZY")
        assert p.x == (1, 0, 0, 1)
        assert p.z == (0, 0, 1, 1)
        assert p.label() == "XIZY"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XQ")

    def test_identity(self):
        p = Pauli.identity(3)
        assert p.is_identity()
        assert p.weight == 0

    def test_single(self):
        p = Pauli.single(5, 2, "Y")
        assert p.label() == "IIYII"
        assert p.weight == 1

    def test_single_rejects_identity_kind(self):
        with pytest.raises(ValueError):
            Pauli.single(3, 0, "I")

    def test_single_rejects_bad_index(self):
        with pytest.raises(ValueError):
            Pauli.single(3, 3, "X")

    def test_mismatched_xz(self):
        with pytest.raises(ValueError):
            Pauli(x=(1, 0), z=(0,))


class TestAlgebra:
    def test_xz_anticommute(self):
        x = Pauli.from_label("X")
        z = Pauli.from_label("Z")
        assert not x.commutes_with(z)

    def test_xx_zz_commute(self):
        assert Pauli.from_label("XX").commutes_with(Pauli.from_label("ZZ"))

    def test_product_xz_is_minus_iy(self):
        x = Pauli.from_label("X")
        z = Pauli.from_label("Z")
        prod = x * z  # X then Z applied -> XZ = -iY
        assert prod.label() == "Y"
        assert prod.phase == 0  # i^0 X Z is the canonical form of XZ

    def test_product_zx_has_phase(self):
        z = Pauli.from_label("Z")
        x = Pauli.from_label("X")
        prod = z * x  # ZX = i^2 XZ
        assert prod.label() == "Y"
        assert prod.phase == 2

    def test_square_of_y_representation(self):
        y = Pauli(x=(1,), z=(1,), phase=1)  # true Y = iXZ
        sq = y * y
        assert sq.is_identity()
        assert sq.phase == 0  # Y^2 = +I

    def test_mismatched_sizes(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XX") * Pauli.from_label("X")
        with pytest.raises(ValueError):
            Pauli.from_label("XX").commutes_with(Pauli.from_label("X"))

    def test_support_and_restricted_label(self):
        p = Pauli.from_label("IXIZ")
        assert p.support() == (1, 3)
        assert p.restricted_label([1, 3]) == "XZ"


class TestSymplectic:
    def test_roundtrip(self):
        p = Pauli.from_label("XYZI")
        q = Pauli.from_symplectic(p.symplectic())
        assert q.x == p.x and q.z == p.z

    def test_matrix_shape(self):
        ops = [Pauli.from_label("XX"), Pauli.from_label("ZZ")]
        m = symplectic_matrix(ops)
        assert m.shape == (2, 4)

    def test_bad_vector(self):
        with pytest.raises(ValueError):
            Pauli.from_symplectic(np.array([1, 0, 1]))


class TestEnumeration:
    def test_weight_one_count(self):
        errors = list(enumerate_errors(7, 1))
        assert len(errors) == 21  # 3 kinds x 7 qubits
        assert all(e.weight == 1 for e in errors)

    def test_weight_two_count(self):
        errors = list(enumerate_errors(4, 2))
        # 12 weight-1 + C(4,2)*9 weight-2
        assert len(errors) == 12 + 6 * 9

    def test_weight_three_unsupported(self):
        with pytest.raises(NotImplementedError):
            list(enumerate_errors(3, 3))


class TestProperties:
    @given(paulis(), paulis())
    @settings(max_examples=60)
    def test_commutation_symmetric(self, a, b):
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(paulis(), paulis(), paulis())
    @settings(max_examples=40)
    def test_associativity(self, a, b, c):
        left = (a * b) * c
        right = a * (b * c)
        assert left == right

    @given(paulis())
    @settings(max_examples=40)
    def test_square_is_phase_only(self, a):
        sq = a * a
        assert sq.weight == 0  # P^2 is proportional to identity

    @given(paulis(), paulis())
    @settings(max_examples=60)
    def test_product_commutation_phase(self, a, b):
        # a*b and b*a differ exactly by the commutation sign.
        ab, ba = a * b, b * a
        assert ab.x == ba.x and ab.z == ba.z
        expected = 0 if a.commutes_with(b) else 2
        assert (ab.phase - ba.phase) % 4 == expected

    @given(paulis())
    @settings(max_examples=40)
    def test_identity_neutral(self, a):
        ident = Pauli.identity(a.n)
        assert ident * a == a
        assert a * ident == a
