"""The discrete-event kernel, port servers, and engine invariants.

Unit tests for :mod:`repro.sim.events` (event ordering, greedy
reservations with cancellation, split-transaction dispatch) plus the
engine-level invariants of the split-transaction transfer model:
qubit conservation across levels, prefetched qubits never evicted
before first use, port occupancy never exceeding the configured
parallel transfers, and exact prefetching never losing to demand
fetching under the same transfer model.
"""

import heapq

import pytest

from repro.circuits.workloads import available_workloads, build_workload
from repro.sim.cache import simulate_optimized
from repro.sim.events import EventKernel, PortServer
from repro.sim.levels import (
    simulate_hierarchy_run,
    simulate_hierarchy_run_audited,
    standard_stack,
)
from repro.sim.policies import available_policies
from repro.sim.prefetch import (
    available_prefetchers,
    make_prefetcher,
    validate_prefetcher,
)

#: The engine-study geometry (small enough to pressure the caches).
STACK = dict(compute_qubits=12, cache_factor=1.0)

#: Workload sizes for the invariant runs: big enough that every level
#: and both transfer directions see traffic, small enough to stay fast.
SIZES = {"draper_adder": 32, "qft": 32, "modexp_trace": 24}


class TestEventKernel:
    def test_events_run_in_time_order(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(3.0, seen.append, "c")
        kernel.schedule(1.0, seen.append, "a")
        kernel.schedule(2.0, seen.append, "b")
        kernel.run()
        assert seen == ["a", "b", "c"]
        assert kernel.now == 3.0

    def test_equal_times_run_in_schedule_order(self):
        kernel = EventKernel()
        seen = []
        for tag in "abcd":
            kernel.schedule(1.0, seen.append, tag)
        kernel.run()
        assert seen == list("abcd")

    def test_events_can_schedule_events(self):
        kernel = EventKernel()
        seen = []

        def chain(tag, depth):
            seen.append((kernel.now, tag))
            if depth:
                kernel.schedule(kernel.now + 1.0, chain, tag + "'", depth - 1)

        kernel.schedule(0.0, chain, "x", 2)
        kernel.run()
        assert seen == [(0.0, "x"), (1.0, "x'"), (2.0, "x''")]

    def test_scheduling_in_the_past_raises(self):
        kernel = EventKernel()
        kernel.schedule(5.0, lambda: None)
        kernel.step()
        with pytest.raises(ValueError, match="past"):
            kernel.schedule(4.0, lambda: None)

    def test_step_on_empty_heap_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            EventKernel().step()


class TestGreedyReservations:
    def test_matches_manual_float_heap(self):
        """reserve() must replay the PR 2 pop/max/push arithmetic."""
        server = PortServer(3)
        heap = [0.0, 0.0, 0.0]
        heapq.heapify(heap)
        jobs = [(0.0, 5.0, 0.0), (2.0, 1.0, 3.0), (9.0, 2.0, 0.0),
                (1.0, 4.0, 1.5), (0.0, 0.5, 0.0)]
        for ready, duration, hold in jobs:
            free = heapq.heappop(heap)
            start = free if free > ready else ready
            heapq.heappush(heap, start + duration + hold)
            assert server.reserve(ready, duration, hold) == start
        assert server.lane_free_times() == sorted(heap)

    def test_cancel_restores_the_lane(self):
        server = PortServer(1)
        handle = server.reserve_handle(0.0, 10.0)
        assert handle.start == 0.0
        handle.cancel()
        # The lane is free again: the next reservation starts at its
        # ready time, not behind the cancelled hold.
        assert server.reserve(2.0, 1.0) == 2.0

    def test_cancel_is_idempotent(self):
        server = PortServer(2)
        handle = server.reserve_handle(0.0, 4.0)
        handle.cancel()
        handle.cancel()
        assert server.reserve(0.0, 1.0) == 0.0
        assert server.reserve(0.0, 1.0) == 0.0

    def test_cancel_under_a_later_reservation_is_refused(self):
        # On a single lane, a second reservation's start was computed
        # from the first one's hold; unwinding the first out of order
        # would overbook the lane, so the server must refuse.
        server = PortServer(1)
        first = server.reserve_handle(0.0, 10.0)
        second = server.reserve_handle(0.0, 5.0)
        assert second.start == 10.0
        with pytest.raises(ValueError, match="most recent"):
            first.cancel()
        # The lane is still single-booked: last-in cancels fine, and
        # then the first becomes cancellable again.
        second.cancel()
        first.cancel()
        assert server.reserve(3.0, 1.0) == 3.0

    def test_lanes_must_be_positive(self):
        with pytest.raises(ValueError, match="lane"):
            PortServer(0)


class TestSplitTransactionDispatch:
    def test_occupancy_never_exceeds_lanes(self):
        kernel = EventKernel()
        server = PortServer(2, kernel=kernel, record=True)
        done = []
        for i in range(7):
            server.request(0.0, 3.0, done.append)
        kernel.run()
        assert len(done) == 7
        assert server.max_active <= 2
        assert server.max_concurrency() <= 2
        # 7 transfers x 3s over 2 lanes: ceil(7/2) waves of 3s.
        assert done[-1] == 12.0

    def test_backfill_uses_idle_windows(self):
        """A short transfer ready early runs before a long one that is
        not ready yet — the split-transaction win over greedy holds."""
        kernel = EventKernel()
        server = PortServer(1, kernel=kernel)
        done = {}
        server.request(5.0, 10.0, lambda t: done.setdefault("late", t))
        server.request(0.0, 2.0, lambda t: done.setdefault("early", t))
        kernel.run()
        assert done["early"] == 2.0
        assert done["late"] == 15.0

    def test_priority_orders_queued_requests(self):
        # While the only lane is busy, a later-enqueued demand request
        # must overtake an already-queued prefetch when the lane frees.
        kernel = EventKernel()
        server = PortServer(1, kernel=kernel)
        order = []
        server.request(0.0, 1.0, lambda t: order.append("blocker"))
        kernel.step()  # blocker dispatches, lane busy until t=1
        server.request(0.0, 1.0, lambda t: order.append("prefetch"),
                       priority=2)
        server.request(0.0, 1.0, lambda t: order.append("demand"),
                       priority=0)
        kernel.run()
        assert order == ["blocker", "demand", "prefetch"]

    def test_withdraw_before_dispatch(self):
        kernel = EventKernel()
        server = PortServer(1, kernel=kernel)
        done = []
        blocker = server.request(0.0, 5.0, done.append)
        queued = server.request(0.0, 5.0, done.append)
        kernel.step()  # dispatches the blocker
        assert server.withdraw(queued) is True
        assert server.withdraw(blocker) is False  # already active
        kernel.run()
        assert done == [5.0]

    def test_request_needs_a_kernel(self):
        with pytest.raises(RuntimeError, match="EventKernel"):
            PortServer(1).request(0.0, 1.0, lambda t: None)


class TestPrefetchRegistry:
    def test_shipped_prefetchers_registered(self):
        names = available_prefetchers()
        for expected in ("none", "next_k", "distance"):
            assert expected in names

    def test_unknown_prefetcher_raises(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            validate_prefetcher("oracle")
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("oracle")

    def test_fresh_instances(self):
        assert make_prefetcher("next_k") is not make_prefetcher("next_k")


def _audited(workload, prefetch, policy="lru", depth=3):
    stack = standard_stack("steane", depth, **STACK)
    circuit = build_workload(workload, SIZES[workload])
    return simulate_hierarchy_run_audited(
        stack, circuit, policy=policy, prefetch=prefetch,
        pipeline=True,
    )


class TestEngineInvariants:
    @pytest.mark.parametrize("workload", sorted(SIZES))
    @pytest.mark.parametrize("prefetch", ["none", "next_k", "distance"])
    def test_qubit_conservation_across_levels(self, workload, prefetch):
        result, audit = _audited(workload, prefetch)
        assert audit.conservation_ok
        circuit = build_workload(workload, SIZES[workload])
        total = sum(s.final_occupancy for s in result.level_stats)
        assert total == len(circuit.touched_qubits())

    @pytest.mark.parametrize("workload", sorted(SIZES))
    @pytest.mark.parametrize("prefetch", ["next_k", "distance"])
    @pytest.mark.parametrize("policy", available_policies())
    def test_prefetched_qubits_never_evicted_before_use(
        self, workload, prefetch, policy
    ):
        _, audit = _audited(workload, prefetch, policy=policy)
        assert audit.pinned_evictions == 0

    @pytest.mark.parametrize("workload", sorted(SIZES))
    @pytest.mark.parametrize("prefetch", ["none", "next_k", "distance"])
    def test_port_occupancy_within_parallel_transfers(
        self, workload, prefetch
    ):
        _, audit = _audited(workload, prefetch)
        for peak, lanes in zip(audit.port_peak_concurrency,
                               audit.port_lanes):
            assert peak <= lanes

    def test_every_prefetch_is_used(self):
        """Exact prefetching: the walk follows the static schedule, so
        every issued prefetch is eventually demanded."""
        result, _ = _audited("draper_adder", "next_k")
        assert result.prefetches_issued > 0
        assert result.prefetches_used == result.prefetches_issued

    @pytest.mark.parametrize("workload", sorted(SIZES))
    @pytest.mark.parametrize("policy", available_policies())
    def test_next_k_never_loses_to_demand(self, workload, policy):
        """Exact prefetching must only ever overlap transfers earlier:
        under the same transfer model, next_k runtime <= demand-fetch
        runtime on every registered workload and policy."""
        demand, _ = _audited(workload, "none", policy=policy)
        prefetched, _ = _audited(workload, "next_k", policy=policy)
        assert prefetched.total_time_s <= demand.total_time_s + 1e-9

    @pytest.mark.parametrize("policy", available_policies())
    def test_prefetch_never_displaces_the_issuing_gate(self, policy):
        """Regression: a prefetch issued while a gate's operands are
        being gathered must not evict one of those operands (a last-use
        operand has no next use, making it the lookahead policies'
        favorite victim — evicting it stalled the gate on its own
        prefetch-induced write-back, 3.6x under belady)."""
        stack = standard_stack("steane", 3, **STACK)
        circuit = build_workload("draper_adder", 16)
        order = simulate_optimized(circuit, stack.levels[0].capacity).order
        demand = simulate_hierarchy_run(stack, circuit, policy=policy,
                                        order=order)
        prefetched = simulate_hierarchy_run(stack, circuit, policy=policy,
                                            order=order, prefetch="next_k")
        assert prefetched.total_time_s <= 1.25 * demand.total_time_s

    def test_registered_workloads_cover_the_invariant_matrix(self):
        # SIZES must track the registry, or a new workload would
        # silently skip the invariant suite.
        assert sorted(SIZES) == sorted(available_workloads())


class TestSplitTransactionSpeedup:
    def test_adder_benchmark_kernel_speedup(self):
        """Acceptance: on the 3-level Draper-adder benchmark kernel,
        pipelining + next_k prefetch yields >= 1.3x lower simulated
        makespan than the PR 2 reservation model."""
        stack = standard_stack("steane", 3, **STACK)
        circuit = build_workload("draper_adder", 256)
        order = simulate_optimized(circuit, stack.levels[0].capacity).order
        demand = simulate_hierarchy_run(stack, circuit, order=order)
        prefetched = simulate_hierarchy_run(
            stack, circuit, order=order, prefetch="next_k"
        )
        assert demand.total_time_s >= 1.3 * prefetched.total_time_s

    def test_prefetch_fields_default_off(self):
        stack = standard_stack("steane", 3, **STACK)
        run = simulate_hierarchy_run(stack, "draper_adder", policy="lru")
        assert run.prefetch == "none"
        assert run.prefetches_issued == 0
        assert run.prefetches_used == 0
