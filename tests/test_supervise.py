"""Tests for supervised cell execution (repro.perf.supervise).

The chaos harness (repro.perf.chaos) scripts the faults: every retry,
reap, crash-recovery, and quarantine scenario here is deterministic and
replayable — no flaky sleeps racing real failures.
"""

import time

import pytest

from repro.perf import chaos
from repro.perf.supervise import (
    CellTimeout,
    RetryPolicy,
    Supervision,
    TooManyFailures,
    WorkerCrash,
    classify_failure,
    exception_names,
    supervised_indexed,
)


def _square(params):
    return params["x"] * params["x"]


#: Module-level so pool workers can unpickle it; reads the chaos plan
#: from the environment inside the worker.
_chaos_square = chaos.wrap(_square)


def _items(count):
    return [{"x": i} for i in range(count)]


def _by_index(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


class TestRetryPolicy:
    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_default_is_single_attempt(self):
        assert not RetryPolicy().should_retry(("ValueError",), 1)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(("ValueError",), 1)
        assert policy.should_retry(("ValueError",), 2)
        assert not policy.should_retry(("ValueError",), 3)

    def test_deny_list_wins_over_allow_list(self):
        policy = RetryPolicy(
            max_attempts=5,
            retry_on=("ChaosTransientError",),
            no_retry_on=("ChaosTransientError",),
        )
        assert not policy.should_retry(("ChaosTransientError",), 1)

    def test_allow_list_filters(self):
        policy = RetryPolicy(max_attempts=5, retry_on=("TimeoutError",))
        assert policy.should_retry(("TimeoutError",), 1)
        assert not policy.should_retry(("ValueError",), 1)

    def test_mro_names_let_policies_match_base_classes(self):
        names = exception_names(chaos.ChaosTransientError("x"))
        assert "ChaosTransientError" in names
        assert "ChaosFault" in names  # base class matches too
        assert "RuntimeError" in names
        assert "object" not in names
        policy = RetryPolicy(max_attempts=5, retry_on=("ChaosFault",))
        assert policy.should_retry(names, 1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=0.1, backoff_factor=2.0, jitter=0.0
        )
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_seeded(self):
        a = RetryPolicy(max_attempts=5, seed=1)
        b = RetryPolicy(max_attempts=5, seed=1)
        c = RetryPolicy(max_attempts=5, seed=2)
        assert a.delay_s(1, token="7") == b.delay_s(1, token="7")
        assert a.delay_s(1, token="7") != c.delay_s(1, token="7")
        # Distinct cells de-synchronize.
        assert a.delay_s(1, token="7") != a.delay_s(1, token="8")

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=1.0, jitter=0.25)
        for token in map(str, range(20)):
            assert 1.0 <= policy.delay_s(1, token=token) <= 1.25


class TestClassifyFailure:
    def test_kinds(self):
        assert classify_failure(ValueError("x"), 1).kind == "exception"
        assert classify_failure(CellTimeout("x"), 2).kind == "timeout"
        assert classify_failure(WorkerCrash("x"), 3).kind == "crash"

    def test_record_fields(self):
        failure = classify_failure(ValueError("boom"), 4)
        record = failure.as_record()
        assert record["exception_type"] == "ValueError"
        assert record["message"] == "boom"
        assert record["attempts"] == 4
        assert len(record["traceback_digest"]) == 12


class TestSerialSupervision:
    def test_fault_free_identity(self):
        outcomes = list(
            supervised_indexed(_square, _items(5), supervision=Supervision())
        )
        assert [o.index for o in outcomes] == list(range(5))
        assert [o.value for o in outcomes] == [i * i for i in range(5)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_transient_fault_retried(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "transient", "match": {"x": 2}, "times": 2}],
            state_dir=tmp_path,
        )
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(4), supervision=supervision
                )
            )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert outcomes[2].attempts == 3
        assert all(o.ok for o in outcomes)

    def test_poison_cell_quarantined_run_continues(self, tmp_path):
        plan = chaos.ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(3), supervision=supervision
                )
            )
        assert outcomes[0].ok and outcomes[2].ok
        failure = outcomes[1].failure
        assert failure.kind == "exception"
        assert failure.exception_type == "ChaosFault"
        assert failure.attempts == 2

    def test_max_failures_aborts(self):
        plan = chaos.ChaosPlan.scripted(
            [
                {"fault": "raise", "match": {"x": 1}},
                {"fault": "raise", "match": {"x": 2}},
            ]
        )
        supervision = Supervision(max_failures=1)
        with chaos.active(plan):
            with pytest.raises(TooManyFailures):
                list(
                    supervised_indexed(
                        _chaos_square, _items(4), supervision=supervision
                    )
                )

    def test_max_failures_boundary_is_inclusive(self):
        plan = chaos.ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        with chaos.active(plan):
            outcomes = list(
                supervised_indexed(
                    _chaos_square,
                    _items(3),
                    supervision=Supervision(max_failures=1),
                )
            )
        assert sum(1 for o in outcomes if not o.ok) == 1


class TestPoolSupervision:
    SUPERVISION = Supervision(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01))

    def test_fault_free_identity(self):
        outcomes = _by_index(
            supervised_indexed(
                _square, _items(6), supervision=Supervision(), workers=3
            )
        )
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_transient_fault_retried_in_pool(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "transient", "match": {"x": 1}, "times": 1}],
            state_dir=tmp_path,
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(4), supervision=self.SUPERVISION,
                    workers=2,
                )
            )
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert outcomes[1].attempts == 2

    def test_poison_cell_quarantined_in_pool(self, tmp_path):
        plan = chaos.ChaosPlan.scripted([{"fault": "raise", "match": {"x": 2}}])
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(5), supervision=self.SUPERVISION,
                    workers=2,
                )
            )
        assert [o.ok for o in outcomes] == [True, True, False, True, True]
        assert outcomes[2].failure.attempts == 3

    def test_hung_cell_reaped_within_timeout(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "hang", "match": {"x": 1}, "times": 1, "hang_s": 120.0}],
            state_dir=tmp_path,
        )
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            cell_timeout_s=2.0,
        )
        start = time.monotonic()
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(4), supervision=supervision, workers=2
                )
            )
        elapsed = time.monotonic() - start
        # Reaped at ~2s (not the 120s hang), then retried clean.
        assert elapsed < 60.0
        assert all(o.ok for o in outcomes)
        assert outcomes[1].attempts == 2

    def test_perpetually_hung_cell_times_out_terminally(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "hang", "match": {"x": 1}, "times": 10, "hang_s": 120.0}],
            state_dir=tmp_path,
        )
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            cell_timeout_s=1.5,
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(3), supervision=supervision, workers=2
                )
            )
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].failure.kind == "timeout"
        assert outcomes[1].failure.exception_type == "CellTimeout"

    def test_worker_exit_broken_pool_recovered(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "exit", "match": {"x": 2}, "times": 1, "exit_code": 9}],
            state_dir=tmp_path,
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(5), supervision=self.SUPERVISION,
                    workers=2,
                )
            )
        # The pool was rebuilt and every cell (the killer and any
        # innocent in-flight siblings) resubmitted and completed.
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]
        assert outcomes[2].attempts >= 2

    def test_repeated_crashes_classified_terminally(self, tmp_path):
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "exit", "match": {"x": 1}, "times": 10, "exit_code": 9}],
            state_dir=tmp_path,
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(3), supervision=self.SUPERVISION,
                    workers=2,
                )
            )
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].failure.kind == "crash"
        assert outcomes[1].failure.attempts == 3

    def test_max_failures_aborts_pool_run(self):
        plan = chaos.ChaosPlan.scripted(
            [
                {"fault": "raise", "match": {"x": 1}},
                {"fault": "raise", "match": {"x": 3}},
            ]
        )
        supervision = Supervision(max_failures=1)
        with chaos.active(plan):
            with pytest.raises(TooManyFailures):
                list(
                    supervised_indexed(
                        _chaos_square,
                        _items(5),
                        supervision=supervision,
                        workers=2,
                    )
                )

    def test_cell_timeout_forces_pool_even_serial(self, tmp_path):
        """Deadlines need a reapable child even with workers=1."""
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "hang", "match": {"x": 0}, "times": 1, "hang_s": 120.0}],
            state_dir=tmp_path,
        )
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            cell_timeout_s=2.0,
        )
        with chaos.active(plan):
            outcomes = _by_index(
                supervised_indexed(
                    _chaos_square, _items(2), supervision=supervision, workers=1
                )
            )
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            supervised_indexed(
                _square, _items(2), supervision=Supervision(), workers=-1
            )
