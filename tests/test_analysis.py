"""Tests for the table/figure builders and the report renderer."""

import pytest

from repro.analysis.figures import (
    fig2,
    fig2_text,
    fig6a,
    fig6a_text,
    fig6b,
    fig6b_text,
    fig7,
    fig7_text,
    fig8a,
    fig8a_text,
    fig8b,
    fig8b_text,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.tables import (
    table1,
    table1_text,
    table2,
    table2_text,
    table3,
    table3_text,
)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("x", {"y": [1, 2]}, [10, 20])
        assert "10" in text and "20" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000012], [1234567.0], [0.5]])
        assert "1.2e-05" in text
        assert "0.5" in text


class TestTables:
    def test_table1_covers_all_ops(self):
        rows = table1()
        assert len(rows) == 6
        names = {r[0] for r in rows}
        assert "double_gate" in names

    def test_table1_text(self):
        assert "Table 1" in table1_text()

    def test_table2_rows(self):
        rows = table2()
        assert len(rows) == 4
        keys = {(r.code_key, r.level) for r in rows}
        assert ("bacon_shor", 2) in keys

    def test_table2_text_contains_paper_columns(self):
        text = table2_text()
        assert "paper" in text and "steane-L1" in text

    def test_table3_matrix(self):
        matrix = table3()
        assert matrix[("7-L1", "7-L1")] == 0.0
        assert len(matrix) == 16

    def test_table3_text(self):
        assert "Table 3" in table3_text()


class TestFigures:
    def test_fig2_series(self):
        data = fig2(32, 9)
        assert sum(data["unlimited"]) == sum(data["capped"])
        assert "Figure 2" in fig2_text(32, 9)

    def test_fig6a_monotone_decreasing(self):
        series = fig6a(sizes=(64,), block_counts=(4, 36, 196))
        vals = series[64]
        assert vals[0] >= vals[1] >= vals[2]
        assert "Figure 6a" in fig6a_text()

    def test_fig6b_crossover(self):
        data = fig6b(block_counts=(16, 36, 64))
        assert data["crossover"] == 36
        assert "36" in fig6b_text()

    def test_fig7_points(self):
        points = fig7(sizes=(16,), compute_qubits=20)
        assert len(points) == 6  # 3 cache sizes x 2 policies
        assert "Figure 7" in fig7_text(sizes=(16,))

    def test_fig8a_series(self):
        series = fig8a(sizes=(32, 64))
        assert len(series) == 2
        assert series[1].computation_s > series[0].computation_s
        assert "Figure 8a" in fig8a_text()

    def test_fig8b_series(self):
        series = fig8b(sizes=(100, 200))
        assert series[1].communication_s > series[0].communication_s
        assert "Figure 8b" in fig8b_text()
