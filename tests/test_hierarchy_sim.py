"""Tests for the memory-hierarchy simulator (Table 5's L1 speedups)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.sim.cache import simulate_optimized
from repro.sim.hierarchy_sim import l1_speedup, simulate_l1_run
from repro.sim.scheduler import _adder_circuit


@pytest.fixture(scope="module")
def steane_run():
    return simulate_l1_run("steane", 64, parallel_transfers=10)


class TestRunResult:
    def test_l1_faster_than_l2(self, steane_run):
        assert steane_run.l1_time_s < steane_run.l2_time_s
        assert steane_run.l1_speedup > 1.0

    def test_timing_decomposition(self, steane_run):
        # Wall time is at least pure compute time plus exposed waits.
        assert steane_run.l1_time_s >= steane_run.compute_time_s
        assert steane_run.transfer_wait_s >= 0.0
        assert steane_run.l1_time_s == pytest.approx(
            steane_run.compute_time_s + steane_run.transfer_wait_s, rel=0.01
        )

    def test_transfers_happen(self, steane_run):
        assert steane_run.transfers > 0
        assert 0.0 < steane_run.hit_rate < 1.0

    def test_transfer_bound_fraction(self, steane_run):
        assert 0.0 <= steane_run.transfer_bound_fraction < 1.0


class TestScaling:
    def test_more_transfer_ports_help(self):
        s5 = l1_speedup("steane", 64, parallel_transfers=5)
        s10 = l1_speedup("steane", 64, parallel_transfers=10)
        assert s10 > s5

    def test_steane_gains_more_than_bacon_shor(self):
        # The Steane L2/L1 EC ratio is larger and its transfers are
        # cheaper per channel, so its hierarchy speedup is larger.
        st = l1_speedup("steane", 64, parallel_transfers=10)
        bs = l1_speedup("bacon_shor", 64, parallel_transfers=10)
        assert st > bs > 1.0

    def test_table5_magnitude_band(self):
        # Paper: Steane L1 speedups ~17-18 at 10 parallel transfers,
        # ~10 at 5.  Accept a generous band around those.
        s10 = l1_speedup("steane", 256, parallel_transfers=10)
        assert 10.0 < s10 < 30.0
        s5 = l1_speedup("steane", 256, parallel_transfers=5)
        assert 5.0 < s5 < 16.0

    def test_bigger_cache_does_not_hurt(self):
        small = simulate_l1_run("steane", 64, cache_factor=1.0)
        large = simulate_l1_run("steane", 64, cache_factor=2.0)
        assert large.hit_rate >= small.hit_rate - 1e-9


class TestBoundaryValidation:
    """Bad configurations fail fast at the sim boundary with clear
    messages instead of deep inside the event loop."""

    def test_parallel_transfers_below_one(self):
        with pytest.raises(ValueError, match="parallel_transfers"):
            simulate_l1_run("steane", 64, parallel_transfers=0)
        with pytest.raises(ValueError, match="parallel_transfers"):
            simulate_l1_run("steane", 64, parallel_transfers=-3)

    def test_cache_capacity_below_two(self):
        with pytest.raises(ValueError, match="at least 2"):
            simulate_l1_run("steane", 64, compute_qubits=1, cache_factor=0.0)

    def test_compute_qubits_below_one(self):
        with pytest.raises(ValueError, match="compute_qubits"):
            simulate_l1_run("steane", 64, compute_qubits=0)

    def test_negative_cache_factor(self):
        with pytest.raises(ValueError, match="cache_factor"):
            simulate_l1_run("steane", 64, cache_factor=-0.5)

    def test_empty_circuit(self):
        with pytest.raises(ValueError, match="empty circuit"):
            simulate_l1_run("steane", 64, circuit=Circuit(n_qubits=4))

    def test_simulate_optimized_capacity_below_two(self):
        circuit = _adder_circuit(8, False)
        with pytest.raises(ValueError, match="at least 2"):
            simulate_optimized(circuit, capacity=1)

    def test_simulate_optimized_empty_circuit(self):
        with pytest.raises(ValueError, match="empty circuit"):
            simulate_optimized(Circuit(n_qubits=4), capacity=8)
