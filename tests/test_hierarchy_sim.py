"""Tests for the memory-hierarchy simulator (Table 5's L1 speedups)."""

import pytest

from repro.sim.hierarchy_sim import l1_speedup, simulate_l1_run


@pytest.fixture(scope="module")
def steane_run():
    return simulate_l1_run("steane", 64, parallel_transfers=10)


class TestRunResult:
    def test_l1_faster_than_l2(self, steane_run):
        assert steane_run.l1_time_s < steane_run.l2_time_s
        assert steane_run.l1_speedup > 1.0

    def test_timing_decomposition(self, steane_run):
        # Wall time is at least pure compute time plus exposed waits.
        assert steane_run.l1_time_s >= steane_run.compute_time_s
        assert steane_run.transfer_wait_s >= 0.0
        assert steane_run.l1_time_s == pytest.approx(
            steane_run.compute_time_s + steane_run.transfer_wait_s, rel=0.01
        )

    def test_transfers_happen(self, steane_run):
        assert steane_run.transfers > 0
        assert 0.0 < steane_run.hit_rate < 1.0

    def test_transfer_bound_fraction(self, steane_run):
        assert 0.0 <= steane_run.transfer_bound_fraction < 1.0


class TestScaling:
    def test_more_transfer_ports_help(self):
        s5 = l1_speedup("steane", 64, parallel_transfers=5)
        s10 = l1_speedup("steane", 64, parallel_transfers=10)
        assert s10 > s5

    def test_steane_gains_more_than_bacon_shor(self):
        # The Steane L2/L1 EC ratio is larger and its transfers are
        # cheaper per channel, so its hierarchy speedup is larger.
        st = l1_speedup("steane", 64, parallel_transfers=10)
        bs = l1_speedup("bacon_shor", 64, parallel_transfers=10)
        assert st > bs > 1.0

    def test_table5_magnitude_band(self):
        # Paper: Steane L1 speedups ~17-18 at 10 parallel transfers,
        # ~10 at 5.  Accept a generous band around those.
        s10 = l1_speedup("steane", 256, parallel_transfers=10)
        assert 10.0 < s10 < 30.0
        s5 = l1_speedup("steane", 256, parallel_transfers=5)
        assert 5.0 < s5 < 16.0

    def test_bigger_cache_does_not_hurt(self):
        small = simulate_l1_run("steane", 64, cache_factor=1.0)
        large = simulate_l1_run("steane", 64, cache_factor=2.0)
        assert large.hit_rate >= small.hit_rate - 1e-9
