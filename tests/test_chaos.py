"""Tests for the deterministic fault-injection harness (repro.perf.chaos)."""

import json
import os

import pytest

from repro.perf import chaos
from repro.perf.chaos import (
    CHAOS_ENV,
    ChaosFault,
    ChaosPlan,
    ChaosTransientError,
    Fault,
)


def _square(params):
    return params["x"] * params["x"]


class TestFault:
    def test_make_validates_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault.make("meteor", {"x": 1})

    def test_raise_defaults_to_poison(self):
        assert Fault.make("raise", {"x": 1}).times is None

    def test_bounded_kinds_default_to_once(self):
        for kind in ("transient", "hang", "exit", "corrupt"):
            assert Fault.make(kind, {"x": 1}).times == 1

    def test_matches_on_param_subset(self):
        fault = Fault.make("raise", {"policy": "lru", "prefetch": "none"})
        assert fault.matches({"policy": "lru", "prefetch": "none", "depth": 2})
        assert not fault.matches({"policy": "lru", "prefetch": "next_k"})
        assert not fault.matches({"policy": "lru"})  # missing key != match

    def test_match_order_is_canonical(self):
        a = Fault.make("raise", {"a": 1, "b": 2})
        b = Fault.make("raise", {"b": 2, "a": 1})
        assert a == b


class TestChaosPlan:
    def test_scripted_accepts_dicts_and_faults(self, tmp_path):
        plan = ChaosPlan.scripted(
            [
                Fault.make("raise", {"x": 1}),
                {"fault": "transient", "match": {"x": 2}, "times": 3},
            ],
            state_dir=tmp_path,
        )
        assert plan.faults[0].kind == "raise"
        assert plan.faults[1].times == 3

    def test_json_roundtrip(self, tmp_path):
        plan = ChaosPlan.scripted(
            [
                {"fault": "hang", "match": {"x": 3}, "hang_s": 12.5},
                {"fault": "exit", "match": {"x": 4}, "exit_code": 7},
            ],
            state_dir=tmp_path,
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan
        # The wire format is plain JSON an operator can write by hand.
        spec = json.loads(plan.to_json())
        assert spec["faults"][0]["fault"] == "hang"

    def test_times_bounded_faults_require_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            ChaosPlan.scripted([{"fault": "transient", "match": {"x": 1}}])

    def test_pure_poison_plan_needs_no_state(self):
        plan = ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        assert plan.state_dir is None

    def test_fault_for_first_match_wins(self, tmp_path):
        plan = ChaosPlan.scripted(
            [
                {"fault": "transient", "match": {"x": 1}},
                {"fault": "raise", "match": {"x": 1}},
            ],
            state_dir=tmp_path,
        )
        assert plan.fault_for({"x": 1}).kind == "transient"
        assert plan.fault_for({"x": 2}) is None


class TestBeforeCell:
    def test_poison_raises_every_time(self):
        plan = ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        for _ in range(3):
            with pytest.raises(ChaosFault):
                plan.before_cell({"x": 1, "y": 9})
        plan.before_cell({"x": 2})  # non-matching cells untouched

    def test_transient_stops_after_times(self, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "transient", "match": {"x": 1}, "times": 2}],
            state_dir=tmp_path,
        )
        for _ in range(2):
            with pytest.raises(ChaosTransientError):
                plan.before_cell({"x": 1})
        plan.before_cell({"x": 1})  # third attempt clean

    def test_attempt_counts_survive_reparse(self, tmp_path):
        """A re-parsed plan (another process) continues the same count."""
        spec = {"fault": "transient", "match": {"x": 1}, "times": 2}
        first = ChaosPlan.scripted([spec], state_dir=tmp_path)
        with pytest.raises(ChaosTransientError):
            first.before_cell({"x": 1})
        second = ChaosPlan.from_json(first.to_json())
        with pytest.raises(ChaosTransientError):
            second.before_cell({"x": 1})
        second.before_cell({"x": 1})

    def test_distinct_cells_count_separately(self, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "transient", "match": {"depth": 2}, "times": 1}],
            state_dir=tmp_path,
        )
        with pytest.raises(ChaosTransientError):
            plan.before_cell({"depth": 2, "policy": "lru"})
        # A different matching cell has its own attempt counter.
        with pytest.raises(ChaosTransientError):
            plan.before_cell({"depth": 2, "policy": "fifo"})
        plan.before_cell({"depth": 2, "policy": "lru"})


class TestCorruptAfterWrite:
    def test_truncates_matching_record(self, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "corrupt", "match": {"x": 1}}], state_dir=tmp_path
        )
        record = tmp_path / "cell.json"
        record.write_text(json.dumps({"value": [1, 2, 3], "meta": {}}))
        assert plan.corrupt_after_write(record, {"x": 1})
        with pytest.raises(ValueError):
            json.loads(record.read_text())

    def test_fires_only_times_times(self, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "corrupt", "match": {"x": 1}, "times": 1}],
            state_dir=tmp_path,
        )
        record = tmp_path / "cell.json"
        record.write_text(json.dumps({"value": 1}))
        assert plan.corrupt_after_write(record, {"x": 1})
        record.write_text(json.dumps({"value": 1}))
        assert not plan.corrupt_after_write(record, {"x": 1})
        assert json.loads(record.read_text()) == {"value": 1}

    def test_non_matching_record_untouched(self, tmp_path):
        plan = ChaosPlan.scripted(
            [{"fault": "corrupt", "match": {"x": 1}}], state_dir=tmp_path
        )
        record = tmp_path / "cell.json"
        record.write_text(json.dumps({"value": 1}))
        assert not plan.corrupt_after_write(record, {"x": 2})
        assert json.loads(record.read_text()) == {"value": 1}


class TestActivation:
    def test_wrap_if_active_is_identity_without_plan(self):
        assert CHAOS_ENV not in os.environ
        assert chaos.wrap_if_active(_square) is _square

    def test_active_installs_and_restores_env(self):
        plan = ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        assert chaos.active_plan() is None
        with chaos.active(plan):
            assert os.environ[CHAOS_ENV] == plan.to_json()
            assert chaos.active_plan() == plan
            wrapped = chaos.wrap_if_active(_square)
            assert wrapped is not _square
            with pytest.raises(ChaosFault):
                wrapped({"x": 1})
            assert wrapped({"x": 3}) == 9
        assert CHAOS_ENV not in os.environ
        assert chaos.active_plan() is None

    def test_active_none_masks_ambient_plan(self):
        plan = ChaosPlan.scripted([{"fault": "raise", "match": {"x": 1}}])
        with chaos.active(plan):
            with chaos.active(None):
                assert chaos.active_plan() is None
                chaos.wrap(_square)({"x": 1})  # wrapped but inert
            assert chaos.active_plan() == plan

    def test_wrapped_kernel_is_chaos_free_without_env(self):
        wrapped = chaos.wrap(_square)
        assert wrapped({"x": 5}) == 25

    def test_malformed_plan_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "{not json")
        with pytest.raises(ValueError):
            chaos.active_plan()
