"""Tests for the repro.perf subsystem and its sweep wiring."""

import json

import pytest

from repro.core.design_space import hierarchy_sweep, specialization_sweep
from repro.perf.memo import (
    SweepCache,
    default_cache,
    resolve_cache,
    stable_key,
)
from repro.perf.parallel import parallel_indexed, parallel_iter, parallel_map
from repro.sim.hierarchy_sim import l1_speedup, simulate_l1_run


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("k", a=1, b=[2, 3]) == stable_key("k", b=[2, 3], a=1)

    def test_sensitive_to_kernel_and_params(self):
        base = stable_key("k", a=1)
        assert stable_key("other", a=1) != base
        assert stable_key("k", a=2) != base
        assert stable_key("k", a=1, b=0) != base


class TestSweepCache:
    def test_memory_roundtrip(self):
        cache = SweepCache()
        assert cache.get("x") is None
        cache.put("x", {"v": 1})
        assert cache.get("x") == {"v": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_bound(self):
        cache = SweepCache(max_memory_entries=2)
        for i in range(4):
            cache.put(f"k{i}", i)
        assert len(cache) == 2
        assert cache.get("k0") is None
        assert cache.get("k3") == 3

    def test_disk_tier_survives_memory_clear(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        cache.put("k", [1, 2, 3])
        cache.clear_memory()
        assert cache.get("k") == [1, 2, 3]
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        assert json.loads(files[0].read_text()) == {"value": [1, 2, 3]}

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None

    def test_clear_removes_files(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None
        assert not list(tmp_path.glob("*.json"))

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepCache(max_memory_entries=0)


class TestResolveCache:
    def test_none_gives_process_default(self):
        assert resolve_cache(None) is default_cache()
        assert resolve_cache(True) is default_cache()

    def test_false_disables(self):
        assert resolve_cache(False) is None

    def test_path_builds_disk_cache(self, tmp_path):
        cache = resolve_cache(tmp_path)
        assert isinstance(cache, SweepCache)
        assert cache.directory == tmp_path

    def test_passthrough_and_rejection(self):
        cache = SweepCache()
        assert resolve_cache(cache) is cache
        with pytest.raises(TypeError):
            resolve_cache(3.14)


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        assert parallel_map(abs, [-2, 1, -3]) == [2, 1, 3]
        assert parallel_map(abs, [], workers=8) == []

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [
            i * i for i in items
        ]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(abs, [1], workers=-1)
        with pytest.raises(ValueError):
            parallel_iter(abs, [1], workers=-1)

    def test_iter_streams_lazily_in_order(self):
        computed = []

        def record(x):
            computed.append(x)
            return x * x

        stream = parallel_iter(record, [1, 2, 3])
        assert computed == []  # nothing runs until the caller advances
        assert next(stream) == 1
        assert computed == [1]
        assert list(stream) == [4, 9]

    def test_iter_parallel_matches_map(self):
        items = list(range(12))
        assert list(parallel_iter(_square, items, workers=3)) == [
            i * i for i in items
        ]


def _square(x):
    return x * x


def _square_or_raise(x):
    if x < 0:
        raise RuntimeError(f"scripted failure for {x}")
    return x * x


def _square_or_raise_slowly(x):
    import time

    if x < 0:
        time.sleep(0.5)
        raise RuntimeError(f"scripted failure for {x}")
    return x * x


def _mark_and_square(args):
    import time
    from pathlib import Path

    x, directory = args
    if x < 0:
        raise RuntimeError(f"scripted failure for {x}")
    time.sleep(0.3)
    Path(directory, f"ran-{x}").write_text("")
    return x * x


class TestParallelIndexed:
    def test_serial_yields_input_order(self):
        assert list(parallel_indexed(_square, [3, 1, 2])) == [
            (0, 9), (1, 1), (2, 4)
        ]

    def test_pool_yields_every_pair_once(self):
        items = list(range(12))
        pairs = sorted(parallel_indexed(_square, items, workers=3))
        assert pairs == [(i, i * i) for i in items]

    def test_serial_failure_propagates(self):
        with pytest.raises(RuntimeError, match="scripted failure"):
            list(parallel_indexed(_square_or_raise, [1, -2, 3]))

    def test_pool_drains_completed_before_raising(self):
        """A consumer persisting incrementally keeps every finished
        cell: the failure surfaces only after completed futures drain —
        even though the failing cell holds the lowest index."""
        items = [-1, 1, 2, 3]  # index 0 fails, after the others finish
        seen = []
        with pytest.raises(RuntimeError, match="scripted failure for -1"):
            for index, value in parallel_indexed(
                _square_or_raise_slowly, items, workers=4
            ):
                seen.append((index, value))
        assert sorted(seen) == [(1, 1), (2, 4), (3, 9)]

    def test_pool_failure_cancels_queued_cells(self, tmp_path):
        """Teardown after a failure must not start queued cells."""
        items = [(x, str(tmp_path)) for x in [-1] + list(range(10))]
        with pytest.raises(RuntimeError, match="scripted failure"):
            list(parallel_indexed(_mark_and_square, items, workers=2))
        started = list(tmp_path.glob("ran-*"))
        # Only cells already running or in the pool's bounded call
        # queue (workers + 1 deep) can still finish; the rest of the
        # queue was cancelled, never drained.  2 running + 3 queued,
        # plus one slot of scheduling slop.
        assert len(started) <= 6


class TestSweepWiring:
    def test_specialization_sweep_cache_and_workers_agree(self, tmp_path):
        plain = specialization_sweep(sizes=(32, 64), cache=False)
        cache = SweepCache(directory=tmp_path)
        first = specialization_sweep(sizes=(32, 64), cache=cache)
        cache.clear_memory()
        from_disk = specialization_sweep(sizes=(32, 64), cache=cache)
        fanned = specialization_sweep(sizes=(32, 64), cache=False, workers=2)
        assert plain == first == from_disk == fanned

    def test_hierarchy_sweep_cached_identical(self):
        cache = SweepCache()
        a = hierarchy_sweep(sizes=(256,), cache=cache)
        b = hierarchy_sweep(sizes=(256,), cache=cache)
        assert a == b
        assert cache.hits >= 1

    def test_malformed_persisted_entry_recomputes(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        good = specialization_sweep(sizes=(32,), cache=cache)
        for entry in tmp_path.glob("*.json"):
            entry.write_text('{"value": "garbage"}')
        cache.clear_memory()
        again = specialization_sweep(sizes=(32,), cache=cache)
        assert again == good

    def test_simulate_l1_run_memo_identical(self):
        cache = SweepCache()
        a = simulate_l1_run("steane", 64, cache=cache)
        b = simulate_l1_run("steane", 64, cache=cache)
        fresh = simulate_l1_run("steane", 64, cache=False)
        assert a == b == fresh
        assert cache.hits >= 1


class TestL1SpeedupKeying:
    def test_explicit_parameters_are_part_of_the_key(self):
        base = l1_speedup("steane", 64)
        small = l1_speedup("steane", 64, 10, 27, 1.0)
        # A smaller compute region / cache must not alias the default
        # entry: the cached function now keys on every input.
        assert small != base
        assert base == l1_speedup("steane", 64)
        assert small == l1_speedup("steane", 64, 10, 27, 1.0)

    def test_defaults_match_explicit_defaults(self):
        from repro.sim.hierarchy_sim import DEFAULT_COMPUTE_QUBITS

        assert l1_speedup("steane", 64) == l1_speedup(
            "steane", 64, 10, DEFAULT_COMPUTE_QUBITS, 2.0
        )
