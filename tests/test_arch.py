"""Tests for tiles, regions, QLA baseline, interconnect and bandwidth."""

import pytest

from repro.arch.bandwidth import (
    bandwidth_available,
    bandwidth_required,
    draper_demand_per_block,
    optimal_superblock_size,
    sweep,
    worst_case_demand_per_block,
)
from repro.arch.interconnect import (
    MeshAllToAll,
    TeleportChannel,
    logical_teleport_time_s,
    teleport_time_by_key,
)
from repro.arch.qla import QlaMachine
from repro.arch.regions import (
    CacheRegion,
    ComputeRegion,
    CqlaFloorplan,
    MemoryRegion,
)
from repro.arch.tile import (
    cache_site_mm2,
    compute_block_mm2,
    memory_site_mm2,
    qla_site_mm2,
    site_areas,
)
from repro.ecc.concatenated import bacon_shor_concatenated, steane_concatenated


class TestTileAreas:
    def test_qla_site_dwarfs_memory_site(self):
        st = steane_concatenated()
        assert qla_site_mm2() > 5 * memory_site_mm2(st)

    def test_memory_site_near_tile_size(self):
        st = steane_concatenated()
        site = memory_site_mm2(st)
        tile = st.qubit_area_mm2(2)
        assert tile < site < 2 * tile

    def test_compute_block_is_27_sites_doubled(self):
        st = steane_concatenated()
        assert compute_block_mm2(st) == pytest.approx(
            27 * st.qubit_area_mm2(2) * 2.0
        )

    def test_bacon_shor_denser_everywhere(self):
        st, bs = steane_concatenated(), bacon_shor_concatenated()
        assert memory_site_mm2(bs) < memory_site_mm2(st)
        assert compute_block_mm2(bs) < compute_block_mm2(st)

    def test_cache_site_uses_level_one(self):
        st = steane_concatenated()
        assert cache_site_mm2(st, 1) < memory_site_mm2(st, 2)

    def test_site_areas_bundle(self):
        areas = site_areas("steane")
        assert areas.qla_site_mm2 == pytest.approx(qla_site_mm2())
        assert areas.code_key == "steane"


class TestRegions:
    def test_memory_ancilla_sharing(self):
        m = MemoryRegion("steane", data_qubits=16)
        assert m.ancilla_qubits == 2
        assert m.logical_qubits == 18

    def test_memory_ancilla_rounds_up(self):
        m = MemoryRegion("steane", data_qubits=17)
        assert m.ancilla_qubits == 3

    def test_memory_wait_budget_far_exceeds_ec(self):
        m = MemoryRegion("steane", data_qubits=8)
        ec = steane_concatenated().ec_time_s(2)
        assert m.ec_wait_budget_s() > 3 * ec

    def test_compute_region_counts(self):
        c = ComputeRegion("steane", n_blocks=4)
        assert c.data_qubits == 36
        assert c.ancilla_qubits == 72
        assert c.logical_qubits == 108

    def test_compute_superblocks(self):
        assert ComputeRegion("steane", 36).superblocks() == 1
        assert ComputeRegion("steane", 37).superblocks() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryRegion("steane", 0)
        with pytest.raises(ValueError):
            ComputeRegion("steane", 0)
        with pytest.raises(ValueError):
            CacheRegion("steane", 0)


class TestFloorplan:
    def test_total_is_sum_of_regions(self):
        plan = CqlaFloorplan("steane", memory_qubits=160, l2_blocks=4)
        expected = plan.memory.area_mm2() + plan.l2_compute.area_mm2()
        assert plan.area_mm2() == pytest.approx(expected)

    def test_hierarchy_adds_cache_and_transfer(self):
        base = CqlaFloorplan("steane", memory_qubits=160, l2_blocks=4)
        full = CqlaFloorplan(
            "steane", memory_qubits=160, l2_blocks=4, l1_blocks=9
        )
        assert full.area_mm2() > base.area_mm2()
        assert full.cache is not None
        assert full.cache.capacity == 162  # 2 x 81 qubits
        assert full.transfer_network is not None

    def test_no_hierarchy_means_no_cache(self):
        plan = CqlaFloorplan("steane", memory_qubits=160, l2_blocks=4)
        assert plan.cache is None
        assert plan.l1_compute is None
        assert plan.transfer_area_mm2() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CqlaFloorplan("steane", memory_qubits=0, l2_blocks=4)
        with pytest.raises(ValueError):
            CqlaFloorplan("steane", memory_qubits=8, l2_blocks=0)
        with pytest.raises(ValueError):
            CqlaFloorplan("steane", memory_qubits=8, l2_blocks=1,
                          cache_factor=0.0)


class TestQla:
    def test_1024_bit_machine_is_tenths_of_square_meter(self):
        qla = QlaMachine(1024)
        assert 0.1 < qla.area_m2() < 1.0

    def test_logical_qubits(self):
        assert QlaMachine(1024).logical_qubits == 5120

    def test_adder_time_uses_critical_path(self):
        qla = QlaMachine(64)
        assert qla.adder_time_s() > 0
        assert qla.modexp_time_s() > 1000 * qla.adder_time_s()

    def test_gain_product_unity(self):
        assert QlaMachine(64).gain_product() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QlaMachine(1)


class TestBandwidth:
    def test_crossover_at_36(self):
        assert optimal_superblock_size() == 36

    def test_available_vs_required_crossing(self):
        below = bandwidth_available(25) - bandwidth_required(25)
        above = bandwidth_available(49) - bandwidth_required(49)
        assert below > 0 > above

    def test_worst_case_demand_higher(self):
        assert worst_case_demand_per_block() > draper_demand_per_block()

    def test_sweep_points(self):
        points = sweep([4, 36, 64])
        assert len(points) == 3
        assert points[1].n_blocks == 36
        assert points[1].available == pytest.approx(
            points[1].required_draper, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_available(0)
        with pytest.raises(ValueError):
            bandwidth_required(0)


class TestInterconnect:
    def test_teleport_time_about_one_ec(self):
        for key in ("steane", "bacon_shor"):
            code = (steane_concatenated() if key == "steane"
                    else bacon_shor_concatenated())
            hop = teleport_time_by_key(key, 2)
            ec = code.ec_time_s(2)
            assert ec < hop < 1.2 * ec

    def test_teleport_grows_with_data_ions(self):
        st = logical_teleport_time_s(steane_concatenated(), 2)
        bs = logical_teleport_time_s(bacon_shor_concatenated(), 2)
        # Bacon-Shor has more data ions but much faster EC.
        assert bs < st

    def test_mesh_all_to_all(self):
        mesh = MeshAllToAll(nodes=16, qubits_per_node=9)
        assert mesh.side == 4
        assert mesh.total_messages == 16 * 15 * 9
        assert mesh.schedule_phases() > 0
        assert mesh.exchange_time_s(0.1) == pytest.approx(
            0.1 * mesh.schedule_phases()
        )

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            MeshAllToAll(nodes=0, qubits_per_node=1)
        with pytest.raises(ValueError):
            MeshAllToAll(nodes=4, qubits_per_node=1).exchange_time_s(0.0)

    def test_channel_batching(self):
        ch = TeleportChannel("steane", 2)
        assert ch.batch_time_s(0) == 0.0
        assert ch.batch_time_s(4, lanes=2) == pytest.approx(2 * ch.hop_time_s)
        with pytest.raises(ValueError):
            ch.batch_time_s(-1)
        with pytest.raises(ValueError):
            ch.batch_time_s(1, lanes=0)
