"""Tests for the resource-constrained list scheduler."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot_gate, toffoli_gate, x_gate
from repro.sim.scheduler import (
    adder_balanced_slots,
    adder_balanced_utilization,
    adder_critical_slots,
    adder_schedule,
    adder_utilization,
    cached_adder,
    list_schedule,
    parallelism_profiles,
    toffoli_subcircuit,
)


def wide_circuit(width=8):
    return Circuit(n_qubits=width, gates=[x_gate(q) for q in range(width)])


class TestListSchedule:
    def test_unlimited_equals_depth(self):
        result = list_schedule(wide_circuit(), None, unit_time=True)
        assert result.makespan == 1
        assert result.busy == 8

    def test_cap_serializes(self):
        result = list_schedule(wide_circuit(), 2, unit_time=True)
        assert result.makespan == 4

    def test_profile_respects_cap(self):
        result = list_schedule(wide_circuit(), 3, unit_time=True,
                               keep_profile=True)
        assert max(result.profile) <= 3
        assert sum(result.profile) == 8

    def test_durations_respected(self):
        c = Circuit(n_qubits=3, gates=[toffoli_gate(0, 1, 2), x_gate(0)])
        result = list_schedule(c, 1)
        assert result.makespan == 16

    def test_dependencies_respected(self):
        c = Circuit(n_qubits=2, gates=[x_gate(0), cnot_gate(0, 1)])
        result = list_schedule(c, 8, unit_time=True)
        assert result.makespan == 2

    def test_empty_circuit(self):
        result = list_schedule(Circuit(n_qubits=1), 4)
        assert result.makespan == 0

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            list_schedule(wide_circuit(), 0)

    def test_utilization(self):
        result = list_schedule(wide_circuit(), 2, unit_time=True)
        assert result.utilization == pytest.approx(1.0)
        unlimited = list_schedule(wide_circuit(), None, unit_time=True)
        with pytest.raises(ValueError):
            unlimited.utilization


class TestStages:
    def test_barrier_prevents_early_start(self):
        # Two independent gates forced into sequential rounds.
        c = Circuit(n_qubits=2, gates=[x_gate(0), x_gate(1)])
        free = list_schedule(c, None, unit_time=True)
        staged = list_schedule(c, None, unit_time=True, stages=[0, 1])
        assert free.makespan == 1
        assert staged.makespan == 2

    def test_stage_annotation_length_checked(self):
        c = wide_circuit()
        with pytest.raises(ValueError):
            list_schedule(c, None, stages=[0])

    def test_adder_rounds_dominate_depth(self):
        # Staged critical path exceeds the raw DAG critical path.
        adder = cached_adder(64, False)
        staged = list_schedule(adder.circuit, None, stages=adder.stages)
        free = list_schedule(adder.circuit, None)
        assert staged.makespan > free.makespan


class TestAdderEntryPoints:
    def test_critical_slots_grow_logarithmically(self):
        c64 = adder_critical_slots(64)
        c256 = adder_critical_slots(256)
        c1024 = adder_critical_slots(1024)
        assert c64 < c256 < c1024
        assert c1024 < 2 * c64  # log-depth, not linear

    def test_balanced_slots_bounds(self):
        unlimited = adder_schedule(64, None)
        assert adder_balanced_slots(64, None) == unlimited.makespan
        k_small = adder_balanced_slots(64, 2)
        assert k_small >= unlimited.busy // 2

    def test_balanced_monotone_in_blocks(self):
        values = [adder_balanced_slots(128, k) for k in (4, 9, 16, 36)]
        assert values == sorted(values, reverse=True)

    def test_balanced_invalid_blocks(self):
        with pytest.raises(ValueError):
            adder_balanced_slots(64, 0)

    def test_utilization_decreases_with_blocks(self):
        u = [adder_balanced_utilization(256, k) for k in (4, 36, 196)]
        assert u[0] > u[1] > u[2]
        assert 0 < u[2] < 1
        assert u[0] > 0.99  # work-bound regime saturates the blocks

    def test_list_schedule_utilization_available(self):
        assert 0 < adder_utilization(64, 9) <= 1


class TestFigure2:
    def test_fifteen_blocks_match_unlimited_for_64(self):
        """The paper's Figure 2 claim: 15 compute blocks run the
        64-qubit adder as fast as unlimited hardware (within a cycle)."""
        data = parallelism_profiles(64, 15)
        assert data["makespan_capped"] <= data["makespan_unlimited"] + 1

    def test_small_cap_hurts(self):
        data = parallelism_profiles(64, 5)
        assert data["makespan_capped"] > 1.5 * data["makespan_unlimited"]

    def test_peak_parallelism_near_width(self):
        data = parallelism_profiles(64, 15)
        assert max(data["unlimited"]) == 64

    def test_toffoli_subcircuit_pure(self):
        sub = toffoli_subcircuit(32)
        assert sub.toffoli_count == len(sub)
