"""Tests for the durable sharded-sweep result store (repro.perf.store)."""

import json
import multiprocessing
import os

import pytest

from repro.perf.memo import SweepCache
from repro.perf.store import (
    INDEX_NAME,
    ResultStore,
    atomic_write_text,
    resolve_store,
)


class TestAtomicWriteText:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "a" / "b.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_leaves_no_temp_litter(self, tmp_path):
        atomic_write_text(tmp_path / "x.json", "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("k") is None
        assert not store.has("k")
        store.put("k", {"speedup": 2.5}, kernel="engine_cell",
                  params={"n_bits": 16})
        assert store.get("k") == {"speedup": 2.5}
        assert store.has("k")
        record = store.record("k")
        assert record["meta"]["kernel"] == "engine_cell"
        assert record["meta"]["params"] == {"n_bits": 16}

    def test_keys_scans_records_not_index(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("b", 2)
        store.put("a", 1)
        # A record dropped in by a merged shard artifact (no index entry)
        # is still found: the scan, not the index, is the truth.
        (tmp_path / "c.json").write_text(json.dumps({"value": 3}))
        assert store.keys() == ["a", "b", "c"]

    def test_corrupt_record_counts_as_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("good", 1)
        (tmp_path / "torn.json").write_text('{"value": [1, 2')
        (tmp_path / "wrongshape.json").write_text(json.dumps([1, 2]))
        (tmp_path / "novalue.json").write_text(json.dumps({"meta": {}}))
        # The zero-length file a crash between open and write leaves.
        (tmp_path / "empty.json").write_text("")
        assert store.get("torn") is None
        assert store.get("wrongshape") is None
        assert store.get("novalue") is None
        assert store.get("empty") is None
        assert store.keys() == ["good"]
        status = store.status(
            ["good", "torn", "wrongshape", "empty", "missing"]
        )
        assert (status.total, status.done, status.missing) == (5, 1, 4)
        assert status.missing_keys == ("torn", "wrongshape", "empty", "missing")
        assert not status.complete

    def test_status_complete(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        status = store.status(["k"])
        assert status.complete and status.missing == 0

    def test_index_tracks_puts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", 1, kernel="engine_cell")
        store.put("k2", 2, kernel="engine_cell")
        index = store.read_index()
        assert set(index) == {"k1", "k2"}
        assert index["k1"]["kernel"] == "engine_cell"

    def test_corrupt_index_is_tolerated_and_rebuilt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", 1, kernel="engine_cell")
        store.index_path.write_text("{torn")
        assert store.read_index() == {}
        assert store.get("k1") == 1  # records never depend on the index
        store.put("k2", 2)  # index update survives the corrupt base
        rebuilt = store.rebuild_index()
        assert set(rebuilt) == {"k1", "k2"}
        assert set(store.read_index()) == {"k1", "k2"}

    def test_rebuild_index_drops_stale_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("gone", 1)
        store.record_path("gone").unlink()
        store.put("kept", 2)
        assert set(store.rebuild_index()) == {"kept"}

    def test_missing_directory_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.get("k") is None
        assert store.keys() == []
        assert store.read_index() == {}

    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store
        built = resolve_store(tmp_path)
        assert isinstance(built, ResultStore)
        assert built.directory == tmp_path
        with pytest.raises(TypeError):
            resolve_store(3.14)

    def test_resolve_store_accepts_backend_locators(self, tmp_path):
        """Locator strings route through repro.perf.backends; any object
        with the full backend surface passes through untouched."""
        from repro.perf.backends import SqliteStore

        assert isinstance(resolve_store(f"fs:{tmp_path}"), ResultStore)
        sqlite_store = resolve_store(f"sqlite:{tmp_path}/store.db")
        assert isinstance(sqlite_store, SqliteStore)
        assert resolve_store(sqlite_store) is sqlite_store


class TestFailureRecords:
    FAILURE = {
        "kind": "exception",
        "exception_type": "ChaosFault",
        "message": "scripted",
        "attempts": 3,
        "traceback_digest": "abc123def456",
    }

    def test_put_failure_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.failure("k") is None
        store.put_failure(
            "k", self.FAILURE, kernel="engine_cell", params={"n_bits": 16}
        )
        record = store.failure("k")
        assert record["failure"] == self.FAILURE
        assert record["meta"]["kernel"] == "engine_cell"
        assert record["meta"]["params"] == {"n_bits": 16}
        assert store.failure_keys() == ["k"]

    def test_failure_never_shadows_a_result(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_failure("k", self.FAILURE)
        assert not store.has("k")
        assert store.keys() == []
        store.put("k", {"speedup": 2.0})
        # The result wins everywhere a caller could look.
        assert store.has("k")
        assert store.status(["k"]).complete
        assert store.status(["k"]).failed == 0

    def test_status_reports_failed_subset_of_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("done", 1)
        store.put_failure("quarantined", self.FAILURE)
        status = store.status(["done", "quarantined", "absent"])
        assert (status.done, status.missing, status.failed) == (1, 2, 1)
        assert status.failed_keys == ("quarantined",)

    def test_clear_failure(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_failure("k", self.FAILURE)
        store.clear_failure("k")
        assert store.failure("k") is None
        assert store.failure_keys() == []
        store.clear_failure("never-existed")  # idempotent

    def test_corrupt_failure_record_counts_as_none(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_failure("k", self.FAILURE)
        store.failure_path("k").write_text('{"failure": [torn')
        assert store.failure("k") is None
        (tmp_path / "failures" / "shapeless.json").write_text(
            json.dumps({"failure": "not-a-dict"})
        )
        assert store.failure("shapeless") is None
        assert store.failure_keys() == []

    def test_failure_records_invisible_to_record_scan(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("result", 1)
        store.put_failure("bad", self.FAILURE)
        assert store.keys() == ["result"]
        assert set(store.rebuild_index()) == {"result"}


class TestSweepCacheLayoutCompat:
    """The store layout is REPRO_CACHE_DIR-compatible in both directions."""

    def test_sweep_cache_reads_store_records(self, tmp_path):
        ResultStore(tmp_path).put("k", [1, 2, 3], kernel="engine_cell")
        assert SweepCache(directory=tmp_path).get("k") == [1, 2, 3]

    def test_store_reads_sweep_cache_entries(self, tmp_path):
        SweepCache(directory=tmp_path).put("k", {"rows": [1]})
        store = ResultStore(tmp_path)
        assert store.get("k") == {"rows": [1]}
        assert store.has("k")  # meta is optional: a bare cache entry counts


def _race_same_cell(args):
    directory, key, rounds = args
    store = ResultStore(directory)
    for _ in range(rounds):
        store.put(key, {"cell": "deterministic-value", "n": 12},
                  kernel="engine_cell", params={"n_bits": 12})
    return True


def _race_many_cells(args):
    directory, rounds = args
    store = ResultStore(directory)
    for i in range(rounds):
        key = f"cell{i % 10}"
        store.put(key, {"value-for": key}, kernel="engine_cell")
    return True


class TestConcurrentWriters:
    def test_two_processes_racing_one_cell(self, tmp_path):
        with multiprocessing.Pool(2) as pool:
            done = pool.map(
                _race_same_cell, [(str(tmp_path), "cell", 40)] * 2
            )
        assert done == [True, True]
        store = ResultStore(tmp_path)
        # Cells are deterministic, so last-writer-wins is value-identical;
        # the record must be complete and readable, never torn.
        assert store.get("cell") == {"cell": "deterministic-value", "n": 12}
        assert set(store.read_index()) == {"cell"}
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_two_processes_racing_the_index(self, tmp_path):
        with multiprocessing.Pool(2) as pool:
            pool.map(_race_many_cells, [(str(tmp_path), 50)] * 2)
        store = ResultStore(tmp_path)
        expected = {f"cell{i}" for i in range(10)}
        for key in expected:
            assert store.get(key) == {"value-for": key}
        # The flock-guarded read-modify-write means no put is lost from
        # the index even under interleaving.
        assert set(store.read_index()) == expected
        assert set(store.keys()) == expected

    def test_memo_cache_concurrent_writers_never_torn(self, tmp_path):
        """The memo file cache shares the store's atomic write path."""
        with multiprocessing.Pool(2) as pool:
            pool.map(_memo_hammer, [(str(tmp_path), 40)] * 2)
        cache = SweepCache(directory=tmp_path)
        assert cache.get("memo-key") == {"rows": list(range(50))}


def _memo_hammer(args):
    directory, rounds = args
    cache = SweepCache(directory=directory)
    for _ in range(rounds):
        cache.put("memo-key", {"rows": list(range(50))})
    return True


class TestIndexFileIsolation:
    def test_index_never_shadows_a_record(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        assert INDEX_NAME not in [f"{key}.json" for key in store.keys()]
        assert "index" not in store.keys()

    def test_lock_file_is_hidden_from_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", 1)
        assert store.keys() == ["k"]
        assert os.path.exists(tmp_path / ".index.lock")
