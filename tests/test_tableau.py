"""Tests for the CHP stabilizer-tableau simulator."""

import pytest

from repro.ecc import bacon_shor, steane
from repro.ecc.clifford import cnot, h, s, sdg, x, z
from repro.ecc.pauli import Pauli
from repro.ecc.tableau import Tableau


class TestBasics:
    def test_initial_state_measures_zero(self):
        t = Tableau(3, seed=0)
        assert [t.measure(q) for q in range(3)] == [0, 0, 0]

    def test_x_flips_measurement(self):
        t = Tableau(2, seed=0)
        t.x_gate(1)
        assert t.measure(0) == 0
        assert t.measure(1) == 1

    def test_plus_state_random_but_repeatable(self):
        outcomes = set()
        for seed in range(8):
            t = Tableau(1, seed=seed)
            t.h(0)
            outcomes.add(t.measure(0))
        assert outcomes == {0, 1}

    def test_forced_outcome_on_random_measurement(self):
        t = Tableau(1, seed=0)
        t.h(0)
        assert t.measure(0, forced=1) == 1

    def test_measurement_collapses(self):
        t = Tableau(1, seed=0)
        t.h(0)
        first = t.measure(0)
        assert t.measure(0) == first  # repeated measurement agrees

    def test_validation(self):
        with pytest.raises(ValueError):
            Tableau(0)
        t = Tableau(2)
        with pytest.raises(ValueError):
            t.stabilizer_row(2)


class TestEntanglement:
    def test_bell_pair_correlation(self):
        for seed in range(6):
            t = Tableau(2, seed=seed)
            t.apply([h(0), cnot(0, 1)])
            assert t.measure(0) == t.measure(1)

    def test_ghz_correlation(self):
        t = Tableau(3, seed=5)
        t.apply([h(0), cnot(0, 1), cnot(1, 2)])
        a = t.measure(0)
        assert t.measure(1) == a and t.measure(2) == a

    def test_ghz_stabilized_by_xxx(self):
        t = Tableau(3, seed=1)
        t.apply([h(0), cnot(0, 1), cnot(1, 2)])
        assert t.stabilizes(Pauli.from_label("XXX"))
        assert t.stabilizes(Pauli.from_label("ZZI"))
        assert not t.stabilizes(Pauli.from_label("ZII"))


class TestGateSemantics:
    def test_s_squared_is_z(self):
        t1 = Tableau(1, seed=0)
        t1.apply([h(0), s(0), s(0), h(0)])  # H Z H = X on |0> -> |1>
        assert t1.measure(0) == 1

    def test_sdg_cancels_s(self):
        t = Tableau(1, seed=0)
        t.apply([h(0), s(0), sdg(0), h(0)])
        assert t.measure(0) == 0

    def test_pauli_gates_via_apply(self):
        t = Tableau(2, seed=0)
        t.apply([x(0), z(1)])
        assert t.measure(0) == 1
        assert t.measure(1) == 0

    def test_apply_pauli_operator(self):
        t = Tableau(3, seed=0)
        t.apply_pauli(Pauli.from_label("XIX"))
        assert [t.measure(q) for q in range(3)] == [1, 0, 1]

    def test_unsupported_gate_rejected(self):
        from repro.ecc.clifford import CliffordGate

        t = Tableau(2)
        # Bypass CliffordGate validation to smuggle in an unknown name.
        bad = CliffordGate.__new__(CliffordGate)
        object.__setattr__(bad, "name", "T")
        object.__setattr__(bad, "qubits", (0,))
        with pytest.raises(ValueError):
            t.apply([bad])


class TestCodeStates:
    def test_steane_encoder_state(self):
        t = Tableau(7, seed=0)
        t.apply(steane.encoder_circuit())
        code = steane.steane_code()
        for stab in code.stabilizers:
            assert t.stabilizes(stab)
        assert t.stabilizes(code.logical_zs[0])
        assert not t.stabilizes(code.logical_xs[0])

    def test_bacon_shor_encoder_state(self):
        t = Tableau(9, seed=0)
        t.apply(bacon_shor.encoder_circuit())
        code = bacon_shor.bacon_shor_code()
        for stab in code.stabilizers:
            assert t.stabilizes(stab)
        assert t.stabilizes(code.logical_zs[0])

    def test_error_breaks_stabilization(self):
        t = Tableau(7, seed=0)
        t.apply(steane.encoder_circuit())
        t.apply_pauli(Pauli.single(7, 3, "X"))
        code = steane.steane_code()
        broken = sum(0 if t.stabilizes(s) else 1 for s in code.stabilizers)
        assert broken > 0

    def test_syndrome_extraction_via_observable_measurement(self):
        """Measure each stabilizer on an erred code state: outcomes must
        equal the algebraic syndrome."""
        code = steane.steane_code()
        error = Pauli.single(7, 5, "Z")
        t = Tableau(7, seed=2)
        t.apply(steane.encoder_circuit())
        t.apply_pauli(error)
        syndrome = code.syndrome(error)
        for stab, expected in zip(code.stabilizers, syndrome):
            assert t.measure_observable(stab) == expected

    def test_copy_independence(self):
        t = Tableau(2, seed=0)
        t.h(0)
        clone = t.copy()
        clone.x_gate(1)
        assert t.measure(1) == 0
