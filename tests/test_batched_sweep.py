"""Tests for batched (traffic-grouped) sweep execution.

The engine design space factorizes: reservation-model replacement
traffic depends only on the traffic axes (workload, size, depth,
policy), never on the priced axes (code assignment, transfer width).
The batched runner exploits this — one group simulates its movement
trace once and re-prices it per member — and these tests pin the
batched path to the per-cell path at every observable layer: returned
rows, stored record bytes, group-shaped supervision and quarantine,
shard assignment, and the CLI.
"""

import pstats

import pytest

from repro.core.design_space import (
    EngineRow,
    engine_batch_cell,
    engine_batch_spec,
    engine_cell,
    engine_grid,
    engine_sweep,
    engine_traffic_key,
)
from repro.perf import chaos
from repro.perf.store import ResultStore
from repro.perf.supervise import Supervision, RetryPolicy, supervised_indexed
from repro.sweep.cli import main as sweep_main
from repro.sweep.runner import compute_grid

PAIRS = (("bacon_shor", "steane"), ("steane", "bacon_shor"))

#: One small engine grid with both batchable (no-prefetch) and
#: time-coupled (next_k) cells, and a three-config priced axis per
#: traffic group (pure steane plus both mixed pairs).
GRID_KWARGS = dict(
    workloads=("draper_adder",), sizes=(16,), depths=(2, 3),
    policies=("lru", "belady"), prefetches=("none", "next_k"),
    code_pairs=PAIRS,
)
GRID_ARGS = [
    "--workloads", "draper_adder", "--sizes", "16", "--depths", "2", "3",
    "--policies", "lru", "belady", "--prefetches", "none", "next_k",
    "--code-pairs", "bacon_shor:steane", "steane:bacon_shor",
]


def _record_bytes(store: ResultStore) -> dict:
    return {
        path.name: path.read_bytes()
        for path in store.directory.glob("*.json")
        if path.name != "index.json"
    }


def _groups(grid):
    groups = {}
    for cell in grid:
        token = engine_traffic_key(cell.as_dict())
        if token is not None:
            groups.setdefault(token, []).append(cell)
    return groups


class TestTrafficKey:
    def test_priced_axes_share_a_key(self):
        base = dict(workload="draper_adder", n_bits=16, depth=2,
                    policy="lru", prefetch="none", code_key="steane",
                    parallel_transfers=10, compute_qubits=12,
                    cache_factor=1.0)
        mixed = dict(base, code_key="bacon_shor", memory_code_key="steane",
                     parallel_transfers=20)
        assert engine_traffic_key(base) == engine_traffic_key(mixed)

    def test_traffic_axes_split_keys(self):
        base = dict(workload="draper_adder", n_bits=16, depth=2,
                    policy="lru", prefetch="none", code_key="steane",
                    parallel_transfers=10, compute_qubits=12,
                    cache_factor=1.0)
        assert engine_traffic_key(base) != engine_traffic_key(
            dict(base, policy="belady")
        )
        assert engine_traffic_key(base) != engine_traffic_key(
            dict(base, depth=3)
        )

    def test_time_coupled_cells_are_unbatchable(self):
        params = dict(workload="draper_adder", n_bits=16, depth=2,
                      policy="lru", prefetch="next_k", code_key="steane",
                      parallel_transfers=10, compute_qubits=12,
                      cache_factor=1.0)
        assert engine_traffic_key(params) is None


class TestBatchKernel:
    def test_rejects_mixed_traffic_groups(self):
        grid = engine_grid(**GRID_KWARGS)
        cells = [cell.as_dict() for cell in grid
                 if cell.as_dict()["prefetch"] == "none"]
        different = [params for params in cells
                     if params["depth"] != cells[0]["depth"]]
        with pytest.raises(ValueError):
            engine_batch_cell((cells[0], different[0]))

    def test_rejects_time_coupled_groups(self):
        grid = engine_grid(**GRID_KWARGS)
        prefetched = [cell.as_dict() for cell in grid
                      if cell.as_dict()["prefetch"] != "none"]
        with pytest.raises(ValueError):
            engine_batch_cell((prefetched[0],))


class TestBatchedEquivalence:
    def test_rows_bit_identical(self):
        assert engine_sweep(**GRID_KWARGS) == engine_sweep(
            batched=True, **GRID_KWARGS
        )

    def test_store_records_byte_identical(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        percell = ResultStore(tmp_path / "percell")
        batched = ResultStore(tmp_path / "batched")
        rows_percell = compute_grid(grid, engine_cell, EngineRow,
                                    store=percell)
        rows_batched = compute_grid(grid, engine_cell, EngineRow,
                                    store=batched,
                                    batch=engine_batch_spec())
        assert rows_percell == rows_batched
        assert _record_bytes(percell) == _record_bytes(batched)

    def test_supervised_batched_identical(self):
        grid = engine_grid(**GRID_KWARGS)
        plain = compute_grid(grid, engine_cell, EngineRow)
        supervised = compute_grid(
            grid, engine_cell, EngineRow, batch=engine_batch_spec(),
            supervise=Supervision(cell_timeout_s=120.0), workers=2,
        )
        assert plain == supervised

    def test_batched_reads_through_store(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path / "store")
        first = compute_grid(grid, engine_cell, EngineRow, store=store,
                             batch=engine_batch_spec())
        # Second pass must resolve every cell from the store; a kernel
        # that explodes on contact proves nothing recomputes.
        def _explodes(params):
            raise AssertionError("warm batched run recomputed a cell")

        again = compute_grid(grid, _explodes, EngineRow, store=store,
                             batch=engine_batch_spec())
        assert first == again


class TestTraceCacheSweep:
    """The persistent trace cache and whole-grid mode on real sweeps."""

    def test_grid_mode_store_matches_per_group_mode(self, tmp_path):
        # Serial unsupervised batched runs take the whole-grid pricing
        # path (BatchSpec.grid_fn); pooled runs price per group.  Both
        # must leave byte-identical record trees.
        grid = engine_grid(**GRID_KWARGS)
        grid_store = ResultStore(tmp_path / "grid")
        pooled_store = ResultStore(tmp_path / "pooled")
        rows_grid = compute_grid(grid, engine_cell, EngineRow,
                                 store=grid_store, batch=engine_batch_spec())
        rows_pooled = compute_grid(grid, engine_cell, EngineRow,
                                   store=pooled_store, workers=2,
                                   batch=engine_batch_spec())
        assert rows_grid == rows_pooled
        assert _record_bytes(grid_store) == _record_bytes(pooled_store)

    def test_warm_cache_skips_extraction_and_is_bit_identical(self, tmp_path):
        from repro.perf.tracecache import TraceCache

        cache_dir = tmp_path / "traces"
        grid = engine_grid(**GRID_KWARGS)
        cold_store = ResultStore(tmp_path / "cold")
        warm_store = ResultStore(tmp_path / "warm")
        cold = compute_grid(grid, engine_cell, EngineRow, store=cold_store,
                            batch=engine_batch_spec(trace_cache=cache_dir))
        after_cold = TraceCache(cache_dir).read_stats()
        assert after_cold["extractions"] > 0
        assert len(TraceCache(cache_dir)) == after_cold["extractions"]
        warm = compute_grid(grid, engine_cell, EngineRow, store=warm_store,
                            batch=engine_batch_spec(trace_cache=cache_dir))
        after_warm = TraceCache(cache_dir).read_stats()
        # The warm run simulated nothing and loaded every group.
        assert after_warm["extractions"] == after_cold["extractions"]
        assert after_warm["hits"] == after_cold["hits"] + \
            after_cold["extractions"]
        assert cold == warm
        assert _record_bytes(cold_store) == _record_bytes(warm_store)

    def test_pooled_workers_share_the_cache(self, tmp_path):
        from repro.perf.tracecache import TraceCache

        cache_dir = tmp_path / "traces"
        grid = engine_grid(**GRID_KWARGS)
        compute_grid(grid, engine_cell, EngineRow, workers=2,
                     batch=engine_batch_spec(trace_cache=cache_dir))
        stats = TraceCache(cache_dir).read_stats()
        # Pool workers flush their deltas into the shared stats.json.
        assert stats["extractions"] == len(TraceCache(cache_dir)) > 0
        compute_grid(grid, engine_cell, EngineRow, workers=2,
                     batch=engine_batch_spec(trace_cache=cache_dir))
        again = TraceCache(cache_dir).read_stats()
        assert again["extractions"] == stats["extractions"]

    def test_engine_sweep_trace_cache_requires_batched(self, tmp_path):
        with pytest.raises(ValueError):
            engine_sweep(trace_cache=tmp_path / "traces", **GRID_KWARGS)


class TestGroupSupervision:
    def test_transient_group_fault_retried_once_per_attempt(self, tmp_path):
        # The fault poisons exactly one member cell of a three-member
        # traffic group (chaos attempt counters are per-params).  The
        # whole group is the retry unit, so times=2 heals it inside
        # max_attempts=3 and every member's row comes out identical to
        # the fault-free sweep.
        grid = engine_grid(**GRID_KWARGS)
        plan = chaos.ChaosPlan.scripted(
            [{"fault": "transient", "times": 2,
              "match": {"policy": "lru", "depth": 2, "prefetch": "none",
                        "memory_code_key": "steane"}}],
            state_dir=tmp_path,
        )
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        )
        with chaos.active(plan):
            rows = compute_grid(grid, engine_cell, EngineRow,
                                batch=engine_batch_spec(),
                                supervise=supervision)
        assert rows == compute_grid(grid, engine_cell, EngineRow)

    def test_terminal_group_failure_quarantines_every_member(self, tmp_path):
        grid = engine_grid(**GRID_KWARGS)
        store = ResultStore(tmp_path / "store")
        poisoned = {"policy": "lru", "depth": 2, "prefetch": "none",
                    "memory_code_key": "steane"}
        plan = chaos.ChaosPlan.scripted([{"fault": "raise",
                                          "match": poisoned}])
        supervision = Supervision(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            # One failed *group* must count as one failure unit: three
            # quarantined member cells with max_failures=1 would abort
            # if the runner double-charged them.
            max_failures=1,
        )
        token = engine_traffic_key(
            dict(workload="draper_adder", n_bits=16, depth=2, policy="lru",
                 prefetch="none", code_key="steane", parallel_transfers=10,
                 compute_qubits=12, cache_factor=1.0)
        )
        group = _groups(grid)[token]
        assert len(group) == 3
        with chaos.active(plan):
            rows = compute_grid(grid, engine_cell, EngineRow, store=store,
                                batch=engine_batch_spec(),
                                supervise=supervision)
        member_keys = sorted(cell.key for cell in group)
        assert sorted(store.failure_keys()) == member_keys
        for position, cell in enumerate(grid):
            if cell.key in member_keys:
                assert rows[position] is None
                record = store.failure(cell.key)["failure"]
                assert sorted(record["group_members"]) == member_keys
            else:
                assert rows[position] is not None

    def test_supervised_weights_validated(self):
        items = [1, 2, 3]
        with pytest.raises(ValueError):
            list(supervised_indexed(lambda x: x, items,
                                    supervision=Supervision(),
                                    weights=[1.0, 2.0]))
        with pytest.raises(ValueError):
            list(supervised_indexed(lambda x: x, items,
                                    supervision=Supervision(),
                                    weights=[1.0, 0.0, 2.0]))


class TestGroupAwareSharding:
    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_groups_never_split_and_cover_the_grid(self, count):
        grid = engine_grid(**GRID_KWARGS)

        def group_key(cell):
            return engine_traffic_key(cell.as_dict())

        shards = [grid.shard(index, count, group_key=group_key)
                  for index in range(count)]
        seen = [cell.key for shard in shards for cell in shard]
        assert sorted(seen) == sorted(grid.keys())
        for token, group in _groups(grid).items():
            owners = {
                index
                for index, shard in enumerate(shards)
                for cell in shard
                if engine_traffic_key(cell.as_dict()) == token
            }
            assert len(owners) == 1, (token, owners)


class TestBatchedCli:
    def test_sharded_batched_run_matches_percell(self, tmp_path):
        percell, batched = str(tmp_path / "percell"), str(tmp_path / "batched")
        for index in range(2):
            assert sweep_main(["run", "--shard", f"{index}/2", "--store",
                               percell, *GRID_ARGS]) == 0
            assert sweep_main(["run", "--shard", f"{index}/2", "--store",
                               batched, "--batched", *GRID_ARGS]) == 0
        out_percell = tmp_path / "rows-percell.json"
        out_batched = tmp_path / "rows-batched.json"
        assert sweep_main(["merge", "--store", percell, "--verify",
                           "--output", str(out_percell), *GRID_ARGS]) == 0
        assert sweep_main(["merge", "--store", batched, "--verify",
                           "--output", str(out_batched), *GRID_ARGS]) == 0
        assert out_percell.read_bytes() == out_batched.read_bytes()
        assert _record_bytes(ResultStore(percell)) == _record_bytes(
            ResultStore(batched)
        )

    def test_trace_cache_run_reports_warm_second_pass(self, tmp_path,
                                                      capsys):
        cache = str(tmp_path / "traces")
        cold, warm = str(tmp_path / "cold"), str(tmp_path / "warm")
        assert sweep_main(["run", "--shard", "0/1", "--store", cold,
                           "--batched", "--trace-cache", cache,
                           *GRID_ARGS]) == 0
        cold_out = capsys.readouterr().out
        assert "trace cache:" in cold_out
        assert "(0 extractions)" not in cold_out
        assert sweep_main(["run", "--shard", "0/1", "--store", warm,
                           "--batched", "--trace-cache", cache,
                           *GRID_ARGS]) == 0
        warm_out = capsys.readouterr().out
        # The warm pass loaded every group: zero simulations, and the
        # record trees are byte-identical.
        assert "(0 extractions)" in warm_out
        assert "0 misses" in warm_out
        assert _record_bytes(ResultStore(cold)) == _record_bytes(
            ResultStore(warm)
        )
        assert sweep_main(["status", "--store", warm, "--trace-cache",
                           cache, *GRID_ARGS]) == 0
        status_out = capsys.readouterr().out
        assert "blobs" in status_out and "lifetime" in status_out

    def test_trace_cache_requires_batched(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_main(["run", "--shard", "0/1", "--store",
                        str(tmp_path / "s"), "--trace-cache",
                        str(tmp_path / "traces"), *GRID_ARGS])

    def test_batched_rejects_table_kernels(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_main(["run", "--shard", "0/1", "--store",
                        str(tmp_path / "s"), "--kernel", "transfer_cell",
                        "--batched"])

    def test_profile_writes_loadable_pstats(self, tmp_path):
        store = tmp_path / "store"
        assert sweep_main(["run", "--shard", "0/1", "--store", str(store),
                           "--profile", "--batched", *GRID_ARGS]) == 0
        dump = tmp_path / "store-profile-shard0of1.pstats"
        assert dump.is_file()
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0
        # The dump is a sibling of the store, never inside it: the
        # record set a merge diff inspects must stay byte-comparable.
        assert not list(store.glob("*.pstats"))

    def test_profile_resume_dump(self, tmp_path):
        store = tmp_path / "store"
        assert sweep_main(["resume", "--store", str(store), "--profile",
                           *GRID_ARGS]) == 0
        assert (tmp_path / "store-profile-resume.pstats").is_file()
