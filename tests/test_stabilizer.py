"""Unit tests for the stabilizer-code machinery and GF(2) helpers."""

import numpy as np
import pytest

from repro.ecc.pauli import Pauli
from repro.ecc.stabilizer import (
    DecodingError,
    StabilizerCode,
    gf2_rank,
    gf2_row_reduce,
    in_gf2_rowspan,
)


def three_qubit_bitflip() -> StabilizerCode:
    """The [[3,1,1]]-style repetition code (corrects X errors only)."""
    return StabilizerCode(
        name="3-qubit bit flip",
        n=3,
        k=1,
        d=3,
        stabilizers=[Pauli.from_label("ZZI"), Pauli.from_label("IZZ")],
        logical_xs=[Pauli.from_label("XXX")],
        logical_zs=[Pauli.from_label("ZII")],
    )


class TestGf2:
    def test_row_reduce_identity(self):
        m = np.eye(3, dtype=np.uint8)
        reduced, pivots = gf2_row_reduce(m)
        assert pivots == [0, 1, 2]
        assert (reduced == m).all()

    def test_rank_with_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_rowspan_membership(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert in_gf2_rowspan(m, np.array([1, 0, 1], dtype=np.uint8))
        assert not in_gf2_rowspan(m, np.array([1, 0, 0], dtype=np.uint8))

    def test_empty_matrix(self):
        m = np.zeros((0, 0), dtype=np.uint8)
        assert gf2_rank(m) == 0


class TestValidation:
    def test_noncommuting_stabilizers_rejected(self):
        with pytest.raises(ValueError):
            StabilizerCode(
                name="bad", n=1, k=0, d=1,
                stabilizers=[Pauli.from_label("X"), Pauli.from_label("Z")],
                logical_xs=[], logical_zs=[],
            )

    def test_logical_pair_must_anticommute(self):
        with pytest.raises(ValueError):
            StabilizerCode(
                name="bad", n=2, k=1, d=1,
                stabilizers=[],
                logical_xs=[Pauli.from_label("XI")],
                logical_zs=[Pauli.from_label("IZ")],
            )

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StabilizerCode(
                name="bad", n=3, k=1, d=1,
                stabilizers=[Pauli.from_label("ZZ")],
                logical_xs=[Pauli.from_label("XXX")],
                logical_zs=[Pauli.from_label("ZII")],
            )


class TestBitFlipCode:
    def test_syndromes_distinguish_x_errors(self):
        code = three_qubit_bitflip()
        syndromes = {
            code.syndrome(Pauli.single(3, q, "X")) for q in range(3)
        }
        assert len(syndromes) == 3
        assert (0, 0) not in syndromes

    def test_corrects_every_x_error(self):
        code = three_qubit_bitflip()
        for q in range(3):
            residual, ok = code.correct(Pauli.single(3, q, "X"))
            assert ok, f"X on qubit {q} not corrected"

    def test_z_error_is_logical(self):
        code = three_qubit_bitflip()
        # Z errors commute with all stabilizers but are not trivial.
        z0 = Pauli.single(3, 0, "Z")
        assert code.syndrome(z0) == (0, 0)
        assert code.is_logical_error(z0)

    def test_identity_is_trivial(self):
        code = three_qubit_bitflip()
        assert code.is_trivial(Pauli.identity(3))
        assert not code.is_logical_error(Pauli.identity(3))

    def test_stabilizer_is_trivial(self):
        code = three_qubit_bitflip()
        assert code.is_trivial(Pauli.from_label("ZZI"))

    def test_decode_unknown_syndrome(self):
        code = three_qubit_bitflip()
        with pytest.raises(DecodingError):
            code.decode((1, 1, 1))  # wrong width, never in table

    def test_decode_table_has_trivial_entry(self):
        code = three_qubit_bitflip()
        table = code.decode_table()
        assert table[(0, 0)].is_identity()

    def test_correctable_weight(self):
        assert three_qubit_bitflip().correctable_weight == 1
