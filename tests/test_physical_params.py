"""Unit tests for the physical parameter layer (Table 1)."""

import pytest

from repro.physical.params import (
    CYCLE_TIME_US,
    DEFAULT_PARAMS,
    Op,
    OpParams,
    future_params,
    now_params,
)


class TestOpParams:
    def test_cycles_round_up(self):
        assert OpParams(10.0, 0.0).cycles == 1
        assert OpParams(11.0, 0.0).cycles == 2
        assert OpParams(200.0, 0.0).cycles == 20

    def test_sub_cycle_operations_take_one_cycle(self):
        assert OpParams(0.1, 0.0).cycles == 1
        assert OpParams(1.0, 0.0).cycles == 1


class TestFutureParams:
    def test_cycle_is_ten_microseconds(self):
        assert CYCLE_TIME_US == 10.0

    def test_table1_future_durations(self):
        p = future_params()
        assert p.duration_us(Op.SINGLE_GATE) == 1.0
        assert p.duration_us(Op.DOUBLE_GATE) == 10.0
        assert p.duration_us(Op.MEASURE) == 10.0
        assert p.duration_us(Op.MOVE) == 10.0
        assert p.duration_us(Op.SPLIT) == 0.1
        assert p.duration_us(Op.COOL) == 0.1

    def test_table1_future_failure_rates(self):
        p = future_params()
        assert p.failure_rate(Op.SINGLE_GATE) == 1.0e-8
        assert p.failure_rate(Op.DOUBLE_GATE) == 1.0e-7
        assert p.failure_rate(Op.MEASURE) == 1.0e-8
        assert p.failure_rate(Op.MOVE) == 1.0e-6

    def test_trap_region_geometry(self):
        p = future_params()
        assert p.trap_size_um == 5.0
        assert p.region_pitch_um == 50.0
        assert p.region_area_um2 == 2500.0

    def test_every_gate_fits_in_one_cycle(self):
        p = future_params()
        for op in Op:
            assert p.cycles(op) == 1


class TestNowParams:
    def test_now_is_slower_and_noisier(self):
        now, future = now_params(), future_params()
        for op in (Op.SINGLE_GATE, Op.DOUBLE_GATE, Op.MEASURE, Op.MOVE):
            assert now.failure_rate(op) > future.failure_rate(op)
        assert now.duration_us(Op.MEASURE) > future.duration_us(Op.MEASURE)

    def test_now_measure_takes_twenty_cycles(self):
        assert now_params().cycles(Op.MEASURE) == 20


class TestAverageFailureRate:
    def test_average_over_table1_entries(self):
        # Movement enters as Table 1 quotes it: per micrometer (5e-8),
        # not per region hop.
        p = future_params()
        expected = (1.0e-8 + 1.0e-7 + 1.0e-8 + 5.0e-8) / 4
        assert p.average_failure_rate() == pytest.approx(expected)

    def test_average_below_steane_threshold(self):
        # The premise of the whole study: components beat the threshold.
        assert future_params().average_failure_rate() < 7.5e-5


class TestScaled:
    def test_scaling_multiplies_failures_only(self):
        base = future_params()
        scaled = base.scaled("pessimistic", 10.0)
        assert scaled.name == "pessimistic"
        for op in Op:
            assert scaled.duration_us(op) == base.duration_us(op)
            assert scaled.failure_rate(op) == pytest.approx(
                10.0 * base.failure_rate(op)
            )

    def test_default_params_is_future(self):
        assert DEFAULT_PARAMS.name == "future"


class TestValidation:
    def test_memory_time_positive(self):
        assert future_params().memory_time_s > 0
        assert now_params().memory_time_s > 0
