"""Tests for the Monte Carlo logical-error-rate machinery."""

import pytest

from repro.ecc.bacon_shor import bacon_shor_code
from repro.ecc.montecarlo import (
    logical_error_rate,
    pseudo_threshold,
    sample_depolarizing,
)
from repro.ecc.steane import steane_code

import numpy as np


class TestSampling:
    def test_zero_rate_gives_identity(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert sample_depolarizing(7, 0.0, rng).is_identity()

    def test_full_rate_gives_full_weight(self):
        rng = np.random.default_rng(0)
        assert sample_depolarizing(5, 1.0, rng).weight == 5

    def test_rate_controls_expected_weight(self):
        rng = np.random.default_rng(1)
        weights = [sample_depolarizing(100, 0.1, rng).weight for _ in range(50)]
        assert 5 < sum(weights) / len(weights) < 15


class TestLogicalErrorRate:
    def test_noiseless_never_fails(self):
        result = logical_error_rate(steane_code(), 0.0, trials=50, seed=1)
        assert result.failures == 0
        assert result.logical_error_rate == 0.0

    def test_seed_reproducibility(self):
        a = logical_error_rate(steane_code(), 0.02, trials=300, seed=7)
        b = logical_error_rate(steane_code(), 0.02, trials=300, seed=7)
        assert a.failures == b.failures

    @pytest.mark.parametrize("code_fn", [steane_code, bacon_shor_code])
    def test_suppression_below_pseudothreshold(self, code_fn):
        code = code_fn()
        result = logical_error_rate(code, 0.002, trials=4000, seed=11)
        assert result.logical_error_rate < 0.002

    def test_quadratic_scaling_regime(self):
        # Distance 3: logical rate ~ c p^2, so decade steps in p give
        # roughly two decades in the logical rate.
        code = steane_code()
        hi = logical_error_rate(code, 0.03, trials=8000, seed=3)
        lo = logical_error_rate(code, 0.003, trials=8000, seed=3)
        assert lo.logical_error_rate < hi.logical_error_rate / 10

    def test_standard_error_positive(self):
        result = logical_error_rate(steane_code(), 0.05, trials=500, seed=5)
        assert result.standard_error > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            logical_error_rate(steane_code(), 1.5, trials=10)
        with pytest.raises(ValueError):
            logical_error_rate(steane_code(), 0.1, trials=0)


class TestPseudoThreshold:
    def test_in_plausible_band(self):
        # Code-capacity pseudo-threshold of distance-3 codes sits in the
        # percent range.
        value = pseudo_threshold(steane_code(), trials=2000, seed=9)
        assert 0.002 < value <= 0.2
