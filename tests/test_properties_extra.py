"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* circuit, schedule, or cache
reference stream — not just the paper's workloads.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import Gate, GateKind
from repro.circuits.isa import assemble, disassemble
from repro.ecc.pauli import Pauli
from repro.ecc.tableau import Tableau
from repro.sim.cache import LruCache, simulate_optimized
from repro.sim.scheduler import list_schedule


@st.composite
def circuits(draw, max_qubits=8, max_gates=25):
    """Random logical circuits over the full gate vocabulary."""
    n = draw(st.integers(min_value=3, max_value=max_qubits))
    n_gates = draw(st.integers(min_value=0, max_value=max_gates))
    gates = []
    for _ in range(n_gates):
        kind = draw(st.sampled_from([
            GateKind.X, GateKind.H, GateKind.CNOT, GateKind.TOFFOLI,
            GateKind.CPHASE,
        ]))
        qubits = tuple(draw(st.permutations(range(n)))[: kind.n_qubits])
        param = 2 if kind is GateKind.CPHASE else 0
        gates.append(Gate(kind, qubits, param=param))
    return Circuit(n_qubits=n, gates=gates)


class TestSchedulerProperties:
    @given(circuits(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, circuit, k):
        """Any resource-constrained schedule is bounded below by both
        the critical path and the work bound, and above by Brent's
        theorem (T_inf + W/k) for list scheduling."""
        capped = list_schedule(circuit, k)
        free = list_schedule(circuit, None)
        if not circuit.gates:
            assert capped.makespan == 0
            return
        assert capped.makespan >= free.makespan
        assert capped.makespan >= math.ceil(capped.busy / k)
        assert capped.makespan <= free.makespan + capped.busy  # loose Brent

    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_work_conserved(self, circuit):
        a = list_schedule(circuit, 2)
        b = list_schedule(circuit, None)
        assert a.busy == b.busy == circuit.total_ec_slots()

    @given(circuits(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_profile_never_exceeds_blocks(self, circuit, k):
        result = list_schedule(circuit, k, unit_time=True, keep_profile=True)
        if result.profile:
            assert max(result.profile) <= k

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_unlimited_equals_dag_critical_path(self, circuit):
        free = list_schedule(circuit, None)
        dag = CircuitDag.build(circuit)
        assert free.makespan == dag.critical_path_slots()


class TestIsaProperties:
    @given(circuits())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_circuit(self, circuit):
        if not circuit.gates:
            return
        restored = assemble(disassemble(circuit), n_qubits=circuit.n_qubits)
        assert restored.gates == circuit.gates


class TestCacheProperties:
    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_optimized_order_is_dependency_valid(self, circuit):
        if not circuit.gates:
            return
        result = simulate_optimized(circuit, capacity=3)
        position = {idx: pos for pos, idx in enumerate(result.order)}
        dag = CircuitDag.build(circuit)
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert position[p] < position[i]

    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=80),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50)
    def test_lru_hit_iff_recently_used(self, refs, capacity):
        """LRU semantics: a reference hits iff the distinct-reference
        distance since its last use is within capacity."""
        cache = LruCache(capacity)
        history = []
        for q in refs:
            if q in history:
                since = history[history.index(q) + 1:]
                expected_hit = len(set(since)) < capacity
            else:
                expected_hit = False
            assert cache.access(q) == expected_hit
            if q in history:
                history.remove(q)
            history.append(q)


class TestTableauProperties:
    @given(st.integers(min_value=0, max_value=2 ** 5 - 1))
    @settings(max_examples=30)
    def test_basis_state_preparation(self, value):
        """X gates prepare exactly the requested computational state."""
        t = Tableau(5, seed=0)
        for q in range(5):
            if (value >> q) & 1:
                t.x_gate(q)
        measured = sum(t.measure(q) << q for q in range(5))
        assert measured == value

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=20)
    def test_stabilizer_rows_commute(self, seed):
        from repro.ecc.steane import encoder_circuit

        t = Tableau(7, seed=seed)
        t.apply(encoder_circuit())
        rows = [t.stabilizer_row(i) for i in range(7)]
        for i, a in enumerate(rows):
            for b in rows[i + 1:]:
                assert a.commutes_with(b)


class TestPauliTableauConsistency:
    @given(st.integers(min_value=0, max_value=6),
           st.sampled_from(["X", "Y", "Z"]))
    @settings(max_examples=30, deadline=None)
    def test_syndromes_agree_between_formalisms(self, qubit, kind):
        """The algebraic syndrome and the tableau-measured syndrome of
        any single-qubit error agree on the Steane code."""
        from repro.ecc.steane import encoder_circuit, steane_code

        code = steane_code()
        error = Pauli.single(7, qubit, kind)
        t = Tableau(7, seed=0)
        t.apply(encoder_circuit())
        t.apply_pauli(error)
        for stab, expected in zip(code.stabilizers, code.syndrome(error)):
            assert t.measure_observable(stab) == expected
