"""Tests for the CQLA core: design points, hierarchy, fidelity, metrics."""

import pytest

from repro.analysis import paper_values
from repro.core.cqla import CqlaDesign
from repro.core.design_space import (
    PAPER_BLOCK_CHOICES,
    block_choices,
    hierarchy_sweep,
    performance_blocks,
    specialization_sweep,
)
from repro.core.fidelity import FidelityBudget, application_kq
from repro.core.hierarchy import (
    DEFAULT_POLICY,
    HierarchyPolicy,
    MemoryHierarchy,
)
from repro.core.metrics import DesignMetrics, gain_product, utilization_efficiency


class TestCqlaDesign:
    def test_validation(self):
        with pytest.raises(ValueError):
            CqlaDesign("surface", 64, 9)
        with pytest.raises(ValueError):
            CqlaDesign("steane", 1, 9)
        with pytest.raises(ValueError):
            CqlaDesign("steane", 64, 0)

    def test_gain_product_is_area_times_speedup(self):
        d = CqlaDesign("bacon_shor", 64, 16)
        assert d.gain_product() == pytest.approx(
            d.area_reduction() * d.speedup()
        )

    def test_area_reduction_always_above_three(self):
        for code in ("steane", "bacon_shor"):
            for n, k in ((32, 9), (256, 49), (1024, 121)):
                assert CqlaDesign(code, n, k).area_reduction() > 3.0

    def test_bacon_shor_triple_speed_of_steane(self):
        st = CqlaDesign("steane", 64, 16)
        bs = CqlaDesign("bacon_shor", 64, 16)
        ratio = bs.speedup() / st.speedup()
        assert ratio == pytest.approx(2.94, rel=0.05)

    def test_more_blocks_never_slower(self):
        slow = CqlaDesign("steane", 256, 36)
        fast = CqlaDesign("steane", 256, 49)
        assert fast.speedup() >= slow.speedup()

    def test_modexp_time_scaling(self):
        d = CqlaDesign("bacon_shor", 64, 16)
        assert d.modexp_time_s() > 100 * d.adder_time_s()


class TestTable4Agreement:
    @pytest.mark.parametrize("code", ["steane", "bacon_shor"])
    @pytest.mark.parametrize("n_bits,n_blocks", [
        (32, 4), (64, 9), (64, 16), (128, 25), (256, 49), (512, 81),
    ])
    def test_speedup_within_15_percent(self, code, n_bits, n_blocks):
        design = CqlaDesign(code, n_bits, n_blocks)
        paper = paper_values.TABLE4[(n_bits, n_blocks, code)][1]
        assert design.speedup() == pytest.approx(paper, rel=0.15)

    @pytest.mark.parametrize("code", ["steane", "bacon_shor"])
    @pytest.mark.parametrize("n_bits,n_blocks", [
        (32, 4), (64, 9), (128, 16), (256, 49), (512, 81),
    ])
    def test_area_reduction_within_30_percent(self, code, n_bits, n_blocks):
        design = CqlaDesign(code, n_bits, n_blocks)
        paper = paper_values.TABLE4[(n_bits, n_blocks, code)][0]
        assert design.area_reduction() == pytest.approx(paper, rel=0.30)

    def test_bacon_shor_to_steane_area_ratio(self):
        # The code ratio is a pure tile-area ratio: ~3.4/2.4.
        st = CqlaDesign("steane", 512, 81)
        bs = CqlaDesign("bacon_shor", 512, 81)
        assert bs.area_reduction() / st.area_reduction() == pytest.approx(
            1.41, rel=0.05
        )


class TestHierarchyPolicy:
    def test_default_is_one_to_two(self):
        assert DEFAULT_POLICY.l1_additions == 1
        assert DEFAULT_POLICY.l2_additions == 2
        assert DEFAULT_POLICY.l1_fraction == pytest.approx(1 / 3)

    def test_adder_speedup_composition(self):
        # S = S2 (S1 + 2) / 3 — verified against the paper's own rows:
        # Bacon-Shor 512-bit, 10 transfers: S1=9.61, S2=2.28 -> 8.82.
        s = DEFAULT_POLICY.adder_speedup(9.61, 2.28)
        assert s == pytest.approx(8.82, abs=0.01)

    def test_reproduces_most_published_cells(self):
        matched = 0
        for (code, par, n), row in paper_values.TABLE5.items():
            s1, s2, s_adder = row[0], row[1], row[2]
            composed = DEFAULT_POLICY.adder_speedup(s1, s2)
            if abs(composed - s_adder) / s_adder < 0.02:
                matched += 1
        assert matched >= 10  # 10 of 12 cells within 2%

    def test_all_l2_policy(self):
        policy = HierarchyPolicy(l1_additions=0, l2_additions=1)
        assert policy.adder_speedup(10.0, 2.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyPolicy(l1_additions=-1)
        with pytest.raises(ValueError):
            HierarchyPolicy(l1_additions=0, l2_additions=0)
        with pytest.raises(ValueError):
            DEFAULT_POLICY.adder_speedup(0.0, 1.0)


class TestMemoryHierarchy:
    @pytest.fixture(scope="class")
    def hierarchy(self):
        return MemoryHierarchy(
            CqlaDesign("bacon_shor", 64, 16), parallel_transfers=10
        )

    def test_l1_speedup_large(self, hierarchy):
        assert hierarchy.l1_speedup() > 3.0

    def test_adder_speedup_between_l2_and_l1(self, hierarchy):
        s = hierarchy.adder_speedup()
        assert hierarchy.l2_speedup() < s

    def test_gain_product_exceeds_specialization_alone(self, hierarchy):
        assert hierarchy.gain_product() > hierarchy.design.gain_product()

    def test_policy_is_safe(self, hierarchy):
        assert hierarchy.policy_is_safe()

    def test_l1_time_fraction_small(self, hierarchy):
        # "only a few percent of the total execution time in level 1".
        assert hierarchy.l1_time_fraction() < 0.05

    def test_area_with_hierarchy_slightly_lower_reduction(self, hierarchy):
        assert hierarchy.area_reduction() < hierarchy.design.area_reduction()

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(CqlaDesign("steane", 64, 16), parallel_transfers=0)


class TestFidelity:
    def test_kq_formula(self):
        kq = application_kq(64, adder_slots=400)
        from repro.circuits.modexp import serial_adder_depth
        assert kq == serial_adder_depth(64) * 400 * 320

    def test_budget_inverse_of_kq(self):
        b = FidelityBudget("steane", 64, adder_slots=400)
        assert b.budget_per_op == pytest.approx(1.0 / b.kq)

    def test_level2_meets_shor_1024_budget(self):
        b = FidelityBudget("steane", 1024, adder_slots=650)
        assert b.required_level() <= 2
        assert b.failure_rate(2) < b.budget_per_op

    def test_l1_fraction_in_unit_interval(self):
        b = FidelityBudget("bacon_shor", 1024, adder_slots=650)
        f = b.max_l1_op_fraction()
        assert 0.0 <= f <= 1.0

    def test_one_third_policy_safe_for_study_sizes(self):
        for code in ("steane", "bacon_shor"):
            for n in (256, 1024):
                b = FidelityBudget(code, n, adder_slots=650)
                assert b.policy_is_safe(1.0 / 3.0)

    def test_time_fraction_much_smaller_than_op_fraction(self):
        b = FidelityBudget("steane", 256, adder_slots=500)
        assert b.l1_time_fraction(1 / 3) < 0.05

    def test_time_fraction_validation(self):
        b = FidelityBudget("steane", 256, adder_slots=500)
        with pytest.raises(ValueError):
            b.l1_time_fraction(1.5)

    def test_adder_slots_validated(self):
        with pytest.raises(ValueError):
            application_kq(64, adder_slots=0)


class TestDesignSpace:
    def test_paper_block_choices_preserved(self):
        for n, pair in PAPER_BLOCK_CHOICES.items():
            assert block_choices(n) == pair

    def test_fallback_is_square_pair(self):
        import math

        k1, k2 = block_choices(200)
        assert math.isqrt(k1) ** 2 == k1
        assert math.isqrt(k2) ** 2 == k2
        assert k2 > k1

    def test_performance_blocks(self):
        assert performance_blocks(256) == 49

    def test_specialization_sweep_shape(self):
        rows = specialization_sweep(sizes=(32, 64))
        assert len(rows) == 2 * 2 * 2  # sizes x block choices x codes

    def test_hierarchy_sweep_shape(self):
        rows = hierarchy_sweep(sizes=(64,), transfer_options=(5,))
        assert len(rows) == 2
        for row in rows:
            assert row.l1_speedup > 1.0
            assert row.gain_product > row.area_reduction


class TestMetrics:
    def test_gain_product(self):
        assert gain_product(10.0, 2.0) == 20.0
        with pytest.raises(ValueError):
            gain_product(0.0, 1.0)

    def test_design_metrics_bundle(self):
        m = DesignMetrics(area_reduction=5.0, speedup=2.0)
        assert m.gain_product == 10.0

    def test_utilization_efficiency(self):
        assert utilization_efficiency(0.5, 2.0) == 1.0
        with pytest.raises(ValueError):
            utilization_efficiency(1.5, 1.0)
        with pytest.raises(ValueError):
            utilization_efficiency(0.5, 0.0)
