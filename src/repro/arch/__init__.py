"""Architecture layer: tiles, regions, QLA baseline, interconnect.

This package owns the machine's floor: :mod:`repro.arch.tile` sizes
the per-qubit sites, :mod:`repro.arch.regions` composes them into
memory/compute/cache regions and the :class:`CqlaFloorplan` (whose
level-1 region may sit in a different code family than memory —
``l1_code_key`` — with the transfer ports priced from both endpoint
encodings), :mod:`repro.arch.qla` is the homogeneous baseline the
gains are measured against, and :mod:`repro.arch.interconnect` /
:mod:`repro.arch.bandwidth` model teleportation channels, the mesh
all-to-all and the superblock perimeter-bandwidth crossover of
Figure 6b.  Areas and channel counts live here; timing lives in
:mod:`repro.sim`.
"""

from .bandwidth import (
    BandwidthPoint,
    bandwidth_available,
    bandwidth_required,
    draper_demand_per_block,
    optimal_superblock_size,
    sweep,
    worst_case_demand_per_block,
)
from .interconnect import (
    MeshAllToAll,
    TeleportChannel,
    logical_teleport_time_s,
    teleport_time_by_key,
)
from .qla import QlaMachine
from .regions import (
    CACHE_CAPACITY_FACTOR,
    CacheRegion,
    ComputeRegion,
    CqlaFloorplan,
    MemoryRegion,
)
from .tile import (
    SiteAreas,
    cache_site_mm2,
    compute_block_mm2,
    memory_site_mm2,
    qla_site_mm2,
    qubit_tile_mm2,
    site_areas,
)

__all__ = [
    "BandwidthPoint",
    "CACHE_CAPACITY_FACTOR",
    "CacheRegion",
    "ComputeRegion",
    "CqlaFloorplan",
    "MemoryRegion",
    "MeshAllToAll",
    "QlaMachine",
    "SiteAreas",
    "TeleportChannel",
    "bandwidth_available",
    "bandwidth_required",
    "cache_site_mm2",
    "compute_block_mm2",
    "draper_demand_per_block",
    "logical_teleport_time_s",
    "memory_site_mm2",
    "optimal_superblock_size",
    "qla_site_mm2",
    "qubit_tile_mm2",
    "site_areas",
    "sweep",
    "teleport_time_by_key",
    "worst_case_demand_per_block",
]
