"""Site-level area models for QLA and CQLA regions (Sections 2, 3, 5.1).

A *site* is the floorplan footprint of one logical data qubit including
its share of ancilla qubits, interconnect channels and teleportation
support.  The regions differ exactly as the paper describes:

* **QLA site** (the baseline, Section 2): one data qubit accompanied by
  two logical ancilla qubits (the 1:2 ratio that maximizes EC speed),
  a teleportation island, and wide repeater channels on all sides.
* **CQLA memory site** (Section 3.2): eight data qubits share one
  logical ancilla (8:1), with narrow channels — idle qubits tolerate
  longer EC intervals, so memory is optimized for density.
* **CQLA compute block** (Section 3.2): nine data + eighteen ancilla
  logical qubits (1:2 again) with a fast interconnect whose channel area
  roughly doubles the block footprint.
* **Cache site** (Section 3.3): identical ratios to compute, but at the
  lower encoding level.

The channel-overhead constants below are the calibration points
documented in DESIGN.md: they are fixed once against the published QLA
compression numbers and never tuned per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ecc.concatenated import ConcatenatedCode, by_key, steane_concatenated

#: Logical ancilla qubits per data qubit in QLA and in CQLA compute.
QLA_ANCILLA_PER_DATA = 2

#: Teleportation-island footprint per QLA site, in logical-tile units
#: (EPR generation, purification and routing ancilla).
QLA_ISLAND_TILES = 2.0

#: Fractional channel overhead of a QLA site: the repeater-based
#: interconnect wraps every tile in multi-qubit-wide lanes.  Calibrated
#: so a Steane QLA site is ~59 mm^2, putting the 1024-bit QLA machine at
#: ~0.3 m^2, the scale the paper calls "approximately 1 m^2".
QLA_CHANNEL_OVERHEAD = 2.44

#: CQLA memory: data qubits per shared logical ancilla (the 8:1 ratio).
MEMORY_DATA_PER_ANCILLA = 8

#: Fractional channel overhead inside the memory region (narrow
#: teleport lanes between dense tile rows).
MEMORY_CHANNEL_OVERHEAD = 0.25

#: Logical data qubits per CQLA compute block (Figure 3a).
COMPUTE_DATA_QUBITS = 9

#: Logical ancilla qubits per CQLA compute block (1:2 ratio).
COMPUTE_ANCILLA_QUBITS = 18

#: Fractional channel overhead of a compute block: the fast interconnect
#: and EPR supply roughly double the block footprint.
COMPUTE_CHANNEL_OVERHEAD = 1.0


@dataclass(frozen=True)
class SiteAreas:
    """Resolved per-site areas (mm^2) for one code at one level."""

    code_key: str
    level: int
    qubit_tile_mm2: float
    qla_site_mm2: float
    memory_site_mm2: float
    compute_block_mm2: float


def qubit_tile_mm2(code: ConcatenatedCode, level: int) -> float:
    """Area of one logical qubit tile."""
    return code.qubit_area_mm2(level)


def qla_site_mm2(level: int = 2) -> float:
    """Area of one QLA logical-qubit site (always the Steane baseline).

    The paper compares all results against its prior QLA design, which
    used only the Steane code.
    """
    tile = steane_concatenated().qubit_area_mm2(level)
    tiles = 1 + QLA_ANCILLA_PER_DATA + QLA_ISLAND_TILES
    return tiles * tile * (1.0 + QLA_CHANNEL_OVERHEAD)


def memory_site_mm2(code: ConcatenatedCode, level: int = 2) -> float:
    """Memory-region area per stored logical data qubit."""
    tile = code.qubit_area_mm2(level)
    tiles = 1.0 + 1.0 / MEMORY_DATA_PER_ANCILLA
    return tiles * tile * (1.0 + MEMORY_CHANNEL_OVERHEAD)


def compute_block_mm2(code: ConcatenatedCode, level: int = 2) -> float:
    """Area of one compute block (9 data + 18 ancilla qubits)."""
    tile = code.qubit_area_mm2(level)
    tiles = COMPUTE_DATA_QUBITS + COMPUTE_ANCILLA_QUBITS
    return tiles * tile * (1.0 + COMPUTE_CHANNEL_OVERHEAD)


def cache_site_mm2(code: ConcatenatedCode, level: int = 1) -> float:
    """Cache area per cached logical qubit (compute ratios, level 1)."""
    tile = code.qubit_area_mm2(level)
    tiles = 1 + QLA_ANCILLA_PER_DATA
    return tiles * tile * (1.0 + COMPUTE_CHANNEL_OVERHEAD)


def site_areas(code_key: str, level: int = 2) -> SiteAreas:
    """Bundle of the per-site areas for one code."""
    code = by_key(code_key)
    return SiteAreas(
        code_key=code_key,
        level=level,
        qubit_tile_mm2=qubit_tile_mm2(code, level),
        qla_site_mm2=qla_site_mm2(level),
        memory_site_mm2=memory_site_mm2(code, level),
        compute_block_mm2=compute_block_mm2(code, level),
    )
