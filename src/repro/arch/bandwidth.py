"""Superblock perimeter-bandwidth analysis (Figure 6b, Section 5.1).

Compute blocks gang into *superblocks* to exploit locality.  A square
superblock of ``s`` blocks exposes ``4 * sqrt(s)`` block edges of
perimeter, each carrying a fixed number of teleportation channels; its
demand grows linearly with ``s``.  The paper finds the curves cross at
36 blocks per superblock, independent of the error-correcting code —
which holds automatically when both sides are expressed in transfers per
EC period, the natural clock of the machine.

Demand constants derive from the Toffoli traffic analysis of Section 6:
nine logical qubits flow per fault-tolerant Toffoli (operands, ancilla
and cat-state qubits), each in and out of the superblock, plus roughly
one interleaved CNOT's operand pair, spread over the fifteen gate-EC
periods a Toffoli occupies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..circuits.gates import TOFFOLI_TRAFFIC_QUBITS

#: Teleportation channels per compute-block edge on the superblock
#: perimeter (Section 6.1 sizes two channels as adequate).
EDGE_CHANNELS = 2

#: Transfers one channel completes per EC period (a communication step
#: costs about one gate period, Section 6).
TRANSFERS_PER_CHANNEL_PER_PERIOD = 1.0

#: Gate-EC periods per fault-tolerant Toffoli.
TOFFOLI_PERIODS = 15


def draper_demand_per_block() -> float:
    """Transfers per block per EC period for the Draper adder.

    Nine Toffoli qubits round-trip (in and out) plus one CNOT operand
    pair per Toffoli interval, amortized over the fifteen periods.
    """
    per_toffoli = 2 * TOFFOLI_TRAFFIC_QUBITS + 2
    return per_toffoli / TOFFOLI_PERIODS


def worst_case_demand_per_block() -> float:
    """Transfers per block per period with no locality at all.

    Every one of the nine data qubits of the block is replaced (in and
    out) every shortest-gate interval of five periods — the pattern of
    back-to-back uncorrelated two-qubit gates.
    """
    return 2 * TOFFOLI_TRAFFIC_QUBITS / 5.0


def bandwidth_available(n_blocks: int) -> float:
    """Perimeter transfer capacity of an ``n_blocks`` superblock."""
    if n_blocks < 1:
        raise ValueError("superblock needs at least one block")
    edges = 4.0 * math.sqrt(n_blocks)
    return edges * EDGE_CHANNELS * TRANSFERS_PER_CHANNEL_PER_PERIOD


def bandwidth_required(n_blocks: int, per_block_demand: float = None) -> float:
    """Aggregate demand of ``n_blocks`` busy compute blocks."""
    if n_blocks < 1:
        raise ValueError("superblock needs at least one block")
    if per_block_demand is None:
        per_block_demand = draper_demand_per_block()
    return n_blocks * per_block_demand


@dataclass(frozen=True)
class BandwidthPoint:
    """One x-axis sample of the Figure 6b study."""

    n_blocks: int
    available: float
    required_draper: float
    required_worst_case: float


def sweep(block_counts: Sequence[int]) -> List[BandwidthPoint]:
    """Evaluate all three Figure 6b curves over block counts."""
    return [
        BandwidthPoint(
            n_blocks=s,
            available=bandwidth_available(s),
            required_draper=bandwidth_required(s),
            required_worst_case=bandwidth_required(
                s, worst_case_demand_per_block()
            ),
        )
        for s in block_counts
    ]


def optimal_superblock_size() -> int:
    """Largest superblock whose perimeter still feeds its blocks.

    Solves ``available(s) >= required(s)``: with demand ``r`` per block
    and ``E`` channels per edge the crossover is ``(4E/r)**2``.
    """
    r = draper_demand_per_block()
    crossover = (4.0 * EDGE_CHANNELS * TRANSFERS_PER_CHANNEL_PER_PERIOD / r) ** 2
    return int(math.floor(crossover + 1e-9))
