"""Teleportation interconnect and mesh communication (Sections 2, 6).

All quantum data must physically move (no-cloning), so the QLA/CQLA
interconnect teleports logical qubits between regions over pre-purified
EPR channels.  The paper's key observation (Section 6) is that a single
communication step "does not take longer than the computation of a
single gate", because every logical gate is followed by an error
correction: the teleportation's Bell measurement and Pauli-frame fix are
cheap, and the receiving side's EC dominates — so a logical hop costs
roughly one EC period plus a transversal measurement sweep.

For the QFT's all-to-all personalized traffic we model the CQLA mesh
with the near-optimal pipelined all-port schedule of Yang & Wang [37]:
an all-to-all personalized exchange on a ``k x k`` mesh of superblocks
completes in about ``p*k/4 + o(pk)`` phases for ``p`` resident qubits
per node, which we expose alongside the serial message total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ecc.concatenated import ConcatenatedCode, by_key
from ..physical.params import CYCLE_TIME_US

#: Ion-qubits that can cross a channel junction concurrently (the
#: two-ion trapping regions of Figure 1 give a two-wide lane).
CHANNEL_WIDTH_IONS = 2

#: Fundamental cycles per physical teleportation: the Bell measurement
#: (one two-qubit gate + measurement) and the classically conditioned
#: Pauli fix.
PHYSICAL_TELEPORT_CYCLES = 4


def logical_teleport_time_s(code: ConcatenatedCode, level: int) -> float:
    """Latency of teleporting one logical qubit between regions.

    EPR distribution and purification are pipelined ahead of demand and
    hidden; the exposed cost is the transversal Bell measurement on the
    ``n**level`` data ions (two at a time per channel) plus the error
    correction that re-establishes the code at the destination.
    """
    sweeps = math.ceil(code.data_ions(level) / CHANNEL_WIDTH_IONS)
    bsm_s = sweeps * PHYSICAL_TELEPORT_CYCLES * CYCLE_TIME_US / 1.0e6
    return code.ec_time_s(level) + bsm_s


def teleport_time_by_key(code_key: str, level: int) -> float:
    return logical_teleport_time_s(by_key(code_key), level)


@dataclass(frozen=True)
class MeshAllToAll:
    """All-to-all personalized exchange on a mesh of superblocks.

    ``nodes`` superblocks arranged as a near-square mesh, each holding
    ``qubits_per_node`` logical qubits; every ordered node pair exchanges
    personalized qubit traffic (the QFT pattern).
    """

    nodes: int
    qubits_per_node: int

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.qubits_per_node < 1:
            raise ValueError("mesh needs positive nodes and payload")

    @property
    def side(self) -> int:
        return max(1, math.isqrt(self.nodes - 1) + 1)

    @property
    def total_messages(self) -> int:
        """Ordered-pair personalized messages (one qubit each)."""
        return self.nodes * (self.nodes - 1) * self.qubits_per_node

    def schedule_phases(self) -> int:
        """Pipelined all-port schedule length in hop phases.

        Yang & Wang's pipelined all-to-all on a ``k x k`` all-port mesh
        needs about ``p * k / 4`` phases plus lower-order terms; we take
        the ceiling and add the mesh diameter as pipeline fill.
        """
        k = self.side
        fill = 2 * (k - 1)
        return math.ceil(self.qubits_per_node * self.nodes * k / 4) + fill

    def exchange_time_s(self, hop_time_s: float) -> float:
        """Wall-clock of the pipelined exchange given per-hop latency."""
        if hop_time_s <= 0:
            raise ValueError("hop time must be positive")
        return self.schedule_phases() * hop_time_s


@dataclass(frozen=True)
class TeleportChannel:
    """A point-to-point logical channel between two regions."""

    code_key: str
    level: int

    @property
    def hop_time_s(self) -> float:
        return teleport_time_by_key(self.code_key, self.level)

    def batch_time_s(self, n_qubits: int, lanes: int = 1) -> float:
        """Move ``n_qubits`` over ``lanes`` parallel channel lanes."""
        if n_qubits < 0:
            raise ValueError("qubit count cannot be negative")
        if lanes < 1:
            raise ValueError("need at least one lane")
        if n_qubits == 0:
            return 0.0
        waves = math.ceil(n_qubits / lanes)
        return waves * self.hop_time_s
