"""The homogeneous QLA baseline (Section 2, prior work [1]).

The Quantum Logic Array is the sea-of-qubits design the CQLA is measured
against: every logical data qubit carries its own pair of logical
ancilla qubits (1:2), sits in a tiled array with teleportation islands,
and may compute at full EC speed anywhere — maximal parallelism at
maximal area.  It uses the Steane code at level 2 throughout.

The QLA's gain product is the unit against which Tables 4 and 5 report:
``GP = (Area_QLA * AdderTime_QLA) / (Area_CQLA * AdderTime_CQLA)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..circuits.modexp import modexp_logical_qubits, serial_adder_depth
from ..ecc.concatenated import steane_concatenated
from . import tile


@dataclass(frozen=True)
class QlaMachine:
    """A QLA instance sized for an ``n_bits`` modular exponentiation."""

    n_bits: int
    level: int = 2

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("QLA instance needs at least 2 bits")

    @property
    def logical_qubits(self) -> int:
        return modexp_logical_qubits(self.n_bits)

    def area_mm2(self) -> float:
        return self.logical_qubits * tile.qla_site_mm2(self.level)

    def area_m2(self) -> float:
        return self.area_mm2() / 1.0e6

    def logical_op_time_s(self) -> float:
        return steane_concatenated().logical_op_time_s(self.level)

    def adder_time_s(self) -> float:
        """Adder latency at maximal parallelism: the critical path."""
        return self._adder_critical_slots(self.n_bits) * self.logical_op_time_s()

    def modexp_time_s(self) -> float:
        """Serial adder depth times the adder latency."""
        return serial_adder_depth(self.n_bits) * self.adder_time_s()

    @staticmethod
    @lru_cache(maxsize=None)
    def _adder_critical_slots(n_bits: int) -> int:
        from ..sim.scheduler import adder_critical_slots

        return adder_critical_slots(n_bits)

    def gain_product(self) -> float:
        """The QLA's gain product against itself — identically 1."""
        return 1.0
