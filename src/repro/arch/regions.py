"""CQLA regions and floorplan (Section 3, Figure 3).

The CQLA specializes the homogeneous QLA into a dense **memory** region,
a set of **compute blocks** (optionally grouped into superblocks), and —
in the full hierarchy — a level-1 **cache** plus level-1 compute region
connected through the code-transfer network.  This module provides the
region dataclasses and the floorplan that sums their areas; timing lives
in the simulators and :mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..ecc.concatenated import by_key
from ..ecc.transfer import TransferNetwork
from . import tile
from .bandwidth import optimal_superblock_size


@dataclass(frozen=True)
class MemoryRegion:
    """Dense storage: 8 data qubits per logical ancilla, level 2."""

    code_key: str
    data_qubits: int
    level: int = 2

    def __post_init__(self) -> None:
        if self.data_qubits < 1:
            raise ValueError("memory must store at least one qubit")

    @property
    def ancilla_qubits(self) -> int:
        return math.ceil(self.data_qubits / tile.MEMORY_DATA_PER_ANCILLA)

    @property
    def logical_qubits(self) -> int:
        return self.data_qubits + self.ancilla_qubits

    def area_mm2(self) -> float:
        code = by_key(self.code_key)
        return self.data_qubits * tile.memory_site_mm2(code, self.level)

    def ec_wait_budget_s(self) -> float:
        """How long a memory qubit may idle between error corrections.

        Idle qubits only decohere against the trap memory time; a safe
        EC interval is a small fraction of it (we use 1%), which is still
        orders of magnitude longer than the EC procedure itself — the
        slack that permits the 8:1 ancilla sharing.
        """
        code = by_key(self.code_key)
        return 0.01 * code.params.memory_time_s


@dataclass(frozen=True)
class ComputeRegion:
    """A bank of compute blocks at one encoding level."""

    code_key: str
    n_blocks: int
    level: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError("need at least one compute block")

    @property
    def data_qubits(self) -> int:
        return self.n_blocks * tile.COMPUTE_DATA_QUBITS

    @property
    def ancilla_qubits(self) -> int:
        return self.n_blocks * tile.COMPUTE_ANCILLA_QUBITS

    @property
    def logical_qubits(self) -> int:
        return self.data_qubits + self.ancilla_qubits

    def area_mm2(self) -> float:
        code = by_key(self.code_key)
        return self.n_blocks * tile.compute_block_mm2(code, self.level)

    def superblocks(self) -> int:
        """Number of superblocks when grouped at the optimal size."""
        return max(1, math.ceil(self.n_blocks / optimal_superblock_size()))

    def logical_op_time_s(self) -> float:
        code = by_key(self.code_key)
        return code.logical_op_time_s(self.level)


@dataclass(frozen=True)
class CacheRegion:
    """Level-1 cache: compute-style sites at the fast encoding level.

    ``capacity`` counts logical data qubits; the paper studies capacities
    of 1x, 1.5x and 2x the level-1 compute region and settles on 2x.
    """

    code_key: str
    capacity: int
    level: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache needs capacity for at least one qubit")

    def area_mm2(self) -> float:
        code = by_key(self.code_key)
        return self.capacity * tile.cache_site_mm2(code, self.level)


#: Paper-standard cache capacity: twice the compute-region qubit count.
CACHE_CAPACITY_FACTOR = 2.0


@dataclass(frozen=True)
class CqlaFloorplan:
    """A complete CQLA instance.

    ``l1_blocks=0`` gives the Table 4 configuration (specialization
    only); a positive value adds the level-1 compute region, cache and
    transfer network of Table 5.

    ``l1_code_key`` optionally encodes the level-1 compute region and
    cache in a *different* code family than the memory and level-2
    compute (``None`` keeps the paper's one-code floorplan).  The
    transfer network between the regions is then cross-code: both of
    its endpoints route through the Table 3 latency model, and each
    transfer port parks one qubit of each endpoint encoding.
    """

    code_key: str
    memory_qubits: int
    l2_blocks: int
    l1_blocks: int = 0
    cache_factor: float = CACHE_CAPACITY_FACTOR
    parallel_transfers: int = 10
    l1_code_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.memory_qubits < 1:
            raise ValueError("floorplan needs memory")
        if self.l2_blocks < 1:
            raise ValueError("floorplan needs level-2 compute blocks")
        if self.l1_blocks < 0:
            raise ValueError("level-1 block count cannot be negative")
        if self.cache_factor <= 0:
            raise ValueError("cache factor must be positive")
        if self.l1_code_key is not None:
            by_key(self.l1_code_key)  # validates the key
            if self.l1_code_key == self.code_key:
                # Normalize: a same-code floorplan compares (and
                # hashes) equal whether the L1 code was spelled out or
                # not, matching TransferNetwork and MemoryHierarchy.
                object.__setattr__(self, "l1_code_key", None)

    @property
    def effective_l1_code_key(self) -> str:
        """The level-1 region's code family (memory's unless overridden)."""
        return self.l1_code_key or self.code_key

    # -- regions --------------------------------------------------------
    @property
    def memory(self) -> MemoryRegion:
        return MemoryRegion(self.code_key, self.memory_qubits)

    @property
    def l2_compute(self) -> ComputeRegion:
        return ComputeRegion(self.code_key, self.l2_blocks, level=2)

    @property
    def l1_compute(self) -> Optional[ComputeRegion]:
        if self.l1_blocks == 0:
            return None
        return ComputeRegion(self.effective_l1_code_key, self.l1_blocks,
                             level=1)

    @property
    def cache(self) -> Optional[CacheRegion]:
        l1 = self.l1_compute
        if l1 is None:
            return None
        capacity = math.ceil(self.cache_factor * l1.data_qubits)
        return CacheRegion(self.effective_l1_code_key, capacity)

    @property
    def transfer_network(self) -> Optional[TransferNetwork]:
        if self.l1_blocks == 0:
            return None
        return TransferNetwork(
            code_key=self.effective_l1_code_key,
            parallel_transfers=self.parallel_transfers,
            memory_code_key=self.code_key,
        )

    # -- area -----------------------------------------------------------
    def transfer_area_mm2(self) -> float:
        """Footprint of the code-transfer ports: each concurrent transfer
        parks one memory-side (level-2) and one cache-side (level-1)
        qubit, each in its own region's encoding."""
        if self.l1_blocks == 0:
            return 0.0
        memory_code = by_key(self.code_key)
        l1_code = by_key(self.effective_l1_code_key)
        per_port = memory_code.qubit_area_mm2(2) + l1_code.qubit_area_mm2(1)
        return self.parallel_transfers * per_port

    def area_mm2(self) -> float:
        total = self.memory.area_mm2() + self.l2_compute.area_mm2()
        l1 = self.l1_compute
        if l1 is not None:
            total += l1.area_mm2()
            total += self.cache.area_mm2()
            total += self.transfer_area_mm2()
        return total

    def area_m2(self) -> float:
        return self.area_mm2() / 1.0e6
