"""The quantum memory hierarchy (Sections 3.3, 5.2; Table 5).

Adds the level-1 cache and compute region to a CQLA design.  Modular
exponentiation is a stream of additions; to preserve system fidelity the
paper interleaves **one level-1 addition for every two level-2
additions** (the level-1 share of *time* then stays in the low percent
range).  Per-addition speedups compose as their workload average:
additions running at level 1 gain ``S1`` (hierarchy) on top of ``S2``
(code/specialization), the rest gain ``S2``:

``S_adder = (S1 * S2 + 2 * S2) / 3 = S2 * (S1 + 2) / 3``

which is the composition that reproduces the published Table 5 adder
speedups from its own L1/L2 columns (10 of 12 cells within 2%).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from ..ecc.concatenated import by_key
from ..sim.hierarchy_sim import HierarchyRunResult, simulate_l1_run
from ..sim.levels import HierarchyStack, mixed_stack, two_level_stack
from ..sim.policies import validate_policy
from ..sim.prefetch import validate_prefetcher
from .cqla import CqlaDesign
from .fidelity import FidelityBudget
from .metrics import DesignMetrics


@dataclass(frozen=True)
class HierarchyPolicy:
    """Interleaving ratio between level-1 and level-2 additions."""

    l1_additions: int = 1
    l2_additions: int = 2

    def __post_init__(self) -> None:
        if self.l1_additions < 0 or self.l2_additions < 0:
            raise ValueError("addition counts cannot be negative")
        if self.l1_additions + self.l2_additions == 0:
            raise ValueError("policy must schedule at least one addition")

    @property
    def l1_fraction(self) -> float:
        total = self.l1_additions + self.l2_additions
        return self.l1_additions / total

    def adder_speedup(self, l1_speedup: float, l2_speedup: float) -> float:
        """Average per-addition speedup under the interleave."""
        if l1_speedup <= 0 or l2_speedup <= 0:
            raise ValueError("speedups must be positive")
        total = self.l1_additions + self.l2_additions
        weighted = (
            self.l1_additions * l1_speedup * l2_speedup
            + self.l2_additions * l2_speedup
        )
        return weighted / total


#: The paper's fidelity-driven default: one L1 add per two L2 adds.
DEFAULT_POLICY = HierarchyPolicy(l1_additions=1, l2_additions=2)


@dataclass(frozen=True)
class MemoryHierarchy:
    """A CQLA design extended with the level-1 cache hierarchy.

    ``eviction_policy`` selects the level-1 replacement policy from the
    :mod:`repro.sim.policies` registry; the default ``"lru"`` is the
    paper's configuration and runs through the memoized Table 5
    compatibility path.  ``prefetch`` selects a
    :mod:`repro.sim.prefetch` prefetcher; anything but ``"none"``
    simulates on the split-transaction transfer model with exact
    prefetching down the static fetch order.

    ``l1_code_key`` optionally encodes the level-1 compute+cache region
    in a different code family than the design's memory code (``None``
    keeps the paper's same-code hierarchy): the stack, the floorplan's
    transfer ports and the simulated run then all route the cross-code
    boundary through the Table 3 off-diagonal latency model.  The
    fidelity budget stays governed by the design's (memory/L2) code.
    """

    design: CqlaDesign
    parallel_transfers: int = 10
    policy: HierarchyPolicy = DEFAULT_POLICY
    eviction_policy: str = "lru"
    prefetch: str = "none"
    l1_code_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.parallel_transfers < 1:
            raise ValueError("need at least one parallel transfer")
        validate_policy(self.eviction_policy)
        validate_prefetcher(self.prefetch)
        if self.l1_code_key is not None:
            by_key(self.l1_code_key)  # fail here, not deep inside stack()
        if self.l1_code_key == self.design.code_key:
            # Normalize: a same-code hierarchy compares equal whether
            # the level-1 code was spelled out or not.
            object.__setattr__(self, "l1_code_key", None)

    def stack(self) -> HierarchyStack:
        """The two-level stack this hierarchy simulates on."""
        if self.l1_code_key is not None:
            return mixed_stack(
                self.l1_code_key,
                self.design.code_key,
                parallel_transfers=self.parallel_transfers,
            )
        return two_level_stack(
            self.design.code_key, parallel_transfers=self.parallel_transfers
        )

    # -- simulated speedups ------------------------------------------------
    @cached_property
    def l1_run(self) -> HierarchyRunResult:
        return simulate_l1_run(
            self.design.code_key,
            self.design.n_bits,
            parallel_transfers=self.parallel_transfers,
            eviction_policy=self.eviction_policy,
            prefetch=self.prefetch,
            l1_code_key=self.l1_code_key,
        )

    def l1_speedup(self) -> float:
        """Table 5 "L1 SpeedUp": level-1 vs level-2 execution."""
        return self.l1_run.l1_speedup

    def l2_speedup(self) -> float:
        """Table 5 "L2 SpeedUp" — the Table 4 speedup of the design."""
        return self.design.speedup()

    def adder_speedup(self) -> float:
        """Table 5 "Adder SpeedUp" under the interleaving policy."""
        return self.policy.adder_speedup(self.l1_speedup(), self.l2_speedup())

    # -- fidelity ------------------------------------------------------------
    def fidelity_budget(self) -> FidelityBudget:
        return FidelityBudget(
            code_key=self.design.code_key,
            n_bits=self.design.n_bits,
            adder_slots=self.design.adder_makespan_slots(),
        )

    def policy_is_safe(self) -> bool:
        """Does the interleave respect the application error budget?"""
        return self.fidelity_budget().policy_is_safe(self.policy.l1_fraction)

    def l1_time_fraction(self) -> float:
        return self.fidelity_budget().l1_time_fraction(self.policy.l1_fraction)

    # -- combined --------------------------------------------------------------
    def area_reduction(self) -> float:
        """Area factor including cache/L1-region/transfer overheads."""
        from ..arch.regions import CqlaFloorplan
        from ..circuits.modexp import modexp_logical_qubits

        plan = CqlaFloorplan(
            code_key=self.design.code_key,
            memory_qubits=modexp_logical_qubits(self.design.n_bits),
            l2_blocks=self.design.n_blocks,
            l1_blocks=9,  # one superblock-granule L1 region (81 qubits)
            parallel_transfers=self.parallel_transfers,
            l1_code_key=self.l1_code_key,
        )
        return self.design.baseline.area_mm2() / plan.area_mm2()

    def metrics(self) -> DesignMetrics:
        return DesignMetrics(
            area_reduction=self.design.area_reduction(),
            speedup=self.adder_speedup(),
        )

    def gain_product(self) -> float:
        """Table 5 "Gain Product" (QLA = 1.0).

        Uses the specialization-only area factor, matching the paper's
        Table 5 area column (which repeats Table 4's values).
        """
        return self.metrics().gain_product
