"""Design-space enumeration for the CQLA studies (Tables 4 and 5).

The paper evaluates each input size at two compute-block counts — a
utilization-leaning point and a performance-leaning point, both perfect
squares near ``n/8`` data-qubit-blocks.  The published pairs are kept
verbatim; other sizes fall back to the nearest-square rule.

Beyond the paper's tables, :func:`engine_sweep` enumerates the
generalized hierarchy engine over (depth, eviction policy, workload,
prefetcher) — the design axes the two-level adder-only reproduction
hard-coded — with the same memoization and process-pool fan-out as the
published sweeps.

Every sweep enumerates its cells through one shared abstraction: a
``*_grid()`` builder returns the canonical :class:`repro.sweep.grid.Grid`
(kernel name + ordered, content-hashed cells), and
:func:`repro.sweep.runner.compute_grid` executes it — reading through an
optional durable :class:`repro.perf.store.ResultStore` (``store=``)
before computing, so a sweep can be sharded across processes and hosts
(``python -m repro.sweep``) and still reassemble bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..perf.memo import resolve_cache, stable_key
from ..sim.residency import FIDELITY_SEED, FIDELITY_TRIALS
from ..sweep.grid import Cell, Grid
from ..sweep.runner import compute_grid, persist_rows
from .cqla import CqlaDesign
from .hierarchy import MemoryHierarchy

#: Input sizes of the paper's evaluation.
PAPER_INPUT_SIZES = (32, 64, 128, 256, 512, 1024)

#: Code families of the paper's evaluation (Tables 2/4/5).
PAPER_CODE_KEYS = ("steane", "bacon_shor")

#: Input sizes / parallel-transfer options of the Table 5 study.
TABLE5_SIZES = (256, 512, 1024)
TABLE5_TRANSFER_OPTIONS = (10, 5)

#: Published (utilization-leaning, performance-leaning) block pairs.
PAPER_BLOCK_CHOICES: Dict[int, Tuple[int, int]] = {
    32: (4, 9),
    64: (9, 16),
    128: (16, 25),
    256: (36, 49),
    512: (64, 81),
    1024: (100, 121),
}


def block_choices(n_bits: int) -> Tuple[int, int]:
    """The two compute-block counts studied for an input size."""
    if n_bits in PAPER_BLOCK_CHOICES:
        return PAPER_BLOCK_CHOICES[n_bits]
    if n_bits < 2:
        raise ValueError("input size must be at least 2 bits")
    side = max(2, round(math.sqrt(n_bits / 8.0)))
    return side * side, (side + 1) * (side + 1)


def performance_blocks(n_bits: int) -> int:
    """The performance-leaning block count for one input size."""
    return block_choices(n_bits)[1]


@dataclass(frozen=True)
class SpecializationRow:
    """One row of Table 4."""

    n_bits: int
    n_blocks: int
    code_key: str
    area_reduction: float
    speedup: float
    gain_product: float


def specialization_cell(params: Mapping[str, Any]) -> SpecializationRow:
    """One Table 4 cell; module-level so worker processes can pickle it."""
    n_bits = params["n_bits"]
    n_blocks = params["n_blocks"]
    code_key = params["code_key"]
    design = CqlaDesign(code_key, n_bits, n_blocks)
    return SpecializationRow(
        n_bits=n_bits,
        n_blocks=n_blocks,
        code_key=code_key,
        area_reduction=design.area_reduction(),
        speedup=design.speedup(),
        gain_product=design.gain_product(),
    )


def specialization_grid(
    sizes: Sequence[int] = PAPER_INPUT_SIZES,
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
) -> Grid:
    """The canonical Table 4 cell enumeration."""
    cells = tuple(
        Cell.make(
            "specialization_cell",
            n_bits=n_bits,
            n_blocks=n_blocks,
            code_key=code_key,
        )
        for n_bits in sizes
        for n_blocks in block_choices(n_bits)
        for code_key in code_keys
    )
    return Grid("specialization_cell", cells)


def specialization_sweep(
    sizes: Sequence[int] = PAPER_INPUT_SIZES,
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
    *,
    workers: Optional[int] = None,
    cache=None,
    store=None,
    supervise=None,
) -> List[SpecializationRow]:
    """Evaluate every Table 4 cell.

    ``workers=N`` fans the independent cells out over a process pool;
    ``cache`` memoizes the whole sweep (see
    :func:`repro.perf.memo.resolve_cache` for accepted values); a
    ``store`` (path or :class:`repro.perf.store.ResultStore`) persists
    and reads through per-cell records shared with sharded workers;
    ``supervise`` (a :class:`repro.perf.supervise.Supervision`) runs
    under the fault-tolerant pool, quarantining terminally failing
    cells as ``None`` rows (never memoized as a complete sweep).
    """
    memo = resolve_cache(cache)
    key = stable_key(
        "specialization_sweep", sizes=list(sizes), code_keys=list(code_keys)
    )
    grid = specialization_grid(sizes, code_keys)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            try:
                rows = [SpecializationRow(**row) for row in hit]
            except TypeError:
                pass  # malformed persisted entry: fall through, recompute
            else:
                # A memo hit bypasses the store: write through so a
                # store= caller still ends up with a mergeable record set.
                persist_rows(grid, rows, store)
                return rows
    rows = compute_grid(
        grid, specialization_cell, SpecializationRow,
        store=store, workers=workers, supervise=supervise,
    )
    if memo is not None and all(row is not None for row in rows):
        memo.put(key, [asdict(row) for row in rows])
    return rows


@dataclass(frozen=True)
class HierarchyRow:
    """One row of Table 5."""

    code_key: str
    parallel_transfers: int
    n_bits: int
    l1_speedup: float
    l2_speedup: float
    adder_speedup: float
    area_reduction: float
    gain_product: float


def hierarchy_cell(params: Mapping[str, Any]) -> HierarchyRow:
    """One Table 5 cell; module-level so worker processes can pickle it."""
    code_key = params["code_key"]
    par = params["parallel_transfers"]
    n_bits = params["n_bits"]
    design = CqlaDesign(code_key, n_bits, performance_blocks(n_bits))
    hierarchy = MemoryHierarchy(design, parallel_transfers=par)
    return HierarchyRow(
        code_key=code_key,
        parallel_transfers=par,
        n_bits=n_bits,
        l1_speedup=hierarchy.l1_speedup(),
        l2_speedup=hierarchy.l2_speedup(),
        adder_speedup=hierarchy.adder_speedup(),
        area_reduction=design.area_reduction(),
        gain_product=hierarchy.gain_product(),
    )


def hierarchy_grid(
    sizes: Sequence[int] = TABLE5_SIZES,
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
    transfer_options: Sequence[int] = TABLE5_TRANSFER_OPTIONS,
) -> Grid:
    """The canonical Table 5 cell enumeration."""
    cells = tuple(
        Cell.make(
            "hierarchy_cell",
            code_key=code_key,
            parallel_transfers=par,
            n_bits=n_bits,
        )
        for code_key in code_keys
        for par in transfer_options
        for n_bits in sizes
    )
    return Grid("hierarchy_cell", cells)


def hierarchy_sweep(
    sizes: Sequence[int] = TABLE5_SIZES,
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
    transfer_options: Sequence[int] = TABLE5_TRANSFER_OPTIONS,
    *,
    workers: Optional[int] = None,
    cache=None,
    store=None,
    supervise=None,
) -> List[HierarchyRow]:
    """Evaluate every Table 5 cell.

    ``workers=N`` fans the independent cells out over a process pool;
    ``cache`` memoizes the whole sweep (see
    :func:`repro.perf.memo.resolve_cache` for accepted values); a
    ``store`` (path or :class:`repro.perf.store.ResultStore`) persists
    and reads through per-cell records shared with sharded workers;
    ``supervise`` runs under the fault-tolerant pool (see
    :func:`specialization_sweep`).
    """
    memo = resolve_cache(cache)
    key = stable_key(
        "hierarchy_sweep", sizes=list(sizes), code_keys=list(code_keys),
        transfer_options=list(transfer_options),
    )
    grid = hierarchy_grid(sizes, code_keys, transfer_options)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            try:
                rows = [HierarchyRow(**row) for row in hit]
            except TypeError:
                pass  # malformed persisted entry: fall through, recompute
            else:
                persist_rows(grid, rows, store)
                return rows
    rows = compute_grid(
        grid, hierarchy_cell, HierarchyRow,
        store=store, workers=workers, supervise=supervise,
    )
    if memo is not None and all(row is not None for row in rows):
        memo.put(key, [asdict(row) for row in rows])
    return rows


# ----------------------------------------------------------------------
# Table 3 — the full (source, destination) transfer-latency matrix
# ----------------------------------------------------------------------

#: Code-recursion levels of the Table 3 study: together with
#: :data:`PAPER_CODE_KEYS` they span the four encoding points 7-L1,
#: 7-L2, 9-L1, 9-L2.
TABLE3_LEVELS = (1, 2)


@dataclass(frozen=True)
class TransferRow:
    """One cell of the Table 3 transfer-latency matrix.

    Off-diagonal cells (``source_code_key != dest_code_key``) are the
    cross-code transfers a mixed-code hierarchy stack prices its
    boundaries from; ``channels_per_transfer`` is the teleport-channel
    occupancy of one such transfer (the wider of the two codes').
    """

    source: str
    dest: str
    source_code_key: str
    source_level: int
    dest_code_key: str
    dest_level: int
    transfer_s: float
    channels_per_transfer: int


def transfer_cell(params: Mapping[str, Any]) -> TransferRow:
    """One Table 3 cell; module-level so worker processes can pickle it."""
    from ..ecc.concatenated import by_key
    from ..ecc.transfer import CodePoint, transfer_time_s

    source = CodePoint(params["source_code_key"], params["source_level"])
    dest = CodePoint(params["dest_code_key"], params["dest_level"])
    return TransferRow(
        source=source.label,
        dest=dest.label,
        source_code_key=source.code_key,
        source_level=source.level,
        dest_code_key=dest.code_key,
        dest_level=dest.level,
        transfer_s=transfer_time_s(source, dest),
        channels_per_transfer=max(
            by_key(source.code_key).spec.teleport_channels,
            by_key(dest.code_key).spec.teleport_channels,
        ),
    )


def transfer_grid(
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
    levels: Sequence[int] = TABLE3_LEVELS,
) -> Grid:
    """The canonical Table 3 cell enumeration (all ordered point pairs).

    Points enumerate code-major then level-major, matching
    :func:`repro.ecc.transfer.standard_points`; the full default grid
    is the 16-cell 4x4 matrix, diagonal and off-diagonal alike.
    """
    points = [
        (code_key, level) for code_key in code_keys for level in levels
    ]
    cells = tuple(
        Cell.make(
            "transfer_cell",
            source_code_key=src_code,
            source_level=src_level,
            dest_code_key=dst_code,
            dest_level=dst_level,
        )
        for src_code, src_level in points
        for dst_code, dst_level in points
    )
    return Grid("transfer_cell", cells)


def transfer_sweep(
    code_keys: Sequence[str] = PAPER_CODE_KEYS,
    levels: Sequence[int] = TABLE3_LEVELS,
    *,
    workers: Optional[int] = None,
    cache=None,
    store=None,
    supervise=None,
) -> List[TransferRow]:
    """Evaluate every Table 3 cell.

    The cells are tiny (closed-form latency arithmetic) — the sweep
    exists so the Table 3 matrix flows through the same grid/store
    machinery as every other table: sharded workers can fill a store
    (``python -m repro.sweep run --kernel transfer_cell``) and
    :func:`repro.analysis.tables.table3_from_store` renders from it.
    """
    memo = resolve_cache(cache)
    key = stable_key(
        "transfer_sweep", code_keys=list(code_keys), levels=list(levels)
    )
    grid = transfer_grid(code_keys, levels)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            try:
                rows = [TransferRow(**row) for row in hit]
            except TypeError:
                pass  # malformed persisted entry: fall through, recompute
            else:
                persist_rows(grid, rows, store)
                return rows
    rows = compute_grid(
        grid, transfer_cell, TransferRow,
        store=store, workers=workers, supervise=supervise,
    )
    if memo is not None and all(row is not None for row in rows):
        memo.put(key, [asdict(row) for row in rows])
    return rows


# ----------------------------------------------------------------------
# generalized-engine sweep: (depth, policy, workload, prefetch)
# ----------------------------------------------------------------------

#: Workloads of the engine study (all registered in repro.circuits).
ENGINE_WORKLOADS = ("draper_adder", "qft", "modexp_trace")

#: Prefetchers of the engine study.  ``"none"`` is the PR 2 reservation
#: model; anything else runs the split-transaction transfer model with
#: exact prefetching down the static fetch order.
ENGINE_PREFETCHERS = ("none", "next_k")

#: Remaining default engine-study axes, shared by :func:`engine_grid`
#: and :func:`engine_sweep` so the sharded CLI (which enumerates via the
#: grid) and the in-process sweep can never drift apart.
ENGINE_SIZES = (16, 32)
ENGINE_CODE_KEYS = ("steane",)
ENGINE_DEPTHS = (2, 3)
ENGINE_TRANSFER_OPTIONS = (10,)

#: Default mixed-code (compute code, memory code) pairs of the engine
#: study.  Empty by default: pure-code grids stay cell-for-cell
#: identical to the pre-mixed-stack enumeration (same parameter sets,
#: same content hashes — though records written under the old
#: :class:`EngineRow` schema are recomputed, not misread; see the row
#: docstring).  Pass e.g. ``code_pairs=[("bacon_shor", "steane")]`` —
#: or ``--code-pairs bacon_shor:steane`` on the sharded CLI — to add
#: the mixed axis.
ENGINE_CODE_PAIRS: Tuple[Tuple[str, str], ...] = ()

#: Default Monte Carlo calibration budget of the fidelity axis — the
#: shared :mod:`repro.sim.residency` defaults, re-exported so grid
#: builders, the CLI, and in-process sweeps agree on cell identity.
ENGINE_FIDELITY_TRIALS = FIDELITY_TRIALS
ENGINE_FIDELITY_SEED = FIDELITY_SEED


@dataclass(frozen=True)
class EngineRow:
    """One cell of the (depth, policy, workload, prefetch) engine sweep.

    ``memory_code_key`` is the code family of every level below the
    compute level; it equals ``code_key`` for pure-code stacks and
    differs on the mixed-code (``code_pairs``) axis.  It has no default
    on purpose: records persisted by pre-mixed-stack layouts fail
    reconstruction and are recomputed rather than silently misread.
    """

    workload: str
    n_bits: int
    code_key: str
    memory_code_key: str
    depth: int
    policy: str
    prefetch: str
    parallel_transfers: int
    hit_rate: float
    speedup: float
    transfer_bound_fraction: float
    transfers: int
    makespan_s: float


#: Engine-study compute-region size.  The paper's 81-qubit region would
#: swallow these small study workloads whole (no evictions, so every
#: policy degenerates to compulsory misses); a 12-qubit region with a
#: matching cache keeps the resident set under pressure, which is the
#: regime where replacement policies actually separate.
ENGINE_COMPUTE_QUBITS = 12

#: Engine-study cache factor (cache capacity = factor * compute region).
ENGINE_CACHE_FACTOR = 1.0


@lru_cache(maxsize=None)
def _fetch_order(
    workload: str, n_bits: int, compute_qubits: int, cache_factor: float
) -> tuple:
    """The optimized fetch schedule shared by every cell of one
    (workload, size) pair.

    It depends only on (circuit, compute capacity) — never on depth,
    policy, or transfer count — so it is computed once per process and
    reused; sharded workers on other hosts recompute it deterministically.
    """
    from ..circuits.workloads import build_workload
    from ..sim.cache import simulate_optimized
    from ..sim.levels import l1_capacity

    capacity = l1_capacity(compute_qubits, cache_factor)
    # A tuple, not the scheduler's list: the lru_cache shares one object
    # with every cell in the process, so it must be immutable.
    return tuple(simulate_optimized(build_workload(workload, n_bits), capacity).order)


def _engine_stack(params: Mapping[str, Any]):
    """The hierarchy stack one engine cell's parameters describe.

    A ``memory_code_key`` parameter (present only on mixed-code cells,
    so pure-code cell hashes are unchanged) encodes every level below
    the compute level in that code family via
    :func:`repro.sim.levels.mixed_stack`.
    """
    from ..sim.levels import mixed_stack, standard_stack

    code_key = params["code_key"]
    memory_code_key = params.get("memory_code_key", code_key)
    if memory_code_key != code_key:
        return mixed_stack(
            code_key, memory_code_key, params["depth"],
            compute_qubits=params["compute_qubits"],
            cache_factor=params["cache_factor"],
            parallel_transfers=params["parallel_transfers"],
        )
    return standard_stack(
        code_key, params["depth"],
        compute_qubits=params["compute_qubits"],
        cache_factor=params["cache_factor"],
        parallel_transfers=params["parallel_transfers"],
    )


def _engine_row(params: Mapping[str, Any], run) -> EngineRow:
    """Fold one engine run into its row (shared by both kernels)."""
    return EngineRow(
        workload=params["workload"],
        n_bits=params["n_bits"],
        code_key=params["code_key"],
        memory_code_key=params.get("memory_code_key", params["code_key"]),
        depth=params["depth"],
        policy=params["policy"],
        prefetch=params["prefetch"],
        parallel_transfers=params["parallel_transfers"],
        hit_rate=run.hit_rate,
        speedup=run.speedup,
        transfer_bound_fraction=run.transfer_bound_fraction,
        transfers=run.transfers,
        makespan_s=run.total_time_s,
    )


def engine_cell(params: Mapping[str, Any]) -> EngineRow:
    """One engine cell; module-level so worker processes can pickle it."""
    from ..circuits.workloads import build_workload
    from ..sim.levels import simulate_hierarchy_run

    circuit = build_workload(params["workload"], params["n_bits"])
    stack = _engine_stack(params)
    order = _fetch_order(
        params["workload"], params["n_bits"],
        params["compute_qubits"], params["cache_factor"],
    )
    run = simulate_hierarchy_run(
        stack, circuit, policy=params["policy"], order=order,
        prefetch=params["prefetch"],
    )
    return _engine_row(params, run)


# ----------------------------------------------------------------------
# batched engine execution: one traffic extraction, many priced cells
# ----------------------------------------------------------------------

#: Engine axes that only re-*price* the time domain.  The movement
#: trace — every replacement decision, transfer count, and cache
#: counter — is invariant across them (the PR 5 traffic-invariance
#: pin), so cells differing only here share one extraction.
ENGINE_PRICED_AXES = ("code_key", "memory_code_key", "parallel_transfers")


def engine_traffic_key(params: Mapping[str, Any]) -> Optional[str]:
    """The traffic-group identity of one engine cell, or None.

    Cells with equal traffic keys share one movement trace and may be
    priced together by :func:`engine_batch_cell`.  Returns ``None`` for
    cells that must run the full simulation per cell: any prefetching
    cell runs the split-transaction model, whose traffic is
    time-coupled (a prefetch accepted under one latency assignment can
    be vetoed under another), so batching is bypassed there.
    """
    if params.get("prefetch", "none") != "none":
        return None
    traffic = {
        name: value
        for name, value in params.items()
        if name not in ENGINE_PRICED_AXES
    }
    return stable_key("engine_traffic", **traffic)


def _group_trace(group: Sequence[Mapping[str, Any]], trace_cache=None):
    """One traffic group's (trace, stacks), extracting or cache-loading.

    Validates that every member shares one :func:`engine_traffic_key`,
    builds each member's stack, and produces the group's movement trace
    — from the ``trace_cache`` (a :class:`repro.perf.tracecache.
    TraceCache`) when it holds a verified blob under the group's
    :func:`repro.sim.replay.trace_key`, by running the replacement
    simulation otherwise (persisting the result for every later shard,
    resume, and run).
    """
    from ..circuits.workloads import build_workload
    from ..sim.replay import extract_movement_trace, trace_key

    first = group[0]
    key = engine_traffic_key(first)
    if key is None:
        raise ValueError(
            "engine_batch_cell requires batchable cells "
            "(prefetch='none'); got a time-coupled cell"
        )
    for params in group[1:]:
        if engine_traffic_key(params) != key:
            raise ValueError(
                "engine_batch_cell group members must share one "
                "traffic key (the shard planner groups by it)"
            )
    stacks = [_engine_stack(params) for params in group]

    def extract():
        circuit = build_workload(first["workload"], first["n_bits"])
        order = _fetch_order(
            first["workload"], first["n_bits"],
            first["compute_qubits"], first["cache_factor"],
        )
        return extract_movement_trace(
            stacks[0], circuit, first["policy"], order=order
        )

    if trace_cache is None:
        return extract(), stacks
    blob_key = trace_key(
        key, stacks[0].depth, [lvl.capacity for lvl in stacks[0].levels[:-1]]
    )
    return trace_cache.load_or_extract(blob_key, extract), stacks


def engine_batch_cell(
    group: Sequence[Mapping[str, Any]], trace_cache=None
) -> List[EngineRow]:
    """Rows for one traffic group of engine cells, from one extraction.

    Every member must share the same :func:`engine_traffic_key` — the
    replacement machinery runs once against the group's shared
    geometry (or is loaded from ``trace_cache``), then
    :func:`repro.sim.replay.price_movement_trace_batch` replays the
    movement trace across every member's codes and port widths.  Each
    row is bit-identical to :func:`engine_cell` on the same
    parameters.  Module-level so worker processes can pickle it.
    """
    from ..sim.replay import price_movement_trace_batch

    trace, stacks = _group_trace(group, trace_cache)
    runs = price_movement_trace_batch(trace, stacks)
    return [_engine_row(params, run) for params, run in zip(group, runs)]


def engine_grid_cells(
    groups: Sequence[Sequence[Mapping[str, Any]]], trace_cache=None
) -> List[List[EngineRow]]:
    """Row lists for many traffic groups, priced in one grid pass.

    All traces are extracted (or loaded from ``trace_cache``) first,
    then :func:`repro.sim.replay.price_movement_traces_multi` prices
    every (group x config) cell in a single vectorized sweep — pinned
    bit-identical to mapping :func:`engine_batch_cell` over the groups.
    """
    from ..sim.replay import price_movement_traces_multi

    prepared = [_group_trace(group, trace_cache) for group in groups]
    priced = price_movement_traces_multi(prepared)
    return [
        [_engine_row(params, run) for params, run in zip(group, runs)]
        for group, runs in zip(groups, priced)
    ]


@dataclass(frozen=True)
class _EngineBatchKernel:
    """Picklable per-group engine kernel bound to a trace-cache dir.

    Pool workers reconstruct the :class:`TraceCache` from the directory
    string on every call — the cache object itself holds a lock and is
    not picklable, and per-call construction keeps the durable
    ``stats.json`` tally correct across processes.
    """

    trace_cache_dir: Optional[str] = None

    def _cache(self):
        if self.trace_cache_dir is None:
            return None
        from ..perf.tracecache import TraceCache

        return TraceCache(self.trace_cache_dir)

    def __call__(self, group: Sequence[Mapping[str, Any]]) -> List[EngineRow]:
        return engine_batch_cell(group, trace_cache=self._cache())


@dataclass(frozen=True)
class _EngineGridKernel(_EngineBatchKernel):
    """Picklable whole-grid engine kernel bound to a trace-cache dir."""

    def __call__(
        self, groups: Sequence[Sequence[Mapping[str, Any]]]
    ) -> List[List[EngineRow]]:
        return engine_grid_cells(groups, trace_cache=self._cache())


def engine_batch_spec(trace_cache=None):
    """The engine grid's :class:`repro.sweep.runner.BatchSpec`.

    Pass it as ``compute_grid(..., batch=engine_batch_spec())`` (or use
    ``engine_sweep(batched=True)`` / the CLI's ``--batched``) to group
    batchable cells by traffic key and price each group in one pass.
    On serial unsupervised runs the spec's grid mode prices *all*
    groups in one :func:`engine_grid_cells` call.

    ``trace_cache`` (anything
    :func:`repro.perf.tracecache.resolve_trace_cache` accepts) makes
    every group's movement trace a durable shared artifact: a warm
    cache turns repeated and resumed sweeps into pure pricing runs with
    zero traffic simulation.
    """
    from ..perf.tracecache import resolve_trace_cache
    from ..sweep.runner import BatchSpec

    resolved = resolve_trace_cache(trace_cache)
    directory = None if resolved is None else str(resolved.directory)
    return BatchSpec(
        group_key=engine_traffic_key,
        fn=_EngineBatchKernel(directory),
        grid_fn=_EngineGridKernel(directory),
    )


def _normalize_code_pairs(
    code_pairs: Sequence[Sequence[str]],
) -> Tuple[Tuple[str, str], ...]:
    """Validate and canonicalize a (compute code, memory code) axis.

    Both keys must name registered codes — an unknown code fails here,
    at grid-build time, rather than mid-shard inside a worker process.
    """
    from ..ecc.concatenated import by_key

    pairs = []
    for pair in code_pairs:
        compute_code, memory_code = pair
        by_key(compute_code)
        by_key(memory_code)
        if compute_code == memory_code:
            raise ValueError(
                f"code pair {compute_code!r}:{memory_code!r} is not mixed; "
                "pure-code stacks belong on the code_keys axis"
            )
        pairs.append((compute_code, memory_code))
    return tuple(pairs)


def engine_grid(
    workloads: Sequence[str] = ENGINE_WORKLOADS,
    sizes: Sequence[int] = ENGINE_SIZES,
    code_keys: Sequence[str] = ENGINE_CODE_KEYS,
    depths: Sequence[int] = ENGINE_DEPTHS,
    policies: Optional[Sequence[str]] = None,
    prefetches: Sequence[str] = ENGINE_PREFETCHERS,
    transfer_options: Sequence[int] = ENGINE_TRANSFER_OPTIONS,
    compute_qubits: int = ENGINE_COMPUTE_QUBITS,
    cache_factor: float = ENGINE_CACHE_FACTOR,
    code_pairs: Sequence[Sequence[str]] = ENGINE_CODE_PAIRS,
) -> Grid:
    """The canonical engine-sweep cell enumeration.

    ``policies=None`` resolves to every registered eviction policy, so
    a sharded worker and a single-process sweep agree on the grid
    without passing the policy list around.

    ``code_pairs`` is the mixed-code stack axis: each (compute code,
    memory code) pair extends the stack axis after the pure codes, one
    stack configuration per remaining axis combination.  Mixed cells
    carry an extra ``memory_code_key`` parameter; pure cells keep the
    exact parameter set (and so the exact content hashes) of the
    pre-mixed-stack grid — cell identity is stable, though records
    stored under the pre-mixed :class:`EngineRow` schema fail
    reconstruction and are recomputed rather than misread.
    """
    if policies is None:
        from ..sim.policies import available_policies

        policies = available_policies()
    stacks = [(code_key, None) for code_key in code_keys]
    stacks.extend(_normalize_code_pairs(code_pairs))
    cells = tuple(
        Cell.make(
            "engine_cell",
            workload=workload,
            n_bits=n_bits,
            code_key=code_key,
            depth=depth,
            policy=policy,
            prefetch=prefetch,
            parallel_transfers=par,
            compute_qubits=compute_qubits,
            cache_factor=cache_factor,
            **(
                {} if memory_code_key is None
                else {"memory_code_key": memory_code_key}
            ),
        )
        for workload in workloads
        for n_bits in sizes
        for code_key, memory_code_key in stacks
        for depth in depths
        for policy in policies
        for prefetch in prefetches
        for par in transfer_options
    )
    return Grid("engine_cell", cells)


def engine_sweep(
    workloads: Sequence[str] = ENGINE_WORKLOADS,
    sizes: Sequence[int] = ENGINE_SIZES,
    code_keys: Sequence[str] = ENGINE_CODE_KEYS,
    depths: Sequence[int] = ENGINE_DEPTHS,
    policies: Optional[Sequence[str]] = None,
    prefetches: Sequence[str] = ENGINE_PREFETCHERS,
    transfer_options: Sequence[int] = ENGINE_TRANSFER_OPTIONS,
    compute_qubits: int = ENGINE_COMPUTE_QUBITS,
    cache_factor: float = ENGINE_CACHE_FACTOR,
    code_pairs: Sequence[Sequence[str]] = ENGINE_CODE_PAIRS,
    *,
    workers: Optional[int] = None,
    cache=None,
    store=None,
    supervise=None,
    batched: bool = False,
    trace_cache=None,
    fidelity=None,
) -> List[EngineRow]:
    """Evaluate the generalized engine over its design axes.

    ``policies=None`` takes every registered eviction policy;
    ``prefetches`` is the sweep's fourth axis (pass
    ``repro.sim.prefetch.available_prefetchers()`` for every registered
    prefetcher); ``code_pairs`` the mixed-code stack axis (each
    (compute code, memory code) pair simulates that compute code over
    that memory code — see :func:`engine_grid`).  ``workers=N`` fans
    the independent cells out over a process pool; ``cache`` memoizes
    the whole sweep (see :func:`repro.perf.memo.resolve_cache` for
    accepted values); a ``store`` (path or
    :class:`repro.perf.store.ResultStore`) persists and reads through
    per-cell records, which is how sharded workers
    (``python -m repro.sweep``) and this function share work.

    ``batched=True`` simulates each traffic group once and re-prices
    its members together (see :func:`engine_batch_cell`) — bit-identical
    rows and store records, much cheaper wide ``code_pairs`` axes.
    ``trace_cache`` (with ``batched=True``; see
    :func:`repro.perf.tracecache.resolve_trace_cache` for accepted
    values) persists each group's movement trace, so a re-run or
    resume with a warm cache performs zero traffic simulation.

    ``fidelity`` adds the noise-aware axis: pass ``True`` (the default
    :data:`ENGINE_FIDELITY_TRIALS`/:data:`ENGINE_FIDELITY_SEED` Monte
    Carlo budget) or a ``{"trials": ..., "seed": ...}`` mapping, and
    every cell runs with a residency recorder attached, returning
    :class:`FidelityRow` rows (``EngineRow`` plus ``logical_error`` and
    its breakdown) under a distinct memo key and grid kernel
    (``fidelity_cell``).  ``fidelity=None`` leaves the sweep —
    including its memo key and store records — byte-identical to a
    pre-fidelity build.  Fidelity runs are per-cell simulations;
    ``batched=True`` is rejected (the batched replayer prices traffic
    without qubit identity, so it cannot record residency).
    """
    if trace_cache is not None and not batched:
        raise ValueError("trace_cache requires batched=True")
    if policies is None:
        from ..sim.policies import available_policies

        policies = available_policies()
    code_pairs = _normalize_code_pairs(code_pairs)
    memo = resolve_cache(cache)
    if fidelity:
        if batched:
            raise ValueError(
                "fidelity sweeps run per-cell (the batched replayer has "
                "no qubit identity to record residency from); drop "
                "batched=True"
            )
        trials, seed = _fidelity_budget(fidelity)
        key = stable_key(
            "engine_sweep", workloads=list(workloads), sizes=list(sizes),
            code_keys=list(code_keys), depths=list(depths),
            policies=list(policies), prefetches=list(prefetches),
            transfer_options=list(transfer_options),
            compute_qubits=compute_qubits, cache_factor=cache_factor,
            code_pairs=[list(pair) for pair in code_pairs],
            fidelity_trials=trials, fidelity_seed=seed,
        )
        grid = fidelity_grid(
            workloads, sizes, code_keys, depths, policies, prefetches,
            transfer_options, compute_qubits, cache_factor, code_pairs,
            fidelity_trials=trials, fidelity_seed=seed,
        )
        cell_fn, row_type = fidelity_cell, FidelityRow
    else:
        key = stable_key(
            "engine_sweep", workloads=list(workloads), sizes=list(sizes),
            code_keys=list(code_keys), depths=list(depths),
            policies=list(policies), prefetches=list(prefetches),
            transfer_options=list(transfer_options),
            compute_qubits=compute_qubits, cache_factor=cache_factor,
            code_pairs=[list(pair) for pair in code_pairs],
        )
        grid = engine_grid(
            workloads, sizes, code_keys, depths, policies, prefetches,
            transfer_options, compute_qubits, cache_factor, code_pairs,
        )
        cell_fn, row_type = engine_cell, EngineRow
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            try:
                rows = [row_type(**row) for row in hit]
            except TypeError:
                pass  # malformed persisted entry: fall through, recompute
            else:
                persist_rows(grid, rows, store)
                return rows
    rows = compute_grid(
        grid, cell_fn, row_type,
        store=store, workers=workers, supervise=supervise,
        batch=engine_batch_spec(trace_cache) if batched else None,
    )
    if memo is not None and all(row is not None for row in rows):
        memo.put(key, [asdict(row) for row in rows])
    return rows


# ----------------------------------------------------------------------
# fidelity axis: noise-aware cells and the time-vs-fidelity front
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FidelityRow(EngineRow):
    """One noise-aware engine cell: an :class:`EngineRow` plus fidelity.

    ``logical_error`` is the survival-model probability that at least
    one logical failure occurred anywhere in the run (see
    :func:`repro.sim.residency.accrue_residency`); ``level_errors[l]``
    and ``transit_error`` are the isolated per-level and in-flight
    contributions.  ``fidelity_trials``/``fidelity_seed`` pin the Monte
    Carlo calibration budget into the row (and the cell hash), so rows
    from different budgets can never be conflated.
    """

    fidelity_trials: int
    fidelity_seed: int
    logical_error: float
    level_errors: Tuple[float, ...]
    transit_error: float

    def __post_init__(self) -> None:
        # Store records round-trip through JSON, which turns the tuple
        # into a list; coerce back so reconstructed rows compare equal.
        object.__setattr__(self, "level_errors", tuple(self.level_errors))


def _fidelity_budget(fidelity) -> Tuple[int, int]:
    """The (trials, seed) Monte Carlo budget a ``fidelity=`` value selects."""
    if fidelity is True:
        return ENGINE_FIDELITY_TRIALS, ENGINE_FIDELITY_SEED
    return (
        int(fidelity.get("trials", ENGINE_FIDELITY_TRIALS)),
        int(fidelity.get("seed", ENGINE_FIDELITY_SEED)),
    )


def fidelity_cell(params: Mapping[str, Any]) -> FidelityRow:
    """One fidelity cell; module-level so worker processes can pickle it.

    The engine run underneath is the exact :func:`engine_cell` run —
    the recorder only observes it — so every shared field of the
    resulting row is bit-identical to the ``engine_cell`` row of the
    same engine parameters.
    """
    from ..circuits.workloads import build_workload
    from ..sim.residency import simulate_fidelity_run

    circuit = build_workload(params["workload"], params["n_bits"])
    stack = _engine_stack(params)
    order = _fetch_order(
        params["workload"], params["n_bits"],
        params["compute_qubits"], params["cache_factor"],
    )
    run, fid = simulate_fidelity_run(
        stack, circuit, params["policy"], order=order,
        prefetch=params["prefetch"],
        trials=params["fidelity_trials"], seed=params["fidelity_seed"],
    )
    return FidelityRow(
        **asdict(_engine_row(params, run)),
        fidelity_trials=params["fidelity_trials"],
        fidelity_seed=params["fidelity_seed"],
        logical_error=fid.logical_error,
        level_errors=fid.level_errors,
        transit_error=fid.transit_error,
    )


def fidelity_grid(
    workloads: Sequence[str] = ENGINE_WORKLOADS,
    sizes: Sequence[int] = ENGINE_SIZES,
    code_keys: Sequence[str] = ENGINE_CODE_KEYS,
    depths: Sequence[int] = ENGINE_DEPTHS,
    policies: Optional[Sequence[str]] = None,
    prefetches: Sequence[str] = ENGINE_PREFETCHERS,
    transfer_options: Sequence[int] = ENGINE_TRANSFER_OPTIONS,
    compute_qubits: int = ENGINE_COMPUTE_QUBITS,
    cache_factor: float = ENGINE_CACHE_FACTOR,
    code_pairs: Sequence[Sequence[str]] = ENGINE_CODE_PAIRS,
    fidelity_trials: int = ENGINE_FIDELITY_TRIALS,
    fidelity_seed: int = ENGINE_FIDELITY_SEED,
) -> Grid:
    """The canonical fidelity-sweep cell enumeration.

    Cell-for-cell the :func:`engine_grid` enumeration with the Monte
    Carlo budget folded into every cell's parameters (and so its
    content hash), under the ``fidelity_cell`` kernel.
    """
    base = engine_grid(
        workloads, sizes, code_keys, depths, policies, prefetches,
        transfer_options, compute_qubits, cache_factor, code_pairs,
    )
    cells = tuple(
        Cell.make(
            "fidelity_cell",
            fidelity_trials=fidelity_trials,
            fidelity_seed=fidelity_seed,
            **cell.as_dict(),
        )
        for cell in base.cells
    )
    return Grid("fidelity_cell", cells)


def pareto_rows(rows: Sequence[FidelityRow]) -> List[FidelityRow]:
    """The time-vs-fidelity Pareto front of a fidelity row set.

    A row is on the front when no other row is at least as fast *and*
    at least as reliable (with one of the two strictly better).  Rows
    come back sorted by ascending makespan; ties in makespan keep only
    the most reliable row.  ``None`` entries (quarantined cells from a
    supervised sweep) are ignored.
    """
    ordered = sorted(
        (row for row in rows if row is not None),
        key=lambda row: (row.makespan_s, row.logical_error),
    )
    front: List[FidelityRow] = []
    best = math.inf
    for row in ordered:
        if row.logical_error < best:
            front.append(row)
            best = row.logical_error
    return front

