"""Design-space enumeration for the CQLA studies (Tables 4 and 5).

The paper evaluates each input size at two compute-block counts — a
utilization-leaning point and a performance-leaning point, both perfect
squares near ``n/8`` data-qubit-blocks.  The published pairs are kept
verbatim; other sizes fall back to the nearest-square rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .cqla import CqlaDesign
from .hierarchy import MemoryHierarchy

#: Input sizes of the paper's evaluation.
PAPER_INPUT_SIZES = (32, 64, 128, 256, 512, 1024)

#: Published (utilization-leaning, performance-leaning) block pairs.
PAPER_BLOCK_CHOICES: Dict[int, Tuple[int, int]] = {
    32: (4, 9),
    64: (9, 16),
    128: (16, 25),
    256: (36, 49),
    512: (64, 81),
    1024: (100, 121),
}


def block_choices(n_bits: int) -> Tuple[int, int]:
    """The two compute-block counts studied for an input size."""
    if n_bits in PAPER_BLOCK_CHOICES:
        return PAPER_BLOCK_CHOICES[n_bits]
    if n_bits < 2:
        raise ValueError("input size must be at least 2 bits")
    side = max(2, round(math.sqrt(n_bits / 8.0)))
    return side * side, (side + 1) * (side + 1)


def performance_blocks(n_bits: int) -> int:
    """The performance-leaning block count for one input size."""
    return block_choices(n_bits)[1]


@dataclass(frozen=True)
class SpecializationRow:
    """One row of Table 4."""

    n_bits: int
    n_blocks: int
    code_key: str
    area_reduction: float
    speedup: float
    gain_product: float


def specialization_sweep(
    sizes: Sequence[int] = PAPER_INPUT_SIZES,
    code_keys: Sequence[str] = ("steane", "bacon_shor"),
) -> List[SpecializationRow]:
    """Evaluate every Table 4 cell."""
    rows: List[SpecializationRow] = []
    for n_bits in sizes:
        for n_blocks in block_choices(n_bits):
            for code_key in code_keys:
                design = CqlaDesign(code_key, n_bits, n_blocks)
                rows.append(SpecializationRow(
                    n_bits=n_bits,
                    n_blocks=n_blocks,
                    code_key=code_key,
                    area_reduction=design.area_reduction(),
                    speedup=design.speedup(),
                    gain_product=design.gain_product(),
                ))
    return rows


@dataclass(frozen=True)
class HierarchyRow:
    """One row of Table 5."""

    code_key: str
    parallel_transfers: int
    n_bits: int
    l1_speedup: float
    l2_speedup: float
    adder_speedup: float
    area_reduction: float
    gain_product: float


def hierarchy_sweep(
    sizes: Sequence[int] = (256, 512, 1024),
    code_keys: Sequence[str] = ("steane", "bacon_shor"),
    transfer_options: Sequence[int] = (10, 5),
) -> List[HierarchyRow]:
    """Evaluate every Table 5 cell."""
    rows: List[HierarchyRow] = []
    for code_key in code_keys:
        for par in transfer_options:
            for n_bits in sizes:
                design = CqlaDesign(
                    code_key, n_bits, performance_blocks(n_bits)
                )
                hierarchy = MemoryHierarchy(design, parallel_transfers=par)
                rows.append(HierarchyRow(
                    code_key=code_key,
                    parallel_transfers=par,
                    n_bits=n_bits,
                    l1_speedup=hierarchy.l1_speedup(),
                    l2_speedup=hierarchy.l2_speedup(),
                    adder_speedup=hierarchy.adder_speedup(),
                    area_reduction=design.area_reduction(),
                    gain_product=hierarchy.gain_product(),
                ))
    return rows
