"""System-fidelity budgeting with multiple encoding levels (Section 5.2).

A quantum computer running an application of size ``S = K * Q`` (K time
steps on Q logical qubits) needs a per-operation failure rate of at most
``1 / (K * Q)``.  With the memory hierarchy, some operations run at the
fast-but-weaker level 1; this module computes how many may do so.

Per-level failure rates come from Gottesman's local fault-tolerance
estimate (Equation 1), implemented in
:meth:`repro.ecc.concatenated.ConcatenatedCode.failure_rate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.modexp import modexp_logical_qubits, serial_adder_depth
from ..ecc.concatenated import ConcatenatedCode, by_key


def application_kq(n_bits: int, adder_slots: int) -> float:
    """K*Q of an ``n_bits`` modular exponentiation.

    ``K`` is the serial gate-slot count (adders on the critical path
    times slots per adder) and ``Q`` the logical data qubits.
    """
    if adder_slots < 1:
        raise ValueError("adder must take at least one slot")
    k = serial_adder_depth(n_bits) * adder_slots
    q = modexp_logical_qubits(n_bits)
    return float(k) * float(q)


@dataclass(frozen=True)
class FidelityBudget:
    """Error budget of one application instance on one code."""

    code_key: str
    n_bits: int
    adder_slots: int

    @property
    def code(self) -> ConcatenatedCode:
        return by_key(self.code_key)

    @property
    def kq(self) -> float:
        return application_kq(self.n_bits, self.adder_slots)

    @property
    def budget_per_op(self) -> float:
        """Maximum tolerable per-operation failure probability."""
        return 1.0 / self.kq

    def failure_rate(self, level: int) -> float:
        return self.code.failure_rate(level)

    def required_level(self) -> int:
        """Minimum uniform encoding level meeting the budget."""
        return self.code.min_level_for(self.budget_per_op)

    def max_l1_op_fraction(self) -> float:
        """Largest fraction of operations that may run at level 1.

        Splitting operations between levels, the average failure rate is
        ``f * p1 + (1 - f) * p2``; solving against the budget gives the
        admissible ``f``, clipped to [0, 1].
        """
        p1 = self.failure_rate(1)
        p2 = self.failure_rate(2)
        budget = self.budget_per_op
        if p1 <= budget:
            return 1.0
        if p2 >= budget:
            return 0.0
        return (budget - p2) / (p1 - p2)

    def l1_time_fraction(self, l1_op_fraction: float) -> float:
        """Convert an operation fraction into a wall-clock fraction.

        Level-1 operations are much shorter, so even a sizable operation
        share is a small share of execution time (the paper's "only 2%
        of the total execution time in level 1" style statement).
        """
        if not 0.0 <= l1_op_fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        t1 = self.code.logical_op_time_s(1)
        t2 = self.code.logical_op_time_s(2)
        time_l1 = l1_op_fraction * t1
        time_l2 = (1.0 - l1_op_fraction) * t2
        total = time_l1 + time_l2
        return time_l1 / total if total else 0.0

    def policy_is_safe(self, l1_op_fraction: float) -> bool:
        """Does a given L1 operation share keep the system reliable?"""
        return l1_op_fraction <= self.max_l1_op_fraction() + 1e-12
