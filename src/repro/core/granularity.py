"""Mixed-granularity level scheduling (the paper's Section 7 direction).

"Currently, we perform the whole adder at the fast level 1 encoding or
at the level 2 encoding; clever instruction scheduling techniques can
allow us to improve performance by reducing granularity."

This module explores that: instead of whole 1:2 addition interleaving,
choose the *fraction* of additions run at level 1 — per design point —
to maximize throughput subject to the Gottesman fidelity budget, and
compare against the paper's fixed policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .cqla import CqlaDesign
from .fidelity import FidelityBudget
from .hierarchy import HierarchyPolicy, MemoryHierarchy


@dataclass(frozen=True)
class GranularityPoint:
    """One candidate L1 share and its evaluation."""

    l1_fraction: float
    adder_speedup: float
    safe: bool


@dataclass(frozen=True)
class GranularityStudy:
    """Sweep of L1 operation shares for one hierarchy design."""

    design: CqlaDesign
    parallel_transfers: int
    points: List[GranularityPoint]

    def best_safe(self) -> GranularityPoint:
        """Fastest point that respects the fidelity budget."""
        safe = [p for p in self.points if p.safe]
        if not safe:
            raise ValueError("no safe operating point — raise the level")
        return max(safe, key=lambda p: p.adder_speedup)

    def paper_policy_point(self) -> GranularityPoint:
        """The fixed 1:2 policy's position in the sweep."""
        target = 1.0 / 3.0
        return min(self.points, key=lambda p: abs(p.l1_fraction - target))


def _fraction_speedup(
    hierarchy: MemoryHierarchy, l1_fraction: float
) -> float:
    """Average per-addition speedup at an arbitrary L1 share.

    Continuous generalization of
    :meth:`repro.core.hierarchy.HierarchyPolicy.adder_speedup`.
    """
    s1 = hierarchy.l1_speedup()
    s2 = hierarchy.l2_speedup()
    return l1_fraction * s1 * s2 + (1.0 - l1_fraction) * s2


def granularity_study(
    design: CqlaDesign,
    parallel_transfers: int = 10,
    steps: int = 11,
) -> GranularityStudy:
    """Sweep L1 shares from 0 to 1 and mark fidelity-safe points."""
    if steps < 2:
        raise ValueError("need at least two sweep points")
    hierarchy = MemoryHierarchy(design, parallel_transfers=parallel_transfers)
    budget = FidelityBudget(
        design.code_key, design.n_bits,
        adder_slots=design.adder_makespan_slots(),
    )
    max_fraction = budget.max_l1_op_fraction()
    points = []
    for i in range(steps):
        fraction = i / (steps - 1)
        points.append(GranularityPoint(
            l1_fraction=fraction,
            adder_speedup=_fraction_speedup(hierarchy, fraction),
            safe=fraction <= max_fraction + 1e-12,
        ))
    return GranularityStudy(
        design=design,
        parallel_transfers=parallel_transfers,
        points=points,
    )


def fine_grained_gain(design: CqlaDesign, parallel_transfers: int = 10) -> float:
    """Speedup of the best safe share over the fixed 1:2 policy."""
    study = granularity_study(design, parallel_transfers)
    best = study.best_safe()
    fixed = HierarchyPolicy().adder_speedup(
        MemoryHierarchy(design, parallel_transfers=parallel_transfers).l1_speedup(),
        design.speedup(),
    )
    return best.adder_speedup / fixed
