"""The CQLA core: design objects, memory hierarchy, fidelity, metrics."""

from .cqla import CqlaDesign
from .design_space import (
    ENGINE_PREFETCHERS,
    ENGINE_WORKLOADS,
    EngineRow,
    HierarchyRow,
    PAPER_BLOCK_CHOICES,
    PAPER_INPUT_SIZES,
    SpecializationRow,
    block_choices,
    engine_grid,
    engine_sweep,
    hierarchy_grid,
    hierarchy_sweep,
    performance_blocks,
    specialization_grid,
    specialization_sweep,
)
from .fidelity import FidelityBudget, application_kq
from .granularity import (
    GranularityStudy,
    fine_grained_gain,
    granularity_study,
)
from .hierarchy import DEFAULT_POLICY, HierarchyPolicy, MemoryHierarchy
from .metrics import DesignMetrics, gain_product, utilization_efficiency

__all__ = [
    "CqlaDesign",
    "DEFAULT_POLICY",
    "DesignMetrics",
    "ENGINE_PREFETCHERS",
    "ENGINE_WORKLOADS",
    "EngineRow",
    "FidelityBudget",
    "GranularityStudy",
    "HierarchyPolicy",
    "engine_grid",
    "engine_sweep",
    "fine_grained_gain",
    "granularity_study",
    "HierarchyRow",
    "MemoryHierarchy",
    "PAPER_BLOCK_CHOICES",
    "PAPER_INPUT_SIZES",
    "SpecializationRow",
    "application_kq",
    "block_choices",
    "gain_product",
    "hierarchy_grid",
    "hierarchy_sweep",
    "performance_blocks",
    "specialization_grid",
    "specialization_sweep",
    "utilization_efficiency",
]
