"""The CQLA core: design objects, memory hierarchy, fidelity, metrics.

This package owns the paper's *design level* — everything between the
architectural models and the rendered tables:

* :mod:`repro.core.cqla` — :class:`CqlaDesign`, the specialized
  compute/memory design point of Table 4;
* :mod:`repro.core.hierarchy` — :class:`MemoryHierarchy`, the Table 5
  design extended with the level-1 cache (optionally in a different
  code family via ``l1_code_key``, routing the cross-code boundary
  through the Table 3 off-diagonal pricing);
* :mod:`repro.core.fidelity` / :mod:`repro.core.metrics` /
  :mod:`repro.core.granularity` — error budgets, gain products and
  block-granularity studies;
* :mod:`repro.core.design_space` — the canonical sweep grids and
  sweeps (Tables 3/4/5 and the generalized engine design space,
  including the mixed-code ``code_pairs`` axis), all executing through
  :mod:`repro.sweep` with :mod:`repro.perf` memoization.
"""

from .cqla import CqlaDesign
from .design_space import (
    ENGINE_CODE_PAIRS,
    ENGINE_PREFETCHERS,
    ENGINE_WORKLOADS,
    EngineRow,
    HierarchyRow,
    PAPER_BLOCK_CHOICES,
    PAPER_INPUT_SIZES,
    SpecializationRow,
    TransferRow,
    block_choices,
    engine_grid,
    engine_sweep,
    hierarchy_grid,
    hierarchy_sweep,
    performance_blocks,
    specialization_grid,
    specialization_sweep,
    transfer_grid,
    transfer_sweep,
)
from .fidelity import FidelityBudget, application_kq
from .granularity import (
    GranularityStudy,
    fine_grained_gain,
    granularity_study,
)
from .hierarchy import DEFAULT_POLICY, HierarchyPolicy, MemoryHierarchy
from .metrics import DesignMetrics, gain_product, utilization_efficiency

__all__ = [
    "CqlaDesign",
    "DEFAULT_POLICY",
    "DesignMetrics",
    "ENGINE_CODE_PAIRS",
    "ENGINE_PREFETCHERS",
    "ENGINE_WORKLOADS",
    "EngineRow",
    "FidelityBudget",
    "GranularityStudy",
    "HierarchyPolicy",
    "engine_grid",
    "engine_sweep",
    "fine_grained_gain",
    "granularity_study",
    "HierarchyRow",
    "MemoryHierarchy",
    "PAPER_BLOCK_CHOICES",
    "PAPER_INPUT_SIZES",
    "SpecializationRow",
    "TransferRow",
    "application_kq",
    "block_choices",
    "gain_product",
    "hierarchy_grid",
    "hierarchy_sweep",
    "performance_blocks",
    "specialization_grid",
    "specialization_sweep",
    "transfer_grid",
    "transfer_sweep",
    "utilization_efficiency",
]
