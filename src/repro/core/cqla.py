"""The Compressed Quantum Logic Array — the paper's contribution.

:class:`CqlaDesign` is the top-level design object: it instantiates a
CQLA floorplan for a modular-exponentiation workload, evaluates area
against the QLA baseline, schedules the Draper adder onto its compute
blocks, and reports the Table 4 metrics.  The memory-hierarchy variant
(Table 5) composes it with :class:`repro.core.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..arch.qla import QlaMachine
from ..arch.regions import CqlaFloorplan
from ..circuits.modexp import modexp_logical_qubits, serial_adder_depth
from ..ecc.concatenated import by_key
from ..sim.scheduler import adder_balanced_slots
from .metrics import DesignMetrics


@dataclass(frozen=True)
class CqlaDesign:
    """One specialization-only CQLA design point (Section 5.1).

    Parameters
    ----------
    code_key:
        ``"steane"`` or ``"bacon_shor"`` — the EC code of memory and
        compute (the QLA baseline always uses Steane).
    n_bits:
        Modular-exponentiation input size; memory is provisioned for
        its working set.
    n_blocks:
        Level-2 compute blocks.
    """

    code_key: str
    n_bits: int
    n_blocks: int

    def __post_init__(self) -> None:
        by_key(self.code_key)  # validates the key
        if self.n_bits < 2:
            raise ValueError("input size must be at least 2 bits")
        if self.n_blocks < 1:
            raise ValueError("need at least one compute block")

    # -- structure --------------------------------------------------------
    @cached_property
    def floorplan(self) -> CqlaFloorplan:
        return CqlaFloorplan(
            code_key=self.code_key,
            memory_qubits=modexp_logical_qubits(self.n_bits),
            l2_blocks=self.n_blocks,
        )

    @cached_property
    def baseline(self) -> QlaMachine:
        return QlaMachine(self.n_bits)

    # -- area -------------------------------------------------------------
    def area_mm2(self) -> float:
        return self.floorplan.area_mm2()

    def area_reduction(self) -> float:
        """Table 4 "Area Reduced": QLA area over CQLA area."""
        return self.baseline.area_mm2() / self.area_mm2()

    # -- time -------------------------------------------------------------
    def logical_op_time_s(self, level: int = 2) -> float:
        return by_key(self.code_key).logical_op_time_s(level)

    def adder_makespan_slots(self) -> int:
        return adder_balanced_slots(self.n_bits, self.n_blocks)

    def adder_time_s(self) -> float:
        """Adder latency on this design's blocks at level 2."""
        return self.adder_makespan_slots() * self.logical_op_time_s(2)

    def modexp_time_s(self) -> float:
        return serial_adder_depth(self.n_bits) * self.adder_time_s()

    def speedup(self) -> float:
        """Table 4 "SpeedUp": QLA adder time over CQLA adder time.

        Below 1 for Steane (fewer blocks than maximal parallelism); the
        Bacon-Shor code's faster error correction pushes it past 1.
        """
        return self.baseline.adder_time_s() / self.adder_time_s()

    # -- combined -----------------------------------------------------------
    def metrics(self) -> DesignMetrics:
        return DesignMetrics(
            area_reduction=self.area_reduction(),
            speedup=self.speedup(),
        )

    def gain_product(self) -> float:
        """Table 4 "Gain Product" (QLA = 1.0)."""
        return self.metrics().gain_product
