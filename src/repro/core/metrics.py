"""Evaluation metrics of the CQLA study (Section 5).

The paper condenses its comparisons into the *gain product*:

``GP = (Area_old * AdderTime_old) / (Area_CQLA * AdderTime_CQLA)``

the joint area-time improvement over the prior QLA design (whose gain
product is 1.0 by definition).  Since area enters as a reduction factor
and time as a speedup, ``GP = AreaReduction * Speedup``.
"""

from __future__ import annotations

from dataclasses import dataclass


def gain_product(area_reduction: float, speedup: float) -> float:
    """Joint area-time gain over the QLA baseline."""
    if area_reduction <= 0 or speedup <= 0:
        raise ValueError("area reduction and speedup must be positive")
    return area_reduction * speedup


@dataclass(frozen=True)
class DesignMetrics:
    """Bundle of the comparison metrics for one design point."""

    area_reduction: float
    speedup: float

    @property
    def gain_product(self) -> float:
        return gain_product(self.area_reduction, self.speedup)


def utilization_efficiency(utilization: float, speedup: float) -> float:
    """Balance score for the utilization-vs-performance trade (Fig. 6a).

    The paper frames block-count selection as balancing utilization
    against speedup; the product is the simplest scalarization and peaks
    at the knee of the curve.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return utilization * speedup
