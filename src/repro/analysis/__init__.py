"""Analysis: regenerate every table and figure of the evaluation.

This package owns the reporting layer: each ``tableN()`` /
``figN()`` builder returns structured rows, each ``*_text()`` variant
renders them next to the published values
(:mod:`repro.analysis.paper_values`, the transcription the regression
tests pin against), and the ``*_from_store`` variants render straight
from a sharded-sweep result store without recomputing.
:mod:`repro.analysis.summary` reproduces the abstract's headline
claims and :mod:`repro.analysis.sensitivity` the beyond-the-paper
ablations.  ``docs/reproducing-the-paper.md`` maps every artifact to
its builder and pinning test.
"""

from . import paper_values, sensitivity
from .summary import Headline, compute_headline, headline_text
from .figures import (
    all_figures_text,
    fig2,
    fig2_text,
    fig6a,
    fig6a_text,
    fig6b,
    fig6b_text,
    fig7,
    fig7_text,
    fig8a,
    fig8a_text,
    fig8b,
    fig8b_text,
)
from .report import format_series, format_table
from .tables import (
    EcMetricRow,
    all_tables_text,
    engine_table,
    engine_table_from_store,
    engine_table_text,
    engine_table_text_from_store,
    render_table_from_store,
    table1,
    table1_text,
    table2,
    table2_text,
    table3,
    table3_from_store,
    table3_rows,
    table3_text,
    table3_text_from_store,
    table4,
    table4_text,
    table5,
    table5_text,
)

__all__ = [
    "EcMetricRow",
    "Headline",
    "all_figures_text",
    "all_tables_text",
    "compute_headline",
    "engine_table",
    "engine_table_from_store",
    "engine_table_text",
    "engine_table_text_from_store",
    "headline_text",
    "fig2",
    "fig2_text",
    "fig6a",
    "fig6a_text",
    "fig6b",
    "fig6b_text",
    "fig7",
    "fig7_text",
    "fig8a",
    "fig8a_text",
    "fig8b",
    "fig8b_text",
    "format_series",
    "format_table",
    "paper_values",
    "render_table_from_store",
    "sensitivity",
    "table1",
    "table1_text",
    "table2",
    "table2_text",
    "table3",
    "table3_from_store",
    "table3_rows",
    "table3_text",
    "table3_text_from_store",
    "table4",
    "table4_text",
    "table5",
    "table5_text",
]
