"""Headline summary: the abstract's claims as computed quantities.

Produces the numbers the paper leads with — peak area compression, peak
hierarchy speedup, the superblock crossover, the adder-saturation block
count, and the absence of a memory wall — from the same models that
regenerate the tables, so the claims can be asserted (and are, in the
test suite) rather than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.bandwidth import optimal_superblock_size
from ..core.design_space import hierarchy_sweep, specialization_sweep
from ..ecc.concatenated import by_key
from ..sim.scheduler import parallelism_profiles
from .report import format_table


@dataclass(frozen=True)
class Headline:
    """The paper's headline quantities, measured on this reproduction."""

    peak_area_reduction: float
    peak_adder_speedup: float
    peak_gain_product: float
    superblock_crossover: int
    adder64_saturating_blocks: int
    comm_step_over_gate_step: float

    def memory_wall_absent(self) -> bool:
        """A communication step costs no more than a gate step."""
        return self.comm_step_over_gate_step <= 1.05


def compute_headline() -> Headline:
    """Evaluate every headline quantity (heavy: full sweeps)."""
    spec_rows = specialization_sweep()
    hier_rows = hierarchy_sweep()
    profiles = parallelism_profiles(64, 15)
    saturating = 15 if (
        profiles["makespan_capped"] <= profiles["makespan_unlimited"] + 1
    ) else -1
    # Communication step vs gate step, Bacon-Shor level 2 (Section 6).
    from ..arch.interconnect import teleport_time_by_key

    code = by_key("bacon_shor")
    comm_over_gate = teleport_time_by_key("bacon_shor", 2) / (
        code.logical_op_time_s(2)
    )
    return Headline(
        peak_area_reduction=max(r.area_reduction for r in spec_rows),
        peak_adder_speedup=max(r.adder_speedup for r in hier_rows),
        peak_gain_product=max(r.gain_product for r in hier_rows),
        superblock_crossover=optimal_superblock_size(),
        adder64_saturating_blocks=saturating,
        comm_step_over_gate_step=comm_over_gate,
    )


def headline_text() -> str:
    """The headline table, paper claims alongside."""
    h = compute_headline()
    rows = [
        ["peak area reduction", f"{h.peak_area_reduction:.1f}x", "13x"],
        ["peak adder speedup", f"{h.peak_adder_speedup:.1f}x", "~8x"],
        ["peak gain product", f"{h.peak_gain_product:.0f}", "109"],
        ["superblock crossover", str(h.superblock_crossover), "36"],
        ["64-qubit adder saturation",
         f"{h.adder64_saturating_blocks} blocks", "15 blocks"],
        ["comm step / gate step",
         f"{h.comm_step_over_gate_step:.2f}",
         "<= 1 (no memory wall)"],
    ]
    return format_table(
        ["headline", "measured", "paper"],
        rows,
        title="Headline claims, measured vs paper",
    )
