"""Plain-text rendering helpers for tables and figure series.

Keeps formatting out of the analysis builders: a table is a header row
plus value rows; a series is a labeled list of (x, y) pairs rendered as
aligned columns (the closest a terminal gets to the paper's figures).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict,
    xs: Sequence[object],
    title: str = "",
) -> str:
    """Render named y-series against shared x values."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
