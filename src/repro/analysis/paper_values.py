"""Published values from the paper, for comparison and regression tests.

Every number here is transcribed from the paper (Tables 1-5 and the
quantitative claims in the text).  EXPERIMENTS.md reports our measured
values against these; the test suite asserts agreement within documented
tolerances where the reproduction is expected to match.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table 2 — EC time in seconds: (code key, level) -> seconds.
EC_TIME_S: Dict[Tuple[str, int], float] = {
    ("steane", 1): 3.1e-3,
    ("steane", 2): 0.3,
    ("bacon_shor", 1): 1.2e-3,
    ("bacon_shor", 2): 0.1,
}

#: Table 2 — logical qubit tile size in mm^2.
QUBIT_AREA_MM2: Dict[Tuple[str, int], float] = {
    ("steane", 1): 0.2,
    ("steane", 2): 3.4,
    ("bacon_shor", 1): 0.1,
    ("bacon_shor", 2): 2.4,
}

#: Table 2 — transversal gate time in seconds.
TRANSVERSAL_TIME_S: Dict[Tuple[str, int], float] = {
    ("steane", 1): 6.2e-3,
    ("steane", 2): 0.5,
    ("bacon_shor", 1): 2.4e-3,
    ("bacon_shor", 2): 0.2,
}

#: Table 2 — physical qubit counts: (code, level) -> (data, ancilla).
QUBIT_COUNTS: Dict[Tuple[str, int], Tuple[int, int]] = {
    ("steane", 1): (7, 21),
    ("steane", 2): (49, 441),
    ("bacon_shor", 1): (9, 12),
    ("bacon_shor", 2): (81, 298),
}

#: Level-1 Steane syndrome-extraction cycle count quoted in Section 4.1.
STEANE_L1_SYNDROME_CYCLES = 154

#: Table 3 — transfer latency in seconds, (source label, dest label).
TRANSFER_S: Dict[Tuple[str, str], float] = {
    ("7-L1", "7-L1"): 0.0, ("7-L1", "7-L2"): 0.6,
    ("7-L1", "9-L1"): 0.02, ("7-L1", "9-L2"): 0.2,
    ("7-L2", "7-L1"): 1.3, ("7-L2", "7-L2"): 0.0,
    ("7-L2", "9-L1"): 1.3, ("7-L2", "9-L2"): 1.5,
    ("9-L1", "7-L1"): 0.01, ("9-L1", "7-L2"): 0.5,
    ("9-L1", "9-L1"): 0.0, ("9-L1", "9-L2"): 0.1,
    ("9-L2", "7-L1"): 0.4, ("9-L2", "7-L2"): 0.9,
    ("9-L2", "9-L1"): 0.4, ("9-L2", "9-L2"): 0.0,
}

#: Table 4 — (n_bits, n_blocks, code) -> (area reduction, speedup, GP).
TABLE4: Dict[Tuple[int, int, str], Tuple[float, float, float]] = {
    (32, 4, "steane"): (6.69, 0.54, 3.61),
    (32, 9, "steane"): (3.22, 0.97, 3.14),
    (64, 9, "steane"): (6.36, 0.70, 4.45),
    (64, 16, "steane"): (3.79, 0.98, 3.71),
    (128, 16, "steane"): (7.24, 0.72, 5.24),
    (128, 25, "steane"): (4.90, 0.96, 4.70),
    (256, 36, "steane"): (6.65, 0.92, 6.12),
    (256, 49, "steane"): (5.07, 0.98, 4.96),
    (512, 64, "steane"): (7.42, 0.92, 6.80),
    (512, 81, "steane"): (6.06, 0.98, 5.94),
    (1024, 100, "steane"): (9.14, 0.80, 7.35),
    (1024, 121, "steane"): (7.81, 0.97, 7.60),
    (32, 4, "bacon_shor"): (9.80, 1.47, 14.41),
    (32, 9, "bacon_shor"): (4.74, 2.90, 13.74),
    (64, 9, "bacon_shor"): (9.32, 1.92, 17.70),
    (64, 16, "bacon_shor"): (5.56, 3.00, 16.68),
    (128, 16, "bacon_shor"): (10.6, 1.97, 20.88),
    (128, 25, "bacon_shor"): (7.17, 2.84, 20.36),
    (256, 36, "bacon_shor"): (9.47, 2.51, 23.68),
    (256, 49, "bacon_shor"): (7.43, 2.98, 22.14),
    (512, 64, "bacon_shor"): (10.87, 2.50, 27.18),
    (512, 81, "bacon_shor"): (8.87, 2.91, 25.81),
    (1024, 100, "bacon_shor"): (13.4, 2.19, 29.35),
    (1024, 121, "bacon_shor"): (11.45, 2.65, 30.34),
}

#: Table 5 — (code, par xfer, n_bits) ->
#:   (L1 speedup, L2 speedup, adder speedup, area reduction, GP).
TABLE5: Dict[Tuple[str, int, int], Tuple[float, float, float, float, float]] = {
    ("steane", 10, 256): (17.417, 0.98, 6.25, 5.07, 31.68),
    ("steane", 10, 512): (17.41, 0.97, 6.33, 6.06, 38.38),
    ("steane", 10, 1024): (18.18, 0.88, 4.93, 9.14, 45.06),
    ("steane", 5, 256): (10.409, 0.98, 4.05, 5.07, 24.99),
    ("steane", 5, 512): (10.408, 0.97, 4.04, 6.06, 24.48),
    ("steane", 5, 1024): (10.96, 0.88, 2.94, 9.14, 26.87),
    ("bacon_shor", 10, 256): (9.61, 1.53, 5.92, 7.43, 43.99),
    ("bacon_shor", 10, 512): (9.61, 2.28, 8.82, 8.87, 78.23),
    ("bacon_shor", 10, 1024): (10.15, 2.00, 8.10, 13.4, 108.53),
    ("bacon_shor", 5, 256): (5.17, 1.53, 3.66, 7.43, 27.19),
    ("bacon_shor", 5, 512): (5.17, 2.28, 5.45, 8.87, 48.37),
    ("bacon_shor", 5, 1024): (5.49, 2.00, 4.99, 13.40, 66.90),
}

#: Section 5.1 — optimal superblock size (blocks), code-independent.
OPTIMAL_SUPERBLOCK = 36

#: Section 5.2 — cache hit rates for the Draper adder.
HIT_RATE_IN_ORDER = 0.20
HIT_RATE_OPTIMIZED = 0.85

#: Figure 2 — compute blocks sufficient for the 64-qubit adder.
FIG2_SUFFICIENT_BLOCKS = 15

#: Abstract — headline factors.
HEADLINE_AREA_FACTOR = 13.0
HEADLINE_SPEEDUP = 8.0

#: Section 5.2 — Steane threshold used in Equation 1.
STEANE_THRESHOLD = 7.5e-5
