"""Sensitivity and ablation analyses around the CQLA design point.

The paper's conclusions rest on projected technology parameters and a
handful of structural choices.  This module quantifies how the headline
metrics move when those inputs move:

* **technology scaling** — failure-rate multipliers around the future
  parameter point, and the recursion level each demands;
* **policy ablation** — L1:L2 interleave ratios versus the paper's 1:2;
* **adder ablation** — in-place (carry-erased) versus out-of-place
  steady-state adders;
* **cache ablation** — hit rate and L1 time across cache capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.cqla import CqlaDesign
from ..core.hierarchy import HierarchyPolicy, MemoryHierarchy
from ..ecc.concatenated import ConcatenatedCode, spec_by_key
from ..physical.params import future_params
from ..sim.hierarchy_sim import simulate_l1_run
from ..sim.scheduler import adder_schedule


@dataclass(frozen=True)
class TechnologyPoint:
    """Reliability of one failure-rate scaling of the future params."""

    failure_scale: float
    p0: float
    level1_failure: float
    level2_failure: float
    level_for_shor_1024: int


def technology_scaling(
    code_key: str,
    scales: Sequence[float] = (0.1, 1.0, 10.0, 100.0, 1000.0),
    shor_budget_per_op: float = 1.0e-11,
) -> List[TechnologyPoint]:
    """Sweep failure-rate multipliers; report per-level reliability."""
    points = []
    spec = spec_by_key(code_key)
    for scale in scales:
        params = future_params().scaled(f"x{scale:g}", scale)
        code = ConcatenatedCode(spec, params)
        try:
            level = code.min_level_for(shor_budget_per_op)
        except ValueError:
            level = -1  # below threshold: no level suffices
        points.append(TechnologyPoint(
            failure_scale=scale,
            p0=params.average_failure_rate(),
            level1_failure=code.failure_rate(1),
            level2_failure=code.failure_rate(2),
            level_for_shor_1024=level,
        ))
    return points


@dataclass(frozen=True)
class PolicyPoint:
    """One interleave ratio and its composite speedup."""

    l1_additions: int
    l2_additions: int
    adder_speedup: float
    l1_op_fraction: float


def policy_ablation(
    design: CqlaDesign,
    parallel_transfers: int = 10,
    ratios: Sequence[tuple] = ((0, 1), (1, 4), (1, 2), (1, 1), (2, 1), (1, 0)),
) -> List[PolicyPoint]:
    """Sweep L1:L2 interleave ratios around the paper's 1:2."""
    hierarchy = MemoryHierarchy(design, parallel_transfers=parallel_transfers)
    s1, s2 = hierarchy.l1_speedup(), hierarchy.l2_speedup()
    points = []
    for l1, l2 in ratios:
        policy = HierarchyPolicy(l1_additions=l1, l2_additions=l2)
        points.append(PolicyPoint(
            l1_additions=l1,
            l2_additions=l2,
            adder_speedup=policy.adder_speedup(s1, s2),
            l1_op_fraction=policy.l1_fraction,
        ))
    return points


@dataclass(frozen=True)
class AdderAblation:
    """Out-of-place vs in-place adder scheduling comparison."""

    n_bits: int
    n_blocks: int
    out_of_place_slots: int
    in_place_slots: int

    @property
    def in_place_penalty(self) -> float:
        return self.in_place_slots / self.out_of_place_slots


def adder_ablation(n_bits: int, n_blocks: int) -> AdderAblation:
    """Cost of erasing carries every addition instead of recycling."""
    return AdderAblation(
        n_bits=n_bits,
        n_blocks=n_blocks,
        out_of_place_slots=adder_schedule(n_bits, n_blocks, False).makespan,
        in_place_slots=adder_schedule(n_bits, n_blocks, True).makespan,
    )


@dataclass(frozen=True)
class CachePoint:
    """Hierarchy behavior at one cache capacity factor."""

    cache_factor: float
    hit_rate: float
    l1_speedup: float


def cache_ablation(
    code_key: str,
    n_bits: int,
    factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0),
    parallel_transfers: int = 10,
) -> List[CachePoint]:
    """Sweep the cache capacity factor of the hierarchy simulator."""
    points = []
    for factor in factors:
        run = simulate_l1_run(
            code_key, n_bits,
            parallel_transfers=parallel_transfers,
            cache_factor=factor,
        )
        points.append(CachePoint(
            cache_factor=factor,
            hit_rate=run.hit_rate,
            l1_speedup=run.l1_speedup,
        ))
    return points


@dataclass(frozen=True)
class MemoryPressurePoint:
    """Area split between regions at one problem size."""

    n_bits: int
    memory_fraction: float
    compute_fraction: float


def memory_pressure(
    code_key: str,
    sizes: Sequence[int] = (32, 128, 512, 1024),
) -> List[MemoryPressurePoint]:
    """How the floorplan shifts toward memory as problems grow."""
    from ..core.design_space import performance_blocks

    points = []
    for n_bits in sizes:
        design = CqlaDesign(code_key, n_bits, performance_blocks(n_bits))
        plan = design.floorplan
        total = plan.area_mm2()
        points.append(MemoryPressurePoint(
            n_bits=n_bits,
            memory_fraction=plan.memory.area_mm2() / total,
            compute_fraction=plan.l2_compute.area_mm2() / total,
        ))
    return points
