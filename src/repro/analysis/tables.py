"""Builders regenerating every table of the paper's evaluation.

Each ``tableN()`` returns structured data; each ``tableN_text()``
renders it in the shape of the published table, with paper values
alongside where they exist for direct comparison.

The ``*_from_store`` variants (and the backend-agnostic
:func:`render_table_from_store` behind the sweep service) render from
sharded-sweep records without computing anything; their ``store``
argument is anything :func:`repro.perf.store.resolve_store` accepts —
a directory, an ``fs:DIR`` / ``sqlite:PATH`` locator, or a backend
instance from :mod:`repro.perf.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.design_space import (
    EngineRow,
    FidelityRow,
    HierarchyRow,
    SpecializationRow,
    TransferRow,
    engine_sweep,
    hierarchy_sweep,
    pareto_rows,
    specialization_sweep,
    transfer_sweep,
)
from ..ecc.concatenated import by_key
from ..ecc.transfer import standard_points, transfer_time_s
from ..physical.params import Op, future_params, now_params
from . import paper_values
from .report import format_table

CODE_KEYS = ("steane", "bacon_shor")
LEVELS = (1, 2)


# ----------------------------------------------------------------------
# Table 1 — physical parameters
# ----------------------------------------------------------------------

def table1() -> List[Tuple[str, float, float, float, float]]:
    """Rows of (operation, now us, future us, now fail, future fail)."""
    now, future = now_params(), future_params()
    rows = []
    for op in Op:
        rows.append((
            op.value,
            now.duration_us(op),
            future.duration_us(op),
            now.failure_rate(op),
            future.failure_rate(op),
        ))
    return rows


def table1_text() -> str:
    return format_table(
        ["operation", "time now (us)", "time future (us)",
         "fail now", "fail future"],
        table1(),
        title="Table 1: physical ion-trap operation parameters",
    )


# ----------------------------------------------------------------------
# Table 2 — error-correction metric summary
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EcMetricRow:
    """One (code, level) row of the Table 2 reproduction."""

    code_key: str
    level: int
    ec_time_s: float
    qubit_area_mm2: float
    transversal_time_s: float
    data_qubits: int
    ancilla_qubits: int


def table2() -> List[EcMetricRow]:
    rows = []
    for code_key in CODE_KEYS:
        code = by_key(code_key)
        for level in LEVELS:
            rows.append(EcMetricRow(
                code_key=code_key,
                level=level,
                ec_time_s=code.ec_time_s(level),
                qubit_area_mm2=code.qubit_area_mm2(level),
                transversal_time_s=code.transversal_gate_time_s(level),
                data_qubits=code.data_ions(level),
                ancilla_qubits=code.ancilla_ions(level),
            ))
    return rows


def table2_text() -> str:
    body = []
    for row in table2():
        key = (row.code_key, row.level)
        body.append([
            f"{row.code_key}-L{row.level}",
            row.ec_time_s, paper_values.EC_TIME_S[key],
            row.qubit_area_mm2, paper_values.QUBIT_AREA_MM2[key],
            row.transversal_time_s, paper_values.TRANSVERSAL_TIME_S[key],
            row.data_qubits, paper_values.QUBIT_COUNTS[key][0],
            row.ancilla_qubits, paper_values.QUBIT_COUNTS[key][1],
        ])
    return format_table(
        ["code", "EC (s)", "paper", "area mm2", "paper",
         "gate (s)", "paper", "data", "paper", "ancilla", "paper"],
        body,
        title="Table 2: error correction metric summary (measured vs paper)",
    )


# ----------------------------------------------------------------------
# Table 3 — transfer network latencies
# ----------------------------------------------------------------------

def table3() -> Dict[Tuple[str, str], float]:
    """The full 4x4 transfer matrix keyed by (source, dest) labels.

    Off-diagonal cells (different code families) are the cross-code
    boundary prices a mixed-code :class:`~repro.sim.levels.HierarchyStack`
    builds its transfer networks from.
    """
    points = standard_points()
    return {
        (src.label, dst.label): transfer_time_s(src, dst)
        for src in points
        for dst in points
    }


def table3_rows() -> List[TransferRow]:
    """Table 3 as sweep rows (the :func:`transfer_sweep` enumeration)."""
    return transfer_sweep()


def table3_from_store(store, *, allow_missing: bool = False) -> List[TransferRow]:
    """Table 3 rows read straight from a sharded-sweep result store.

    ``store`` is a directory path or :class:`repro.perf.store.ResultStore`
    filled by ``python -m repro.sweep run --kernel transfer_cell``
    workers.  Nothing is computed: a store missing any of the 16 cells
    raises :class:`repro.sweep.runner.MissingCells` — unless
    ``allow_missing=True``, which returns ``None`` placeholders so the
    renderer can degrade to ``—`` cells.
    """
    from ..core.design_space import transfer_grid
    from ..sweep.runner import rows_from_store

    return rows_from_store(
        transfer_grid(), TransferRow, store, allow_missing=allow_missing
    )


def _render_table3(rows: List[Optional[TransferRow]]) -> str:
    """The measured matrix with the published value beside each cell.

    ``None`` entries (quarantined/missing cells from an
    ``allow_missing`` load) render as ``—`` against the full
    :func:`~repro.ecc.transfer.standard_points` axes, with a footer
    counting the holes — a degraded table is visibly degraded.
    """
    present = [row for row in rows if row is not None]
    matrix = {(row.source, row.dest): row.transfer_s for row in present}
    if len(present) < len(rows):
        points = [p.label for p in standard_points()]
    else:
        seen = {row.source for row in present}
        points = [p for p in (x.label for x in standard_points()) if p in seen]
    body = []
    for src in points:
        cells = [src]
        for dst in points:
            value = matrix.get((src, dst))
            if value is None:
                cells.append("—")
                continue
            paper = paper_values.TRANSFER_S.get((src, dst))
            paper_text = "?" if paper is None else f"{paper:g}"
            cells.append(f"{value:.3g} ({paper_text})")
        body.append(cells)
    text = format_table(
        ["from \\ to"] + points,
        body,
        title="Table 3: transfer network latency, "
              "measured (paper) in seconds",
    )
    holes = len(rows) - len(present)
    if holes:
        text += f"\n({holes} cell(s) missing/quarantined, rendered as —)"
    return text


def table3_text() -> str:
    return _render_table3(table3_rows())


def table3_text_from_store(store, *, allow_missing: bool = False) -> str:
    """:func:`table3_text`, but rendered from stored records only."""
    return _render_table3(table3_from_store(store, allow_missing=allow_missing))


# ----------------------------------------------------------------------
# Table 4 — specialization results
# ----------------------------------------------------------------------

def table4() -> List[SpecializationRow]:
    return specialization_sweep()


def table4_text() -> str:
    by_config: Dict[Tuple[int, int], Dict[str, SpecializationRow]] = {}
    for row in table4():
        by_config.setdefault((row.n_bits, row.n_blocks), {})[row.code_key] = row
    body = []
    for (n_bits, n_blocks), codes in sorted(by_config.items()):
        st, bs = codes["steane"], codes["bacon_shor"]
        p_st = paper_values.TABLE4[(n_bits, n_blocks, "steane")]
        p_bs = paper_values.TABLE4[(n_bits, n_blocks, "bacon_shor")]
        body.append([
            n_bits, n_blocks,
            st.area_reduction, p_st[0], bs.area_reduction, p_bs[0],
            st.speedup, p_st[1], bs.speedup, p_bs[1],
            st.gain_product, p_st[2], bs.gain_product, p_bs[2],
        ])
    return format_table(
        ["bits", "blocks",
         "R st", "paper", "R bsr", "paper",
         "S st", "paper", "S bsr", "paper",
         "GP st", "paper", "GP bsr", "paper"],
        body,
        title="Table 4: CQLA modular exponentiation (measured vs paper)",
    )


# ----------------------------------------------------------------------
# Table 5 — memory hierarchy results
# ----------------------------------------------------------------------

def table5() -> List[HierarchyRow]:
    return hierarchy_sweep()


def table5_text() -> str:
    body = []
    for row in table5():
        paper = paper_values.TABLE5[
            (row.code_key, row.parallel_transfers, row.n_bits)
        ]
        body.append([
            row.code_key, row.parallel_transfers, row.n_bits,
            row.l1_speedup, paper[0],
            row.l2_speedup, paper[1],
            row.adder_speedup, paper[2],
            row.area_reduction, paper[3],
            row.gain_product, paper[4],
        ])
    return format_table(
        ["code", "par", "bits",
         "S L1", "paper", "S L2", "paper",
         "S adder", "paper", "R", "paper", "GP", "paper"],
        body,
        title="Table 5: memory hierarchy results (measured vs paper)",
    )


def all_tables_text() -> str:
    """Every table, ready for EXPERIMENTS.md or the console."""
    return "\n\n".join([
        table1_text(), table2_text(), table3_text(),
        table4_text(), table5_text(),
    ])


# ----------------------------------------------------------------------
# Extension — generalized-engine design space (not a paper table)
# ----------------------------------------------------------------------

def engine_table(**kwargs) -> List[EngineRow]:
    """Rows of the (depth, policy, workload, prefetch) engine sweep.

    Keyword arguments pass straight through to
    :func:`repro.core.design_space.engine_sweep`.
    """
    return engine_sweep(**kwargs)


def engine_table_from_store(
    store, *, allow_missing: bool = False, **grid_kwargs
) -> List[EngineRow]:
    """Engine-sweep rows read straight from a sharded-sweep result store.

    ``store`` is a directory path or :class:`repro.perf.store.ResultStore`
    filled by ``python -m repro.sweep run`` workers; ``grid_kwargs``
    select the grid exactly as for
    :func:`repro.core.design_space.engine_grid`.  Nothing is computed:
    a store missing (or holding corrupt records for) any grid cell
    raises :class:`repro.sweep.runner.MissingCells`, so a table can
    never silently render from a partial sweep — unless
    ``allow_missing=True``, which keeps ``None`` placeholders for the
    renderer's ``—`` cells and failure footer.
    """
    from ..core.design_space import engine_grid
    from ..sweep.runner import rows_from_store

    return rows_from_store(
        engine_grid(**grid_kwargs), EngineRow, store, allow_missing=allow_missing
    )


def _render_engine_table(
    rows: List[Optional[EngineRow]], grid=None, store=None
) -> str:
    """The engine table; ``None`` rows degrade to ``—`` measured columns.

    A ``None`` row's axis columns come from ``grid`` (the canonical
    cell enumeration the rows were loaded against) so the reader still
    sees *which* configuration is missing; ``store`` supplies the
    quarantine reason for the footer when it holds a failure record.
    """
    body = []
    footer = []
    for index, row in enumerate(rows):
        if row is not None:
            code = row.code_key
            if row.memory_code_key != row.code_key:
                code = f"{row.code_key}/{row.memory_code_key}"
            body.append([
                row.workload, row.n_bits, code, row.depth, row.policy,
                row.prefetch, row.hit_rate, row.speedup,
                row.transfer_bound_fraction, row.transfers, row.makespan_s,
            ])
            continue
        params = grid.cells[index].as_dict() if grid is not None else {}
        code = params.get("code_key", "?")
        if params.get("memory_code_key", code) != code:
            code = f"{code}/{params['memory_code_key']}"
        body.append([
            params.get("workload", "?"), params.get("n_bits", "?"), code,
            params.get("depth", "?"), params.get("policy", "?"),
            params.get("prefetch", "?"), "—", "—", "—", "—", "—",
        ])
        if grid is not None and store is not None:
            from ..perf.store import resolve_store

            record = resolve_store(store).failure(grid.cells[index].key)
            failure = (record or {}).get("failure", {})
            footer.append(
                f"  missing {grid.cells[index].key}: "
                + (
                    f"{failure.get('kind', '?')} "
                    f"({failure.get('exception_type', '?')} after "
                    f"{failure.get('attempts', '?')} attempt(s))"
                    if record
                    else "no record (never computed, or torn)"
                )
            )
    text = format_table(
        ["workload", "bits", "code", "depth", "policy", "prefetch",
         "hit rate", "speedup", "xfer-bound", "transfers", "makespan"],
        body,
        title=("Extension: hierarchy-engine design space "
               "(depth x policy x workload x prefetch; "
               "code is compute[/memory] family)"),
    )
    holes = sum(1 for row in rows if row is None)
    if holes:
        text += f"\n({holes} cell(s) missing/quarantined, rendered as —)"
        if footer:
            text += "\n" + "\n".join(footer)
    return text


def engine_table_text(**kwargs) -> str:
    """The engine design space rendered like the paper tables.

    The ``makespan`` column is the simulated compute-level completion
    time; comparing a workload's ``none`` row (demand fetching on the
    reservation model) against its prefetcher rows (split-transaction
    model) reads off the transfer-overlap win directly.
    """
    return _render_engine_table(engine_table(**kwargs))


def engine_table_text_from_store(
    store, *, allow_missing: bool = False, **grid_kwargs
) -> str:
    """:func:`engine_table_text`, but rendered from stored records only.

    ``allow_missing=True`` renders a degraded table (``—`` measured
    columns, a footer naming each hole and its quarantine reason)
    instead of raising on an incomplete store.
    """
    from ..core.design_space import engine_grid

    return render_table_from_store(
        engine_grid(**grid_kwargs), store, allow_missing=allow_missing
    )


# ----------------------------------------------------------------------
# Extension — time-vs-fidelity pareto (noise-aware residency)
# ----------------------------------------------------------------------

def fidelity_table(**kwargs) -> List[FidelityRow]:
    """Rows of the noise-aware engine sweep (the ``fidelity`` axis).

    Keyword arguments pass straight through to
    :func:`repro.core.design_space.engine_sweep`; ``fidelity`` defaults
    to ``True`` (the shared Monte Carlo calibration budget) instead of
    off.
    """
    kwargs.setdefault("fidelity", True)
    return engine_sweep(**kwargs)


def fidelity_table_from_store(
    store, *, allow_missing: bool = False, **grid_kwargs
) -> List[FidelityRow]:
    """Fidelity-sweep rows read straight from a sharded-sweep store.

    ``grid_kwargs`` select the grid exactly as for
    :func:`repro.core.design_space.fidelity_grid` (including the
    ``fidelity_trials``/``fidelity_seed`` budget, which is part of cell
    identity).  Missing-cell semantics match
    :func:`engine_table_from_store`.
    """
    from ..core.design_space import fidelity_grid
    from ..sweep.runner import rows_from_store

    return rows_from_store(
        fidelity_grid(**grid_kwargs), FidelityRow, store,
        allow_missing=allow_missing,
    )


def _render_fidelity_table(
    rows: List[Optional[FidelityRow]], grid=None, store=None
) -> str:
    """The time-vs-fidelity table; ``*`` marks the Pareto front.

    The front is computed per problem instance — each (workload, bits)
    group, since everything else on the row (stack codes, depth,
    policy, prefetcher, port width) is a design choice — by
    :func:`repro.core.design_space.pareto_rows`.  ``None`` rows degrade
    exactly as in :func:`_render_engine_table`.
    """
    groups: Dict[Tuple[str, int], List[FidelityRow]] = {}
    for row in rows:
        if row is not None:
            groups.setdefault((row.workload, row.n_bits), []).append(row)
    on_front = set()
    for group in groups.values():
        on_front.update(id(row) for row in pareto_rows(group))
    body = []
    footer = []
    for index, row in enumerate(rows):
        if row is not None:
            code = row.code_key
            if row.memory_code_key != row.code_key:
                code = f"{row.code_key}/{row.memory_code_key}"
            body.append([
                row.workload, row.n_bits, code, row.depth, row.policy,
                row.prefetch, row.makespan_s, row.logical_error,
                row.transit_error,
                "*" if id(row) in on_front else "",
            ])
            continue
        params = grid.cells[index].as_dict() if grid is not None else {}
        code = params.get("code_key", "?")
        if params.get("memory_code_key", code) != code:
            code = f"{code}/{params['memory_code_key']}"
        body.append([
            params.get("workload", "?"), params.get("n_bits", "?"), code,
            params.get("depth", "?"), params.get("policy", "?"),
            params.get("prefetch", "?"), "—", "—", "—", "",
        ])
        if grid is not None and store is not None:
            from ..perf.store import resolve_store

            record = resolve_store(store).failure(grid.cells[index].key)
            failure = (record or {}).get("failure", {})
            footer.append(
                f"  missing {grid.cells[index].key}: "
                + (
                    f"{failure.get('kind', '?')} "
                    f"({failure.get('exception_type', '?')} after "
                    f"{failure.get('attempts', '?')} attempt(s))"
                    if record
                    else "no record (never computed, or torn)"
                )
            )
    text = format_table(
        ["workload", "bits", "code", "depth", "policy", "prefetch",
         "makespan", "logical err", "transit err", "pareto"],
        body,
        title=("Extension: time vs fidelity "
               "(* = pareto front within each workload x bits group)"),
    )
    text += ("\n(* marks rows no other design in the group beats on both "
             "makespan and logical error)")
    holes = sum(1 for row in rows if row is None)
    if holes:
        text += f"\n({holes} cell(s) missing/quarantined, rendered as —)"
        if footer:
            text += "\n" + "\n".join(footer)
    return text


def fidelity_table_text(**kwargs) -> str:
    """The time-vs-fidelity design space rendered like the paper tables.

    Each row prices one engine cell in both domains: ``makespan`` is
    the unchanged engine completion time, ``logical err`` the
    residency-accrued failure probability, and ``*`` marks the rows on
    the group's time-vs-fidelity Pareto front.
    """
    return _render_fidelity_table(fidelity_table(**kwargs))


def fidelity_table_text_from_store(
    store, *, allow_missing: bool = False, **grid_kwargs
) -> str:
    """:func:`fidelity_table_text`, but rendered from stored records only."""
    from ..core.design_space import fidelity_grid

    return render_table_from_store(
        fidelity_grid(**grid_kwargs), store, allow_missing=allow_missing
    )


#: Grid kernels with a registered table renderer (grid, rows -> text).
_STORE_RENDERERS = {
    "engine_cell": lambda grid, rows, store: _render_engine_table(
        rows, grid=grid, store=store
    ),
    "fidelity_cell": lambda grid, rows, store: _render_fidelity_table(
        rows, grid=grid, store=store
    ),
    "transfer_cell": lambda grid, rows, store: _render_table3(rows),
}


def render_table_from_store(grid, store, *, allow_missing: bool = False) -> str:
    """Render ``grid``'s table from any store backend, computing nothing.

    The backend-agnostic entry point behind the sweep service's
    ``/v1/table`` endpoint and the ``*_text_from_store`` wrappers:
    ``store`` is anything :func:`repro.perf.store.resolve_store`
    accepts — a directory, an ``fs:DIR`` / ``sqlite:PATH`` locator, or
    a backend instance — and ``grid`` selects both the cell enumeration
    and the renderer (``engine_cell`` -> the engine design-space table,
    ``transfer_cell`` -> Table 3).  Identical records render to
    byte-identical text whichever backend holds them; the CI
    ``sweep-service`` job asserts exactly that across fs and sqlite.
    """
    renderer = _STORE_RENDERERS.get(grid.kernel)
    if renderer is None:
        raise ValueError(
            f"no table renderer for {grid.kernel} grids "
            f"(renderable: {', '.join(sorted(_STORE_RENDERERS))})"
        )
    from ..sweep.runner import kernel_registry, rows_from_store

    _, row_type = kernel_registry()[grid.kernel]
    rows = rows_from_store(grid, row_type, store, allow_missing=allow_missing)
    return renderer(grid, rows, store)
