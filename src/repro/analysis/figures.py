"""Builders regenerating every figure series of the paper's evaluation.

Each ``figN()`` returns the numeric series behind the published plot;
each ``figN_text()`` renders them as aligned columns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..arch.bandwidth import optimal_superblock_size, sweep as bandwidth_sweep
from ..core.design_space import PAPER_INPUT_SIZES, performance_blocks
from ..sim.cache import HitRatePoint, hit_rate_study
from ..sim.comm import CommBreakdown, modexp_breakdown, qft_breakdown
from ..sim.hierarchy_sim import DEFAULT_COMPUTE_QUBITS
from ..sim.scheduler import adder_balanced_utilization, parallelism_profiles
from .report import format_series, format_table

#: Block counts of the Figure 6a x-axis.
FIG6A_BLOCK_COUNTS = (4, 16, 36, 64, 100, 144, 196)

#: Superblock sizes of the Figure 6b x-axis.
FIG6B_BLOCK_COUNTS = tuple(range(4, 84, 4))

#: Adder sizes of the Figure 7 x-axis.
FIG7_SIZES = (64, 128, 256, 512, 1024)

#: Register sizes of the Figure 8b x-axis.
FIG8B_SIZES = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)


# ----------------------------------------------------------------------
# Figure 2 — adder parallelism profile
# ----------------------------------------------------------------------

def fig2(n_bits: int = 64, n_blocks: int = 15) -> Dict[str, object]:
    """Gates in flight per cycle: unlimited vs ``n_blocks`` blocks."""
    return parallelism_profiles(n_bits, n_blocks)


def fig2_text(n_bits: int = 64, n_blocks: int = 15) -> str:
    data = fig2(n_bits, n_blocks)
    unlimited: List[int] = data["unlimited"]
    capped: List[int] = data["capped"]
    span = max(len(unlimited), len(capped))
    unlimited = unlimited + [0] * (span - len(unlimited))
    capped = capped + [0] * (span - len(capped))
    text = format_series(
        "cycle",
        {"unlimited": unlimited, f"{n_blocks} blocks": capped},
        list(range(span)),
        title=(
            f"Figure 2: {n_bits}-qubit adder parallelism "
            f"(makespan {data['makespan_unlimited']} vs "
            f"{data['makespan_capped']} cycles)"
        ),
    )
    return text


# ----------------------------------------------------------------------
# Figure 6a — utilization vs compute blocks
# ----------------------------------------------------------------------

def fig6a(
    sizes: Sequence[int] = PAPER_INPUT_SIZES,
    block_counts: Sequence[int] = FIG6A_BLOCK_COUNTS,
) -> Dict[int, List[float]]:
    """Per-adder-size utilization series over block counts."""
    return {
        n: [adder_balanced_utilization(n, k) for k in block_counts]
        for n in sizes
    }


def fig6a_text() -> str:
    series = fig6a()
    return format_series(
        "blocks",
        {f"{n}-qubit": vals for n, vals in series.items()},
        list(FIG6A_BLOCK_COUNTS),
        title="Figure 6a: overall utilization vs number of compute blocks",
    )


# ----------------------------------------------------------------------
# Figure 6b — superblock bandwidth crossover
# ----------------------------------------------------------------------

def fig6b(block_counts: Sequence[int] = FIG6B_BLOCK_COUNTS):
    """The three bandwidth curves plus the crossover size."""
    return {
        "points": bandwidth_sweep(block_counts),
        "crossover": optimal_superblock_size(),
    }


def fig6b_text() -> str:
    data = fig6b()
    rows = [
        (p.n_blocks, p.available, p.required_draper, p.required_worst_case)
        for p in data["points"]
    ]
    return format_table(
        ["blocks", "B/W available", "B/W required (Draper)",
         "B/W required (worst case)"],
        rows,
        title=(
            "Figure 6b: superblock bandwidth "
            f"(crossover at {data['crossover']} blocks; paper: 36)"
        ),
    )


# ----------------------------------------------------------------------
# Figure 7 — cache hit rates
# ----------------------------------------------------------------------

def fig7(
    sizes: Sequence[int] = FIG7_SIZES,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
) -> List[HitRatePoint]:
    return hit_rate_study(sizes, compute_qubits)


def fig7_text(sizes: Sequence[int] = FIG7_SIZES) -> str:
    points = fig7(sizes)
    by_key = {}
    capacities = sorted({p.capacity for p in points})
    for p in points:
        by_key[(p.n_bits, p.policy, p.capacity)] = p.hit_rate
    rows = []
    for n in sizes:
        row = [n]
        for cap in capacities:
            row.append(by_key[(n, "in-order", cap)])
        for cap in capacities:
            row.append(by_key[(n, "optimized", cap)])
        rows.append(row)
    headers = (
        ["bits"]
        + [f"in-order c={c}" for c in capacities]
        + [f"optimized c={c}" for c in capacities]
    )
    return format_table(
        headers, rows,
        title="Figure 7: cache hit rate by fetch policy and cache size",
    )


# ----------------------------------------------------------------------
# Figure 8 — computation vs communication
# ----------------------------------------------------------------------

def fig8a(
    sizes: Sequence[int] = PAPER_INPUT_SIZES,
    code_key: str = "bacon_shor",
) -> List[CommBreakdown]:
    """Modular exponentiation computation/communication totals."""
    return [
        modexp_breakdown(code_key, n, performance_blocks(n)) for n in sizes
    ]


def fig8a_text() -> str:
    rows = [
        (b.n_bits, b.computation_hours, b.communication_hours, b.ratio)
        for b in fig8a()
    ]
    return format_table(
        ["bits", "computation (h)", "communication (h)", "ratio"],
        rows,
        title="Figure 8a: modular exponentiation times (Bacon-Shor)",
    )


def fig8b(
    sizes: Sequence[int] = FIG8B_SIZES,
    code_key: str = "bacon_shor",
) -> List[CommBreakdown]:
    """QFT computation/communication totals."""
    return [qft_breakdown(code_key, n) for n in sizes]


def fig8b_text() -> str:
    rows = [
        (b.n_bits, b.computation_s, b.communication_s, b.ratio)
        for b in fig8b()
    ]
    return format_table(
        ["register", "computation (s)", "communication (s)", "ratio"],
        rows,
        title="Figure 8b: QFT times (Bacon-Shor)",
    )


#: Name -> builder mapping for programmatic access.
FIGURE_BUILDERS = {
    "fig2": fig2, "fig6a": fig6a, "fig6b": fig6b,
    "fig7": fig7, "fig8a": fig8a, "fig8b": fig8b,
}


def all_figures_text() -> str:
    return "\n\n".join([
        fig2_text(), fig6a_text(), fig6b_text(),
        fig7_text(), fig8a_text(), fig8b_text(),
    ])
