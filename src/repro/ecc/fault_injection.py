"""Circuit-level fault injection for EC procedures.

The code-capacity Monte Carlo of :mod:`repro.ecc.montecarlo` assumes
perfect encoding and syndrome extraction.  This module injects faults
*inside* the circuits: after every gate of a Clifford circuit, each
participating qubit suffers a depolarizing fault with probability ``p``;
the faults are propagated through the remainder of the circuit in the
Heisenberg picture, composed into one final Pauli error, and handed to
the code's decoder.

This is the standard extended-rectangle-style accounting (without
flag/verification modeling) and provides the circuit-level pseudo-
threshold sanity check behind the paper's reliance on threshold values
from the literature (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .clifford import CliffordGate, conjugate
from .pauli import Pauli
from .stabilizer import DecodingError, StabilizerCode

_PAULI_KINDS = ("X", "Y", "Z")


@dataclass(frozen=True)
class InjectionResult:
    """Outcome of a circuit-level fault-injection campaign."""

    physical_error_rate: float
    trials: int
    failures: int
    fault_locations: int

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.trials


def fault_locations(circuit: Sequence[CliffordGate]) -> int:
    """Number of (gate, qubit) fault sites in a circuit."""
    return sum(len(g.qubits) for g in circuit)


def sample_circuit_error(
    circuit: Sequence[CliffordGate],
    n: int,
    p: float,
    rng: np.random.Generator,
) -> Pauli:
    """One sampled residual Pauli error after executing ``circuit``.

    Faults occurring after gate ``i`` are conjugated through gates
    ``i+1 ..`` so the returned operator acts on the circuit's output.
    """
    total = Pauli.identity(n)
    gates = list(circuit)
    for i, gate in enumerate(gates):
        for q in gate.qubits:
            if rng.random() < p:
                kind = _PAULI_KINDS[rng.integers(0, 3)]
                fault = Pauli.single(n, q, kind)
                propagated = conjugate(fault, gates[i + 1:])
                total = propagated * total
    return total


def inject_encoder_faults(
    code: StabilizerCode,
    encoder: Sequence[CliffordGate],
    physical_error_rate: float,
    trials: int = 2000,
    seed: Optional[int] = None,
) -> InjectionResult:
    """Fault-inject an encoding circuit and decode the residual error.

    A trial fails when the residual error after one ideal EC round is a
    logical operator (or falls outside the decoder's table).
    """
    if not 0.0 <= physical_error_rate <= 1.0:
        raise ValueError("error rate must be a probability")
    if trials <= 0:
        raise ValueError("need a positive trial count")
    rng = np.random.default_rng(seed)
    gates = list(encoder)
    failures = 0
    for _ in range(trials):
        error = sample_circuit_error(gates, code.n, physical_error_rate, rng)
        try:
            _, ok = code.correct(error)
        except DecodingError:
            ok = False
        if not ok:
            failures += 1
    return InjectionResult(
        physical_error_rate=physical_error_rate,
        trials=trials,
        failures=failures,
        fault_locations=fault_locations(gates),
    )


def steane_encoder_injection(
    physical_error_rate: float,
    trials: int = 2000,
    seed: Optional[int] = None,
) -> InjectionResult:
    """Convenience: fault-inject the Steane encoder."""
    from .steane import encoder_circuit, steane_code

    return inject_encoder_faults(
        steane_code(), encoder_circuit(), physical_error_rate,
        trials=trials, seed=seed,
    )


def bacon_shor_encoder_injection(
    physical_error_rate: float,
    trials: int = 2000,
    seed: Optional[int] = None,
) -> InjectionResult:
    """Convenience: fault-inject the Bacon-Shor encoder."""
    from .bacon_shor import bacon_shor_code, encoder_circuit

    return inject_encoder_faults(
        bacon_shor_code(), encoder_circuit(), physical_error_rate,
        trials=trials, seed=seed,
    )


def circuit_pseudo_threshold(
    code: StabilizerCode,
    encoder: Sequence[CliffordGate],
    rates: Sequence[float] = (0.0003, 0.001, 0.003, 0.01, 0.03),
    trials: int = 3000,
    seed: Optional[int] = None,
) -> Tuple[float, List[InjectionResult]]:
    """Scan rates; return the crossing of logical vs physical rate.

    Circuit-level thresholds are lower than code-capacity ones because
    a single fault can spread through later gates — the effect the
    paper's fault-tolerant schedules (verification, gauge repetition)
    exist to contain.
    """
    results = [
        inject_encoder_faults(code, encoder, p, trials=trials, seed=seed)
        for p in rates
    ]
    crossing = rates[-1]
    for prev, curr in zip(results, results[1:]):
        if (prev.logical_error_rate < prev.physical_error_rate
                and curr.logical_error_rate >= curr.physical_error_rate):
            crossing = curr.physical_error_rate
            break
    return crossing, results
