"""The Bacon-Shor [[9,1,3]] subsystem code (Section 4.1).

An operator quantum error-correcting subsystem derived from Shor's
nine-qubit code [34] with the optimizations of Bacon [4] and Poulin [5]:
syndrome information is obtained from *two-qubit gauge measurements*
between nearest neighbors on a 3x3 qubit grid, which is what makes the
code "faster and spatially smaller than the [[7,1,3]] code" in the
paper's words — no encoded ancilla, no verification, nearest-neighbor
interactions only.

Qubit ``(r, c)`` of the grid is index ``3*r + c``.  Gauge generators are
``X`` on vertical nearest-neighbor pairs and ``Z`` on horizontal pairs;
stabilizers are double rows of X and double columns of Z; the logical X
is a full row of X and logical Z a full column of Z.
"""

from __future__ import annotations

from typing import List, Tuple

from .clifford import CliffordGate, cnot, h
from .pauli import Pauli
from .stabilizer import StabilizerCode


def _grid_index(row: int, col: int) -> int:
    return 3 * row + col


def _pauli_on(indices, kind: str, n: int = 9) -> Pauli:
    label = "".join(kind if q in indices else "I" for q in range(n))
    return Pauli.from_label(label)


def x_gauge_pairs() -> List[Tuple[int, int]]:
    """Vertical nearest-neighbor pairs carrying X-type gauge operators."""
    return [
        (_grid_index(r, c), _grid_index(r + 1, c))
        for r in range(2)
        for c in range(3)
    ]


def z_gauge_pairs() -> List[Tuple[int, int]]:
    """Horizontal nearest-neighbor pairs carrying Z-type gauge operators."""
    return [
        (_grid_index(r, c), _grid_index(r, c + 1))
        for r in range(3)
        for c in range(2)
    ]


def bacon_shor_code() -> StabilizerCode:
    """Construct the Bacon-Shor [[9,1,3]] subsystem code."""
    stab_x = [
        _pauli_on([_grid_index(r, c) for r in rows for c in range(3)], "X")
        for rows in ((0, 1), (1, 2))
    ]
    stab_z = [
        _pauli_on([_grid_index(r, c) for c in cols for r in range(3)], "Z")
        for cols in ((0, 1), (1, 2))
    ]
    gauge = [_pauli_on(pair, "X") for pair in x_gauge_pairs()]
    gauge += [_pauli_on(pair, "Z") for pair in z_gauge_pairs()]
    logical_x = _pauli_on([_grid_index(0, c) for c in range(3)], "X")
    logical_z = _pauli_on([_grid_index(r, 0) for r in range(3)], "Z")
    return StabilizerCode(
        name="Bacon-Shor [[9,1,3]]",
        n=9,
        k=1,
        d=3,
        stabilizers=stab_x + stab_z,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
        gauge_ops=gauge,
    )


def encoder_circuit() -> List[CliffordGate]:
    """Encoder mapping ``|000000000>`` to a logical ``|0>`` gauge state.

    Under this module's gauge convention (X gauge vertical, logical Z a
    column of Z) the logical ``|0>`` is a product of *columns*, each in
    the X-basis GHZ state ``(|+++> + |--->)/sqrt(2)`` whose stabilizers
    are the two vertical X gauge pairs and ZZZ (so the state is gauge
    fixed, stabilized by both Z double-column stabilizers and by the
    logical Z).  Each column takes 2 H + 2 CNOT; 12 gates total.

    Correctness is verified in the test suite by Clifford conjugation of
    the input Z stabilizers through this circuit.
    """
    gates: List[CliffordGate] = []
    for c in range(3):
        top, mid, bot = (_grid_index(r, c) for r in range(3))
        gates.append(h(top))
        gates.append(h(bot))
        gates.append(cnot(top, mid))
        gates.append(cnot(bot, mid))
    return gates
