"""Clifford-circuit conjugation of Pauli operators.

Implements the Heisenberg picture: a Clifford circuit ``U`` transforms a
stabilizer ``S`` of its input state into ``U S U^dag`` on its output.
This is all that is needed to *verify* encoder circuits (the conjugated
``Z_i`` generators of ``|0...0>`` must generate the code's stabilizer
group together with the logical Z), and to propagate Pauli errors through
EC circuitry.

The Pauli convention matches :class:`repro.ecc.pauli.Pauli`: an operator
is ``i^phase * prod_q X_q^x Z_q^z`` with qubit-major canonical ordering.
In this convention CNOT conjugation introduces no phase, H contributes
``(-1)^(xz)`` and S contributes ``i^x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .pauli import Pauli


@dataclass(frozen=True)
class CliffordGate:
    """One Clifford gate: ``name`` in {H, S, SDG, X, Y, Z, CNOT}."""

    name: str
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        expected = 2 if self.name == "CNOT" else 1
        if len(self.qubits) != expected:
            raise ValueError(f"{self.name} takes {expected} qubit(s)")
        if self.name == "CNOT" and self.qubits[0] == self.qubits[1]:
            raise ValueError("CNOT control and target must differ")


def h(q: int) -> CliffordGate:
    return CliffordGate("H", (q,))


def s(q: int) -> CliffordGate:
    return CliffordGate("S", (q,))


def sdg(q: int) -> CliffordGate:
    return CliffordGate("SDG", (q,))


def x(q: int) -> CliffordGate:
    return CliffordGate("X", (q,))


def y(q: int) -> CliffordGate:
    return CliffordGate("Y", (q,))


def z(q: int) -> CliffordGate:
    return CliffordGate("Z", (q,))


def cnot(c: int, t: int) -> CliffordGate:
    return CliffordGate("CNOT", (c, t))


def conjugate(pauli: Pauli, gates: Iterable[CliffordGate]) -> Pauli:
    """Return ``U P U^dag`` for the circuit ``U`` given gate by gate.

    Gates are applied in circuit order (the first gate acts first on the
    state, hence innermost in the conjugation).
    """
    xs = list(pauli.x)
    zs = list(pauli.z)
    phase = pauli.phase
    for gate in gates:
        name = gate.name
        if name == "H":
            (q,) = gate.qubits
            phase += 2 * xs[q] * zs[q]
            xs[q], zs[q] = zs[q], xs[q]
        elif name == "S":
            (q,) = gate.qubits
            phase += xs[q]
            zs[q] ^= xs[q]
        elif name == "SDG":
            (q,) = gate.qubits
            phase += 3 * xs[q]
            zs[q] ^= xs[q]
        elif name == "X":
            (q,) = gate.qubits
            phase += 2 * zs[q]
        elif name == "Z":
            (q,) = gate.qubits
            phase += 2 * xs[q]
        elif name == "Y":
            (q,) = gate.qubits
            phase += 2 * (xs[q] ^ zs[q])
        elif name == "CNOT":
            c, t = gate.qubits
            xs[t] ^= xs[c]
            zs[c] ^= zs[t]
        else:
            raise ValueError(f"unknown Clifford gate {name!r}")
    return Pauli(x=tuple(xs), z=tuple(zs), phase=phase % 4)


def gf2_solve(rows: np.ndarray, target: np.ndarray) -> List[int]:
    """Solve ``sum_{i in I} rows[i] = target`` over GF(2).

    Returns the list of selected row indices ``I`` or raises
    ``ValueError`` when the target is outside the rowspan.
    """
    rows = np.asarray(rows, dtype=np.uint8) % 2
    target = np.asarray(target, dtype=np.uint8) % 2
    n_rows = rows.shape[0]
    # Augment each row with an indicator block so the combination can be
    # read off after elimination over the leading (symplectic) columns.
    indicator = np.eye(n_rows, dtype=np.uint8)
    work = np.hstack([rows.copy(), indicator])
    n_cols = rows.shape[1]
    aug, _ = _row_reduce_leading(work, n_cols)
    residual = target.copy()
    combo = np.zeros(n_rows, dtype=np.uint8)
    for row in aug:
        lead = _leading_index(row[:n_cols])
        if lead is None:
            continue
        if residual[lead]:
            residual ^= row[:n_cols]
            combo ^= row[n_cols:]
    if residual.any():
        raise ValueError("target not in GF(2) rowspan")
    return [i for i in range(n_rows) if combo[i]]


def _row_reduce_leading(matrix: np.ndarray, n_cols: int) -> Tuple[np.ndarray, List[int]]:
    """Row reduce over the first ``n_cols`` columns, carrying the rest."""
    m = matrix.copy()
    rows = m.shape[0]
    pivots: List[int] = []
    r = 0
    for c in range(n_cols):
        if r >= rows:
            break
        hits = np.nonzero(m[r:, c])[0]
        if hits.size == 0:
            continue
        pr = r + int(hits[0])
        if pr != r:
            m[[r, pr]] = m[[pr, r]]
        for other in range(rows):
            if other != r and m[other, c]:
                m[other] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def _leading_index(row: np.ndarray):
    nz = np.nonzero(row)[0]
    return int(nz[0]) if nz.size else None


def product_of(paulis: Sequence[Pauli], indices: Iterable[int]) -> Pauli:
    """Multiply out ``paulis[i]`` for ``i`` in ``indices`` (left to right)."""
    indices = list(indices)
    if not paulis:
        raise ValueError("need at least one Pauli for sizing")
    acc = Pauli.identity(paulis[0].n)
    for i in indices:
        acc = acc * paulis[i]
    return acc


def stabilizer_group_contains(
    generators: Sequence[Pauli], element: Pauli
) -> bool:
    """True iff ``element`` (with its sign) is generated by ``generators``.

    Solves the symplectic part over GF(2), then multiplies the selected
    generators and compares phases — so ``-S`` is *not* contained when
    only ``+S`` is generated.
    """
    rows = np.vstack([g.symplectic() for g in generators])
    try:
        combo = gf2_solve(rows, element.symplectic())
    except ValueError:
        return False
    produced = product_of(list(generators), combo)
    return produced.phase == element.phase
