"""Cycle-accurate level-1 error-correction schedules (Section 4.1).

The paper quotes the level-1 Steane syndrome-extraction circuit at 154
fundamental cycles "considering communication", giving ~0.003 s per EC
(two syndromes), and 0.0012 s for the Bacon-Shor code.  This module
*reconstructs* those schedules: ions are placed on the logical-qubit tile
grid and every fundamental operation — splits, ballistic moves, cooling,
laser gates, measurement — is issued to the
:class:`~repro.physical.machine.TrapMachine`, which resolves junction
contention and reports the makespan.

Schedule structure per code:

* **Steane [[7,1,3]]** (encoded-ancilla EC): prepare a 7-ion ancilla
  block with the encoder circuit (serialized CNOT shuttling), verify it
  against correlated errors with a second 7-ion block (two rounds),
  interact transversally with the data block, measure, decode, correct.
* **Bacon-Shor [[9,1,3]]** (gauge-measurement EC): twelve bare ancilla
  ions sit between the 3x3 data grid; each two-qubit gauge operator is
  measured by a short nearest-neighbor shuttle.  Gauge rounds are
  repeated twice for measurement-fault robustness and issued in three
  laser groups, matching the control assumptions of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

from ..physical.layout import Coord, GridSpec
from ..physical.machine import MicroOp, TrapMachine
from ..physical.params import DEFAULT_PARAMS, Op, PhysicalParams
from . import bacon_shor, steane

#: Number of laser interaction groups that can be driven concurrently
#: (MEMS mirror banks); gates beyond this serialize within a phase.
LASER_GROUPS = 3

#: Gauge-measurement repetitions for the Bacon-Shor code (bare-ancilla
#: measurements are repeated for measurement-fault robustness).
GAUGE_REPETITIONS = 2

#: Ancilla-verification rounds for Steane encoded-ancilla preparation
#: (one transversal check against correlated X errors, per Steane's
#: original construction — the paper's 14 ancilla = 7 syndrome + 7
#: verification ions for the active syndrome type).
VERIFY_ROUNDS = 1


@dataclass(frozen=True)
class SyndromeCost:
    """Cycle cost of extracting one syndrome type at level 1."""

    code_name: str
    cycles: int
    op_counts: Dict[Op, int]
    stall_cycles: int

    @property
    def duration_s(self) -> float:
        from ..physical.params import CYCLE_TIME_US

        return self.cycles * CYCLE_TIME_US / 1.0e6


def _move(machine: TrapMachine, ion: str, dest: Coord) -> None:
    """Split, shuttle and cool one ion (issued as sequential steps)."""
    machine.run([
        [MicroOp(Op.SPLIT, (ion,))],
        [MicroOp(Op.MOVE, (ion,), dest=dest)],
        [MicroOp(Op.COOL, (ion,))],
    ])


def _interact(machine: TrapMachine, mover: str, target: str) -> None:
    """Shuttle ``mover`` to ``target``, apply a CNOT, shuttle it home."""
    home = machine.position(mover)
    _move(machine, mover, machine.position(target))
    machine.run([[MicroOp(Op.DOUBLE_GATE, (mover, target))]])
    _move(machine, mover, home)


def _parallel_interactions(
    machine: TrapMachine, pairs: Sequence[Tuple[str, str]]
) -> None:
    """Run mover->target interactions in laser groups of LASER_GROUPS."""
    for start in range(0, len(pairs), LASER_GROUPS):
        group = pairs[start:start + LASER_GROUPS]
        homes = {mover: machine.position(mover) for mover, _ in group}
        machine.run([
            [MicroOp(Op.SPLIT, (mover,)) for mover, _ in group],
            [
                MicroOp(Op.MOVE, (mover,), dest=machine.position(target))
                for mover, target in group
            ],
            [MicroOp(Op.COOL, (mover,)) for mover, _ in group],
            [MicroOp(Op.DOUBLE_GATE, (mover, target)) for mover, target in group],
            [
                MicroOp(Op.MOVE, (mover,), dest=homes[mover])
                for mover, _ in group
            ],
        ])


# ----------------------------------------------------------------------
# Steane [[7,1,3]] level-1 syndrome
# ----------------------------------------------------------------------

#: Tile grid for the Steane L1 qubit: 28 ions with channel factor 2.15
#: (see repro.ecc.concatenated.STEANE_SPEC) — about 9 x 10 regions.
_STEANE_GRID = GridSpec(rows=9, cols=10)

_STEANE_DATA_COL = 1
_STEANE_ANC_COL = 4
_STEANE_VERIFY_COL = 6


def _steane_machine(params: PhysicalParams) -> TrapMachine:
    machine = TrapMachine(grid=_STEANE_GRID, params=params)
    for i in range(7):
        machine.add_ion(f"d{i}", (i + 1, _STEANE_DATA_COL))
        machine.add_ion(f"a{i}", (i + 1, _STEANE_ANC_COL))
        machine.add_ion(f"v{i}", (i + 1, _STEANE_VERIFY_COL))
    return machine


def steane_syndrome_schedule(
    params: PhysicalParams = DEFAULT_PARAMS,
) -> SyndromeCost:
    """Extract one Steane syndrome; return its cycle cost.

    Bit-flip and phase-flip syndromes have mirror-image schedules (the
    ancilla preparation basis differs by transversal Hadamards, one
    cycle), so one schedule costed here represents either.
    """
    machine = _steane_machine(params)

    # Phase 1: encode the ancilla block |0>_L (3 H + 9 CNOT).  The CNOT
    # chain is serialized: each pivot shuttles to its row targets.
    pivot_gates = [(f"a{g.qubits[0]}", f"a{g.qubits[1]}")
                   for g in steane.encoder_circuit() if g.name == "CNOT"]
    machine.run([[MicroOp(Op.SINGLE_GATE, (f"a{p}",)) for p in steane.ROW_PIVOTS]])
    for control, target in pivot_gates:
        _interact(machine, control, target)

    # Phase 2: verify the ancilla block against correlated errors using
    # the verification ions (VERIFY_ROUNDS transversal rounds + measure).
    for _ in range(VERIFY_ROUNDS):
        _parallel_interactions(
            machine, [(f"v{i}", f"a{i}") for i in range(7)]
        )
        machine.run([[MicroOp(Op.MEASURE, (f"v{i}",)) for i in range(7)]])

    # Phase 3: transversal CNOT between data and ancilla blocks.
    _parallel_interactions(machine, [(f"a{i}", f"d{i}") for i in range(7)])

    # Phase 4: measure the ancilla block; decode classically (one cycle
    # budget) and apply the conditional transversal correction.
    result = machine.run([
        [MicroOp(Op.MEASURE, (f"a{i}",)) for i in range(7)],
        [MicroOp(Op.SINGLE_GATE, (f"d{i}",)) for i in range(7)],
    ])
    return SyndromeCost(
        code_name="Steane [[7,1,3]]",
        cycles=result.cycles,
        op_counts=result.op_counts,
        stall_cycles=result.stall_cycles,
    )


# ----------------------------------------------------------------------
# Bacon-Shor [[9,1,3]] level-1 syndrome
# ----------------------------------------------------------------------

#: Compact 7x7 tile: 3x3 data grid at odd (row, col) coordinates with
#: gauge ancilla interleaved between neighbors (21 ions, 49 regions).
_BS_GRID = GridSpec(rows=7, cols=7)


def _bs_data_coord(r: int, c: int) -> Coord:
    return (2 * r + 1, 2 * c + 1)


def _bs_machine(params: PhysicalParams) -> TrapMachine:
    machine = TrapMachine(grid=_BS_GRID, params=params)
    for r in range(3):
        for c in range(3):
            machine.add_ion(f"d{3 * r + c}", _bs_data_coord(r, c))
    # X-gauge ancilla between vertical pairs; Z-gauge between horizontal.
    for i, (q1, q2) in enumerate(bacon_shor.x_gauge_pairs()):
        r1, c1 = divmod(q1, 3)
        machine.add_ion(f"gx{i}", (2 * r1 + 2, 2 * c1 + 1))
    for i, (q1, q2) in enumerate(bacon_shor.z_gauge_pairs()):
        r1, c1 = divmod(q1, 3)
        machine.add_ion(f"gz{i}", (2 * r1 + 1, 2 * c1 + 2))
    return machine


def _bs_gauge_wave(
    machine: TrapMachine,
    lanes: Sequence[Tuple[str, Tuple[int, int]]],
) -> None:
    """Measure several two-qubit gauge operators concurrently.

    Each lane is ``(ancilla, (q1, q2))``: the bare ancilla is prepared in
    ``|+>``, CNOTs onto both data ions of its pair (shuttling between
    them), Hadamards back and is measured.  Lanes occupy distinct grid
    columns, so their shuttle steps fuse into parallel machine steps.
    """
    homes = {anc: machine.position(anc) for anc, _ in lanes}
    first = {anc: machine.position(f"d{pair[0]}") for anc, pair in lanes}
    second = {anc: machine.position(f"d{pair[1]}") for anc, pair in lanes}
    machine.run([
        [MicroOp(Op.SINGLE_GATE, (anc,)) for anc, _ in lanes],  # H
        [MicroOp(Op.SPLIT, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.MOVE, (anc,), dest=first[anc]) for anc, _ in lanes],
        [MicroOp(Op.COOL, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.DOUBLE_GATE, (anc, f"d{pair[0]}")) for anc, pair in lanes],
        [MicroOp(Op.SPLIT, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.MOVE, (anc,), dest=second[anc]) for anc, _ in lanes],
        [MicroOp(Op.COOL, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.DOUBLE_GATE, (anc, f"d{pair[1]}")) for anc, pair in lanes],
        [MicroOp(Op.SPLIT, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.MOVE, (anc,), dest=homes[anc]) for anc, _ in lanes],
        [MicroOp(Op.COOL, (anc,)) for anc, _ in lanes],
        [MicroOp(Op.SINGLE_GATE, (anc,)) for anc, _ in lanes],  # H back
        [MicroOp(Op.MEASURE, (anc,)) for anc, _ in lanes],
    ])


def bacon_shor_syndrome_schedule(
    params: PhysicalParams = DEFAULT_PARAMS,
) -> SyndromeCost:
    """Extract one Bacon-Shor syndrome type (six gauge measurements).

    The six gauge operators split into two waves of three (top-row pairs
    and bottom-row pairs): within a wave the lanes occupy distinct grid
    columns and run fully in parallel; the two waves share data-ion
    regions and must serialize.  The whole sequence repeats
    ``GAUGE_REPETITIONS`` times for measurement-fault robustness.
    """
    machine = _bs_machine(params)
    pairs = bacon_shor.x_gauge_pairs()
    # Wave A: gauge operators between data rows 0-1; wave B: rows 1-2.
    wave_a = [(f"gx{i}", pairs[i]) for i in range(3)]
    wave_b = [(f"gx{i}", pairs[i]) for i in range(3, 6)]
    for _ in range(GAUGE_REPETITIONS):
        _bs_gauge_wave(machine, wave_a)
        _bs_gauge_wave(machine, wave_b)
    # Classical decode of the gauge products + transversal correction.
    result = machine.run([
        [MicroOp(Op.SINGLE_GATE, ("d0",))],
    ])
    return SyndromeCost(
        code_name="Bacon-Shor [[9,1,3]]",
        cycles=result.cycles,
        op_counts=result.op_counts,
        stall_cycles=result.stall_cycles,
    )


# ----------------------------------------------------------------------
# cached cycle counts
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def l1_syndrome_cycles(code_name: str) -> int:
    """Cycles for one L1 syndrome extraction of ``steane``/``bacon_shor``."""
    if code_name == "steane":
        return steane_syndrome_schedule().cycles
    if code_name == "bacon_shor":
        return bacon_shor_syndrome_schedule().cycles
    raise ValueError(f"unknown code {code_name!r}")


def l1_ec_cycles(code_name: str) -> int:
    """Cycles for a full L1 error correction (both syndrome types)."""
    return 2 * l1_syndrome_cycles(code_name)
