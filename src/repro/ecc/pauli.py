"""Pauli algebra in binary-symplectic form.

A Pauli operator on ``n`` qubits (ignoring global phase, tracking sign
only modulo {+1, -1, +i, -i} as an exponent of i) is represented by two
length-``n`` binary vectors ``x`` and ``z``: qubit ``q`` carries X iff
``x[q]``, Z iff ``z[q]``, and Y iff both.  This is the standard
representation used by stabilizer-code machinery; everything downstream
(syndromes, decoding, Monte Carlo noise) is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {v: k for k, v in _CHAR_TO_XZ.items()}


@dataclass(frozen=True)
class Pauli:
    """An n-qubit Pauli operator with a phase exponent of i.

    ``phase`` is an integer modulo 4: the operator equals
    ``i**phase * X^x Z^z`` (X factors to the left of Z factors on each
    qubit).  Equality and hashing use the canonical tuple form.
    """

    x: Tuple[int, ...]
    z: Tuple[int, ...]
    phase: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "Pauli":
        return Pauli(x=(0,) * n, z=(0,) * n)

    @staticmethod
    def from_label(label: str) -> "Pauli":
        """Build from a string like ``"XIZZY"`` (qubit 0 leftmost)."""
        xs, zs = [], []
        for ch in label.upper():
            if ch not in _CHAR_TO_XZ:
                raise ValueError(f"invalid Pauli character {ch!r}")
            x, z = _CHAR_TO_XZ[ch]
            xs.append(x)
            zs.append(z)
        return Pauli(x=tuple(xs), z=tuple(zs))

    @staticmethod
    def single(n: int, qubit: int, kind: str) -> "Pauli":
        """A weight-one Pauli of ``kind`` in {X, Y, Z} on ``qubit``."""
        if not 0 <= qubit < n:
            raise ValueError("qubit index out of range")
        x = [0] * n
        z = [0] * n
        xq, zq = _CHAR_TO_XZ[kind.upper()]
        if (xq, zq) == (0, 0):
            raise ValueError("kind must be X, Y or Z")
        x[qubit], z[qubit] = xq, zq
        return Pauli(x=tuple(x), z=tuple(z))

    def __post_init__(self) -> None:
        if len(self.x) != len(self.z):
            raise ValueError("x and z parts must have equal length")
        object.__setattr__(self, "phase", self.phase % 4)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return sum(1 for xq, zq in zip(self.x, self.z) if xq or zq)

    def is_identity(self) -> bool:
        return self.weight == 0

    def label(self) -> str:
        return "".join(_XZ_TO_CHAR[(xq, zq)] for xq, zq in zip(self.x, self.z))

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        sign = {0: "+", 1: "+i", 2: "-", 3: "-i"}[self.phase]
        return f"{sign}{self.label()}"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "Pauli") -> bool:
        """True iff the two operators commute (symplectic product 0)."""
        if self.n != other.n:
            raise ValueError("operator sizes differ")
        sym = sum(
            sx * oz + sz * ox
            for sx, sz, ox, oz in zip(self.x, self.z, other.x, other.z)
        )
        return sym % 2 == 0

    def __mul__(self, other: "Pauli") -> "Pauli":
        """Operator product (self applied after other)."""
        if self.n != other.n:
            raise ValueError("operator sizes differ")
        # i exponent from reordering X^x1 Z^z1 X^x2 Z^z2 into canonical
        # form: Z^z1 X^x2 = (-1)^(z1.x2) X^x2 Z^z1.
        anticommutations = sum(
            z1 * x2 for z1, x2 in zip(self.z, other.x)
        )
        phase = (self.phase + other.phase + 2 * anticommutations) % 4
        x = tuple((a + b) % 2 for a, b in zip(self.x, other.x))
        z = tuple((a + b) % 2 for a, b in zip(self.z, other.z))
        return Pauli(x=x, z=z, phase=phase)

    def support(self) -> Tuple[int, ...]:
        """Indices of qubits acted on non-trivially."""
        return tuple(
            q for q, (xq, zq) in enumerate(zip(self.x, self.z)) if xq or zq
        )

    def restricted_label(self, qubits: Sequence[int]) -> str:
        """Label of the operator restricted to the given qubits."""
        return "".join(
            _XZ_TO_CHAR[(self.x[q], self.z[q])] for q in qubits
        )

    # ------------------------------------------------------------------
    # numpy interop
    # ------------------------------------------------------------------
    def symplectic(self) -> np.ndarray:
        """The length-2n binary vector ``[x | z]``."""
        return np.array(list(self.x) + list(self.z), dtype=np.uint8)

    @staticmethod
    def from_symplectic(vec: np.ndarray, phase: int = 0) -> "Pauli":
        vec = np.asarray(vec, dtype=np.uint8) % 2
        if vec.ndim != 1 or vec.size % 2:
            raise ValueError("symplectic vector must be 1-D of even length")
        n = vec.size // 2
        return Pauli(
            x=tuple(int(v) for v in vec[:n]),
            z=tuple(int(v) for v in vec[n:]),
            phase=phase,
        )


def symplectic_matrix(paulis: Iterable[Pauli]) -> np.ndarray:
    """Stack Pauli operators as rows of a binary symplectic matrix."""
    rows = [p.symplectic() for p in paulis]
    if not rows:
        return np.zeros((0, 0), dtype=np.uint8)
    return np.vstack(rows)


def symplectic_gram(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """GF(2) anticommutation matrix between two symplectic batches.

    ``left`` is ``(a, 2n)`` and ``right`` is ``(b, 2n)``; entry ``[i, j]``
    is 1 iff row ``i`` of ``left`` anticommutes with row ``j`` of
    ``right``.  This is the batched form of :meth:`Pauli.commutes_with`:
    one integer matrix product replaces ``a * b`` Python-level symplectic
    inner products, which is what makes whole-batch syndrome extraction
    a single matmul.
    """
    left = np.atleast_2d(np.asarray(left, dtype=np.uint8))
    right = np.atleast_2d(np.asarray(right, dtype=np.uint8))
    if left.shape[1] != right.shape[1] or left.shape[1] % 2:
        raise ValueError("symplectic batches must share an even width")
    n = left.shape[1] // 2
    # Swap the halves of ``right`` so a plain dot product computes the
    # symplectic form x1.z2 + z1.x2.
    swapped = np.hstack([right[:, n:], right[:, :n]])
    return (left.astype(np.int64) @ swapped.T.astype(np.int64)) & 1


def batch_weights(batch: np.ndarray) -> np.ndarray:
    """Pauli weights of each row of a ``(trials, 2n)`` symplectic batch."""
    batch = np.atleast_2d(np.asarray(batch, dtype=np.uint8))
    if batch.shape[1] % 2:
        raise ValueError("symplectic batch must have even width")
    n = batch.shape[1] // 2
    return ((batch[:, :n] | batch[:, n:]) != 0).sum(axis=1)


def enumerate_errors(n: int, max_weight: int) -> Iterator[Pauli]:
    """All non-identity Paulis on ``n`` qubits of weight <= max_weight.

    Only weights 1 and 2 are supported — enough for distance-3 and
    distance-5 decoding tables — to keep enumeration tractable.
    """
    if max_weight < 1:
        return
    kinds = "XYZ"
    for q in range(n):
        for k in kinds:
            yield Pauli.single(n, q, k)
    if max_weight >= 2:
        for q1 in range(n):
            for q2 in range(q1 + 1, n):
                for k1 in kinds:
                    for k2 in kinds:
                        yield Pauli.single(n, q1, k1) * Pauli.single(n, q2, k2)
    if max_weight >= 3:
        raise NotImplementedError("error enumeration supports weight <= 2")
