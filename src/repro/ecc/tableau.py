"""CHP stabilizer-tableau simulator (Aaronson-Gottesman).

A full stabilizer-state simulator over H, S, CNOT, X, Y, Z and
computational-basis measurement, in the standard destabilizer/stabilizer
tableau form.  The ECC layer uses it to *execute* encoder and syndrome
circuits — complementing the Heisenberg-picture checks in
:mod:`repro.ecc.clifford` with a simulation that includes measurement
randomness — and to verify that prepared code states are genuine +1
eigenstates of every stabilizer.

Conventions: ``n`` qubits; rows ``0..n-1`` are destabilizers, rows
``n..2n-1`` stabilizers; each row is a Pauli in (x, z, sign) form where
``sign`` is 0 for ``+`` and 1 for ``-`` (the row operator with x=z=1 on
a qubit denotes Y).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .clifford import CliffordGate
from .pauli import Pauli


class Tableau:
    """Stabilizer state of ``n`` qubits, initialized to ``|0...0>``."""

    def __init__(self, n: int, seed: Optional[int] = None) -> None:
        if n < 1:
            raise ValueError("need at least one qubit")
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for q in range(n):
            self.x[q, q] = 1          # destabilizer X_q
            self.z[n + q, q] = 1      # stabilizer Z_q
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = (
            self.z[:, q].copy(), self.x[:, q].copy()
        )

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self.s(q)
        self.s(q)
        self.s(q)

    def cnot(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def y_gate(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def apply(self, gates: Iterable[CliffordGate]) -> None:
        """Execute a circuit of :class:`CliffordGate` objects."""
        dispatch = {
            "H": lambda g: self.h(g.qubits[0]),
            "S": lambda g: self.s(g.qubits[0]),
            "SDG": lambda g: self.sdg(g.qubits[0]),
            "X": lambda g: self.x_gate(g.qubits[0]),
            "Y": lambda g: self.y_gate(g.qubits[0]),
            "Z": lambda g: self.z_gate(g.qubits[0]),
            "CNOT": lambda g: self.cnot(*g.qubits),
        }
        for gate in gates:
            try:
                dispatch[gate.name](gate)
            except KeyError as exc:
                raise ValueError(f"unsupported gate {gate.name!r}") from exc

    def apply_pauli(self, pauli: Pauli) -> None:
        """Apply a Pauli error to the state (phase ignored — global)."""
        if pauli.n != self.n:
            raise ValueError("operator size mismatch")
        for q in range(self.n):
            if pauli.x[q] and pauli.z[q]:
                self.y_gate(q)
            elif pauli.x[q]:
                self.x_gate(q)
            elif pauli.z[q]:
                self.z_gate(q)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    @staticmethod
    def _g(x1: int, z1: int, x2: int, z2: int) -> int:
        """Phase exponent of i when multiplying single-qubit Paulis."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return z2 - x2
        if x1 == 1:              # X
            return z2 * (2 * x2 - 1)
        return x2 * (1 - 2 * z2)  # Z

    def _rowsum(self, h: int, i: int) -> None:
        """Row h := row h * row i, with correct sign tracking."""
        phase = 2 * self.r[h] + 2 * self.r[i]
        for q in range(self.n):
            phase += self._g(
                int(self.x[i, q]), int(self.z[i, q]),
                int(self.x[h, q]), int(self.z[h, q]),
            )
        self.r[h] = (phase % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def measure(self, q: int, forced: Optional[int] = None) -> int:
        """Measure qubit ``q`` in the computational basis.

        ``forced`` pins the outcome of a *random* measurement (useful
        for deterministic tests); deterministic outcomes ignore it.
        """
        n = self.n
        anticommuting = [
            p for p in range(n, 2 * n) if self.x[p, q]
        ]
        if anticommuting:
            p = anticommuting[0]
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            # The old stabilizer becomes the destabilizer; the new
            # stabilizer is +/- Z_q with the measured sign.
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            if forced is None:
                outcome = int(self._rng.integers(0, 2))
            else:
                outcome = int(forced) & 1
            self.r[p] = outcome
            return outcome
        # Deterministic: accumulate destabilizer products in a scratch row.
        scratch_x = np.zeros(self.n, dtype=np.uint8)
        scratch_z = np.zeros(self.n, dtype=np.uint8)
        phase = 0
        for i in range(n):
            if self.x[i, q]:
                stab = i + n
                phase += 2 * self.r[stab]
                for qq in range(self.n):
                    phase += self._g(
                        int(self.x[stab, qq]), int(self.z[stab, qq]),
                        int(scratch_x[qq]), int(scratch_z[qq]),
                    )
                scratch_x ^= self.x[stab]
                scratch_z ^= self.z[stab]
        return (phase % 4) // 2

    def measure_observable(self, pauli: Pauli, forced: Optional[int] = None) -> int:
        """Measure a Pauli observable via a fresh ancilla construction.

        Returns 0 for the +1 eigenvalue, 1 for -1.  Implemented by the
        standard trick: conjugate so the observable becomes Z on its
        first support qubit, measure, and undo.
        """
        if pauli.n != self.n:
            raise ValueError("operator size mismatch")
        support = pauli.support()
        if not support:
            return 0
        basis: List[CliffordGate] = []
        from .clifford import cnot as cx
        from .clifford import h as hh
        from .clifford import s as ss

        for q in support:
            if pauli.x[q] and pauli.z[q]:      # Y -> Z
                basis.append(CliffordGate("SDG", (q,)))
                basis.append(hh(q))
            elif pauli.x[q]:                   # X -> Z
                basis.append(hh(q))
        root = support[0]
        for q in support[1:]:
            basis.append(cx(q, root))
        self.apply(basis)
        outcome = self.measure(root, forced=forced)
        self.apply(_inverse(basis))
        return outcome

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def stabilizer_row(self, i: int) -> Pauli:
        """Stabilizer generator ``i`` as a signed Pauli."""
        if not 0 <= i < self.n:
            raise ValueError("stabilizer index out of range")
        row = self.n + i
        return Pauli(
            x=tuple(int(v) for v in self.x[row]),
            z=tuple(int(v) for v in self.z[row]),
            phase=2 * int(self.r[row]),
        )

    def stabilizes(self, pauli: Pauli) -> bool:
        """True iff the state is a +1 eigenstate of ``pauli``.

        Decides by measurement determinism on a copy: the observable is
        stabilized iff measuring it is deterministic with outcome +1.
        """
        clone = self.copy()
        before = clone.copy()
        outcome_a = clone.measure_observable(pauli, forced=0)
        outcome_b = before.measure_observable(pauli, forced=1)
        # Deterministic measurements ignore the forcing and agree.
        return outcome_a == outcome_b == 0

    def copy(self) -> "Tableau":
        clone = Tableau(self.n)
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        clone._rng = np.random.default_rng(self._rng.integers(2 ** 32))
        return clone


def _inverse(gates: List[CliffordGate]) -> List[CliffordGate]:
    """Inverse of a circuit of self-inverse-or-S gates."""
    inverted = []
    for gate in reversed(gates):
        if gate.name == "S":
            inverted.append(CliffordGate("SDG", gate.qubits))
        elif gate.name == "SDG":
            inverted.append(CliffordGate("S", gate.qubits))
        else:
            inverted.append(gate)
    return inverted
