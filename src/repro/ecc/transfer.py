"""Code-transfer (code teleportation) network model — Table 3.

The memory hierarchy moves logical qubits between encodings without
decoding: a correlated ancilla pair is prepared between the source code
``C1`` and destination code ``C2`` via a multi-qubit cat state, the data
interacts with the equivalently encoded half through a transversal CNOT,
both are measured, and the state reappears in ``C2`` after a conditional
correction (Figure 5).

The latency decomposes into a *source-side* cost — preparing, verifying
and purifying the cat-state half plus the transversal interaction, about
four EC periods of the source encoding — and a *destination-side* cost —
the conditional correction followed by a full EC, about two EC periods
of the destination encoding:

``T(C1 -> C2) = 4 * EC(C1) + 2 * EC(C2)``

This two-term form reproduces 15 of the 16 published Table 3 cells to
within rounding (the exception, 9-L1 -> 9-L2, is discussed in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .concatenated import ConcatenatedCode, by_key

#: EC periods spent on the source side: ancilla-pair preparation,
#: verification, entangling interaction and purification.
SOURCE_EC_PERIODS = 4

#: EC periods spent on the destination side: conditional Pauli
#: correction and the error correction that re-establishes the code.
DEST_EC_PERIODS = 2


@dataclass(frozen=True)
class CodePoint:
    """A (code, recursion level) encoding point, e.g. Steane level 2."""

    code_key: str
    level: int

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError("transfer endpoints must be encoded (level >= 1)")

    @property
    def label(self) -> str:
        short = {"steane": "7", "bacon_shor": "9"}[self.code_key]
        return f"{short}-L{self.level}"

    def concatenated(self) -> ConcatenatedCode:
        return by_key(self.code_key)

    def ec_time_s(self) -> float:
        return self.concatenated().ec_time_s(self.level)


def transfer_time_s(source: CodePoint, dest: CodePoint) -> float:
    """Latency of teleporting a logical qubit from ``source`` to ``dest``.

    Zero when source and destination encodings are identical (no
    transfer is needed).
    """
    if source == dest:
        return 0.0
    return (
        SOURCE_EC_PERIODS * source.ec_time_s()
        + DEST_EC_PERIODS * dest.ec_time_s()
    )


def standard_points() -> List[CodePoint]:
    """The four encodings of Table 3: 7-L1, 7-L2, 9-L1, 9-L2."""
    return [
        CodePoint("steane", 1),
        CodePoint("steane", 2),
        CodePoint("bacon_shor", 1),
        CodePoint("bacon_shor", 2),
    ]


def transfer_matrix() -> Dict[Tuple[str, str], float]:
    """Full Table 3 latency matrix keyed by (source, dest) labels."""
    points = standard_points()
    return {
        (src.label, dst.label): transfer_time_s(src, dst)
        for src in points
        for dst in points
    }


@dataclass(frozen=True)
class TransferNetwork:
    """A memory<->cache transfer network between two encoding points.

    ``code_key`` is the cache-side (faster, lower-level) encoding;
    ``memory_code_key`` the memory-side encoding, ``None`` meaning the
    same code family on both sides — the paper's Table 5 configuration.
    A cross-code network (e.g. Steane memory feeding a Bacon-Shor
    compute level) prices both directions from *both* endpoints' EC
    periods through :func:`transfer_time_s`, reproducing the
    off-diagonal Table 3 cells.

    ``parallel_transfers`` is the paper's "Par Xfer" parameter: how many
    logical qubits can be in flight between encoding levels at once.
    The effective concurrency is reduced by the per-transfer channel
    requirement (three channels for Bacon-Shor, one for Steane); a
    cross-code transfer terminates in both encodings, so it occupies
    the wider of the two requirements.
    """

    code_key: str
    memory_level: int = 2
    cache_level: int = 1
    parallel_transfers: int = 10
    memory_code_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.parallel_transfers < 1:
            raise ValueError("need at least one parallel transfer")
        if self.memory_code_key is not None:
            by_key(self.memory_code_key)  # validates the key
            if self.memory_code_key == self.code_key:
                # Normalize: a same-code network compares (and hashes)
                # equal whether the memory code was spelled out or not.
                object.__setattr__(self, "memory_code_key", None)

    @property
    def cache_point(self) -> CodePoint:
        """The cache-side (destination of a demotion) encoding point."""
        return CodePoint(self.code_key, self.cache_level)

    @property
    def memory_point(self) -> CodePoint:
        """The memory-side (source of a demotion) encoding point."""
        return CodePoint(self.memory_code_key or self.code_key,
                         self.memory_level)

    @property
    def is_cross_code(self) -> bool:
        """Does this network bridge two different code families?"""
        return self.memory_code_key is not None

    @property
    def demote_time_s(self) -> float:
        """Memory -> cache (e.g. level 2 -> level 1) transfer latency."""
        return transfer_time_s(self.memory_point, self.cache_point)

    @property
    def promote_time_s(self) -> float:
        """Cache -> memory (e.g. level 1 -> level 2) transfer latency."""
        return transfer_time_s(self.cache_point, self.memory_point)

    @property
    def channels_per_transfer(self) -> int:
        """Teleport channels one transfer occupies on this network.

        The correlated ancilla pair of a code teleportation spans both
        endpoint encodings, so a cross-code transfer needs the wider of
        the two codes' channel requirements.
        """
        cache_channels = by_key(self.code_key).spec.teleport_channels
        if self.memory_code_key is None:
            return cache_channels
        memory_channels = by_key(self.memory_code_key).spec.teleport_channels
        return max(cache_channels, memory_channels)

    @property
    def effective_concurrency(self) -> float:
        """Concurrent transfers after per-transfer channel requirements."""
        return max(1.0, self.parallel_transfers / self.channels_per_transfer)

    def batch_demote_time_s(self, n_qubits: int) -> float:
        """Time to move ``n_qubits`` from memory into the cache."""
        if n_qubits < 0:
            raise ValueError("qubit count cannot be negative")
        if n_qubits == 0:
            return 0.0
        import math

        waves = math.ceil(n_qubits / self.effective_concurrency)
        return waves * self.demote_time_s

    def batch_promote_time_s(self, n_qubits: int) -> float:
        """Time to move ``n_qubits`` from the cache back to memory."""
        if n_qubits < 0:
            raise ValueError("qubit count cannot be negative")
        if n_qubits == 0:
            return 0.0
        import math

        waves = math.ceil(n_qubits / self.effective_concurrency)
        return waves * self.promote_time_s
