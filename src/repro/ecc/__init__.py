"""Error correction: Pauli algebra, codes, concatenation and transfer.

This package owns the quantum substrate's algebra and costs: the
Pauli/stabilizer/Clifford machinery and tableau simulation, the Steane
[[7,1,3]] and Bacon-Shor [[9,1,3]] codes with their EC schedules and
Monte Carlo decoders, concatenation metrics (Table 2) via
:class:`ConcatenatedCode`, and the code-teleportation transfer model
of Table 3 (:mod:`repro.ecc.transfer`) — including cross-code
:class:`TransferNetwork` endpoints, which price a transfer from both
codes' EC periods and teleport-channel requirements.  Everything
above (stacks, floorplans, sweeps) derives its times and areas from
here.
"""

from .bacon_shor import bacon_shor_code
from .clifford import CliffordGate, cnot, conjugate, h, s, sdg, x, y, z
from .concatenated import (
    BACON_SHOR_SPEC,
    STEANE_SPEC,
    CodeSpec,
    ConcatenatedCode,
    bacon_shor_concatenated,
    by_key,
    steane_concatenated,
)
from .fault_injection import (
    InjectionResult,
    bacon_shor_encoder_injection,
    circuit_pseudo_threshold,
    inject_encoder_faults,
    steane_encoder_injection,
)
from .montecarlo import (
    MonteCarloResult,
    logical_error_rate,
    logical_error_rate_reference,
    pseudo_threshold,
    sample_depolarizing_batch,
)
from .tableau import Tableau
from .pauli import Pauli, enumerate_errors
from .schedule import (
    SyndromeCost,
    bacon_shor_syndrome_schedule,
    l1_ec_cycles,
    l1_syndrome_cycles,
    steane_syndrome_schedule,
)
from .stabilizer import BatchDecoder, DecodingError, StabilizerCode
from .steane import steane_code
from .transfer import (
    CodePoint,
    TransferNetwork,
    standard_points,
    transfer_matrix,
    transfer_time_s,
)

__all__ = [
    "BACON_SHOR_SPEC",
    "STEANE_SPEC",
    "CliffordGate",
    "CodePoint",
    "CodeSpec",
    "BatchDecoder",
    "ConcatenatedCode",
    "DecodingError",
    "InjectionResult",
    "MonteCarloResult",
    "Pauli",
    "StabilizerCode",
    "SyndromeCost",
    "Tableau",
    "TransferNetwork",
    "bacon_shor_encoder_injection",
    "circuit_pseudo_threshold",
    "inject_encoder_faults",
    "steane_encoder_injection",
    "bacon_shor_code",
    "bacon_shor_concatenated",
    "bacon_shor_syndrome_schedule",
    "by_key",
    "cnot",
    "conjugate",
    "enumerate_errors",
    "h",
    "l1_ec_cycles",
    "l1_syndrome_cycles",
    "logical_error_rate",
    "logical_error_rate_reference",
    "pseudo_threshold",
    "sample_depolarizing_batch",
    "s",
    "sdg",
    "standard_points",
    "steane_code",
    "steane_concatenated",
    "steane_syndrome_schedule",
    "transfer_matrix",
    "transfer_time_s",
    "x",
    "y",
    "z",
]
