"""The Steane [[7,1,3]] error-correcting code (Section 4.1).

The smallest code allowing transversal implementation of every gate used
in concatenated error correction.  Its stabilizers are the two CSS copies
of the [7,4] Hamming code's parity checks; logical X and Z are the
all-ones operators.

Besides the algebraic code object this module provides the encoder
circuit (3 H + 9 CNOT) and the structural constants the architecture
layer needs: ancilla ion counts (7 syndrome + 7 syndrome + 7 verification
= 21 per Table 2), verification requirements, and layout channel factor.
"""

from __future__ import annotations

from typing import List

from .clifford import CliffordGate, cnot, h
from .pauli import Pauli
from .stabilizer import StabilizerCode

#: Parity-check rows of the [7,4] Hamming code (qubit indices 0..6).
HAMMING_ROWS = (
    (3, 4, 5, 6),
    (1, 2, 5, 6),
    (0, 2, 4, 6),
)

#: Pivot qubit of each Hamming row — appears in no other row, which makes
#: the standard encoder construction work (H on the pivots, CNOT fan-out).
ROW_PIVOTS = (3, 1, 0)


def _pauli_on(indices, kind: str, n: int = 7) -> Pauli:
    label = "".join(kind if q in indices else "I" for q in range(n))
    return Pauli.from_label(label)


def steane_code() -> StabilizerCode:
    """Construct the Steane [[7,1,3]] stabilizer code."""
    stabilizers = [_pauli_on(row, "X") for row in HAMMING_ROWS]
    stabilizers += [_pauli_on(row, "Z") for row in HAMMING_ROWS]
    logical_x = _pauli_on(range(7), "X")
    logical_z = _pauli_on(range(7), "Z")
    return StabilizerCode(
        name="Steane [[7,1,3]]",
        n=7,
        k=1,
        d=3,
        stabilizers=stabilizers,
        logical_xs=[logical_x],
        logical_zs=[logical_z],
    )


def encoder_circuit() -> List[CliffordGate]:
    """Encoder mapping ``|0000000>`` to the logical ``|0>``.

    Hadamard each X-stabilizer pivot, then fan CNOTs out over the rest of
    the row.  Twelve gates total (3 H + 9 CNOT), which is the serialized
    gate count the level-2 EC timing model uses.
    """
    gates: List[CliffordGate] = []
    for row, pivot in zip(HAMMING_ROWS, ROW_PIVOTS):
        gates.append(h(pivot))
    for row, pivot in zip(HAMMING_ROWS, ROW_PIVOTS):
        for q in row:
            if q != pivot:
                gates.append(cnot(pivot, q))
    return gates
