"""Monte Carlo logical-error-rate estimation for the ECC layer.

Code-capacity noise model: each physical qubit independently suffers a
depolarizing error with probability ``p`` (X, Y, Z equally likely).  One
ideal EC cycle (syndrome extraction + minimum-weight decoding) is
applied and the residual operator is classified.  For distance-3 codes
the logical error rate scales as ``c * p**2`` for small ``p``; the
crossing point with the physical rate is the code's pseudo-threshold.

This validates the reliability assumptions behind the paper's Equation 1
fidelity analysis with an actual decoder rather than a formula.

The estimator is batched end to end: all trials' errors are sampled
into one ``(trials, 2n)`` symplectic bit-array and pushed through
:class:`repro.ecc.stabilizer.BatchDecoder` — one GF(2) matmul for every
syndrome, one fancy-index for every correction, one reduction against
the precomputed trivial-span basis for every residual.  The scalar
:func:`logical_error_rate_reference` loop is retained as the executable
specification; for any fixed seed both paths produce the *identical*
failure count, because the batched sampler consumes the NumPy generator
stream in exactly the per-trial order the scalar sampler established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .pauli import Pauli
from .stabilizer import DecodingError, StabilizerCode

#: Symplectic (x, z) rows for a depolarizing kind draw of 0, 1, 2 -> X, Y, Z.
_DEPOLARIZING_LETTERS = np.array([[1, 0], [1, 1], [0, 1]], dtype=np.uint8)


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a logical-error-rate estimation run."""

    physical_error_rate: float
    trials: int
    failures: int

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.trials

    @property
    def standard_error(self) -> float:
        """Binomial standard error of the estimate."""
        p = self.logical_error_rate
        return float(np.sqrt(max(p * (1.0 - p), 1.0 / self.trials) / self.trials))


def sample_depolarizing(
    n: int, p: float, rng: np.random.Generator
) -> Pauli:
    """One iid depolarizing error pattern on ``n`` qubits."""
    row = _sample_rows(n, p, 1, rng)[0]
    return Pauli(
        x=tuple(int(v) for v in row[:n]),
        z=tuple(int(v) for v in row[n:]),
    )


def _sample_rows(
    n: int, p: float, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``trials`` depolarizing patterns as a (trials, 2n) array.

    Each trial draws ``rng.random(n)`` then ``rng.integers(0, 3, n)`` —
    the exact per-trial consumption order of the original scalar
    sampler.  Drawing all trials in two big calls would be faster still,
    but would permute the generator stream and change every seeded
    failure count; the loop body is two vectorized draws plus a masked
    scatter, so it is already far off the critical path.
    """
    batch = np.zeros((trials, 2 * n), dtype=np.uint8)
    for t in range(trials):
        kinds = rng.random(n)
        which = rng.integers(0, 3, size=n)
        hit = np.nonzero(kinds < p)[0]
        if hit.size:
            xz = _DEPOLARIZING_LETTERS[which[hit]]
            batch[t, hit] = xz[:, 0]
            batch[t, hit + n] = xz[:, 1]
    return batch


def sample_depolarizing_batch(
    n: int, p: float, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """``trials`` iid depolarizing patterns as a symplectic bit-array."""
    if trials < 0:
        raise ValueError("trial count cannot be negative")
    return _sample_rows(n, p, trials, rng)


def logical_error_rate(
    code: StabilizerCode,
    physical_error_rate: float,
    trials: int = 2000,
    seed: Optional[int] = None,
) -> MonteCarloResult:
    """Estimate the post-EC logical error rate under depolarizing noise.

    Errors whose syndrome falls outside the minimum-weight table (only
    possible beyond the guaranteed correctable weight) count as failures.

    Thin wrapper over the batched core: for any fixed ``seed`` the
    failure count is bit-identical to
    :func:`logical_error_rate_reference`.
    """
    _validate(physical_error_rate, trials)
    rng = np.random.default_rng(seed)
    batch = sample_depolarizing_batch(code.n, physical_error_rate, trials, rng)
    failures = code.batch_decoder().failure_count(batch)
    return MonteCarloResult(
        physical_error_rate=physical_error_rate,
        trials=trials,
        failures=failures,
    )


def logical_error_rate_reference(
    code: StabilizerCode,
    physical_error_rate: float,
    trials: int = 2000,
    seed: Optional[int] = None,
) -> MonteCarloResult:
    """Scalar one-trial-at-a-time estimator (executable specification).

    Retained so the equivalence tests can assert the batched path
    reproduces its exact seeded failure counts.
    """
    _validate(physical_error_rate, trials)
    rng = np.random.default_rng(seed)
    failures = 0
    for _ in range(trials):
        error = sample_depolarizing(code.n, physical_error_rate, rng)
        try:
            _, ok = code.correct(error)
        except DecodingError:
            ok = False
        if not ok:
            failures += 1
    return MonteCarloResult(
        physical_error_rate=physical_error_rate,
        trials=trials,
        failures=failures,
    )


def _validate(physical_error_rate: float, trials: int) -> None:
    if not 0.0 <= physical_error_rate <= 1.0:
        raise ValueError("error rate must be a probability")
    if trials <= 0:
        raise ValueError("need a positive trial count")


def pseudo_threshold(
    code: StabilizerCode,
    rates: Sequence[float] = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
    trials: int = 4000,
    seed: Optional[int] = None,
) -> float:
    """Estimate where the logical rate crosses the physical rate.

    Scans the given physical rates and linearly interpolates (in log
    space) the crossing of ``p_logical(p) = p``.  Returns the last
    scanned rate when no crossing is bracketed.
    """
    prev_rate, prev_ratio = None, None
    for p in rates:
        result = logical_error_rate(code, p, trials=trials, seed=seed)
        ratio = result.logical_error_rate / p if p else 0.0
        if prev_ratio is not None and prev_ratio < 1.0 <= ratio:
            # Interpolate log(p) between the bracketing scan points.
            lo, hi = np.log(prev_rate), np.log(p)
            frac = (1.0 - prev_ratio) / (ratio - prev_ratio)
            return float(np.exp(lo + frac * (hi - lo)))
        prev_rate, prev_ratio = p, ratio
    return float(rates[-1])
