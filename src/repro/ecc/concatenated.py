"""Concatenated-code resource, timing and reliability model (Table 2).

Recursive error correction encodes ``n`` physical qubits per logical
qubit at each level: a level-L qubit is built from ``n`` level-(L-1)
qubits plus ancilla blocks.  Resources and EC time grow exponentially
with the level while the per-operation failure probability falls doubly
exponentially — the trade the CQLA's memory hierarchy exploits.

This module combines

* the algebraic codes (:mod:`repro.ecc.steane`, :mod:`repro.ecc.bacon_shor`),
* the measured level-1 EC schedules (:mod:`repro.ecc.schedule`), and
* tile geometry (:mod:`repro.physical.layout`)

into a :class:`ConcatenatedCode` exposing EC time, transversal-gate
time, qubit tile area, ion counts and per-operation failure rate at any
recursion level — the exact quantities of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from ..physical.layout import TileGeometry
from ..physical.params import CYCLE_TIME_US, DEFAULT_PARAMS, Op, PhysicalParams
from . import schedule
from .bacon_shor import bacon_shor_code
from .stabilizer import StabilizerCode
from .steane import steane_code

#: Average teleportation distance between level-1 blocks, in cells, used
#: in the Gottesman local fault-tolerance estimate (Section 5.2, r = 12).
GOTTESMAN_R = 12.0


@dataclass(frozen=True)
class CodeSpec:
    """Architectural constants of one error-correcting code.

    ``channel_fraction`` and ``l2_assembly_overhead`` are the two
    documented geometry calibration constants (DESIGN.md Section 4):
    open movement regions per ion region inside a level-1 tile, and the
    inter-tile channel overhead when assembling level-2 qubits.  They are
    chosen once so the published Steane level-2 qubit area (3.4 mm^2) and
    Bacon-Shor level-2 area (2.4 mm^2) are matched; every other area in
    the study then follows from geometry.
    """

    key: str
    display_name: str
    n: int
    encoder_gate_count: int
    l1_ancilla_ions: int
    l2_ancilla_blocks: int
    channel_fraction: float
    threshold: float
    teleport_channels: int
    needs_ancilla_verification: bool
    l2_assembly_overhead: float = 0.10

    def upper_ops_per_syndrome(self) -> int:
        """Serialized level-(L-1) operations per level-L syndrome.

        Every sub-operation of a level-L EC is itself followed by a
        level-(L-1) error correction (Section 4.1), so the level-L EC
        time is this count times the lower-level EC period.

        * Encoded-ancilla (Steane-style) extraction: the ancilla block is
          encoded (``encoder_gate_count`` gates, EC on both participants
          of each CNOT), interacts transversally (``n`` sub-CNOTs, EC on
          both blocks), plus alignment, transversal measurement, decode
          and correction slots.
        * Gauge-measurement (Bacon-Shor-style) extraction: six two-qubit
          gauge measurements, each one ancilla preparation, two CNOTs
          with EC on both participants, and a measurement slot; plus
          decode and correction.
        """
        if self.needs_ancilla_verification:
            encode = 2 * self.encoder_gate_count
            interact = 2 * self.n
            overhead = 4 + 2 + 2 + 2  # align, measure, decode, correct
            return encode + interact + overhead
        gauge_measurements = 6
        per_gauge = 1 + 2 * 2 + 1  # prep + two CNOTs (EC both sides) + measure
        return gauge_measurements * per_gauge + 2 + 2


STEANE_SPEC = CodeSpec(
    key="steane",
    display_name="Steane [[7,1,3]]",
    n=7,
    encoder_gate_count=12,
    # 7 bit-flip syndrome + 7 phase-flip syndrome + 7 verification ions
    # (Table 2 lists 21 level-1 ancilla).
    l1_ancilla_ions=21,
    # A level-2 qubit is 7 level-1 data qubits + 7 level-1 ancilla
    # qubits; no verification ancilla are needed at level 2 (Section 4.1).
    l2_ancilla_blocks=7,
    channel_fraction=2.15,
    # Threshold for the [[7,1,3]] circuit accounting for movement and
    # gates, from Svore/Terhal/DiVincenzo as cited in Section 5.2.
    threshold=7.5e-5,
    teleport_channels=1,
    needs_ancilla_verification=True,
)

BACON_SHOR_SPEC = CodeSpec(
    key="bacon_shor",
    display_name="Bacon-Shor [[9,1,3]]",
    n=9,
    encoder_gate_count=12,
    # One bare ancilla ion per two-qubit gauge operator: 6 X-type + 6
    # Z-type (Table 2 lists 12 level-1 ancilla).
    l1_ancilla_ions=12,
    # A level-2 qubit is 9 level-1 data qubits + 9 level-1 gauge-ancilla
    # qubits (paper's count of 298 ancilla ions vs. our 297 differs by a
    # single verification ion; see EXPERIMENTS.md).
    l2_ancilla_blocks=9,
    channel_fraction=1.31,
    # The paper notes the Bacon-Shor results "are more favourable due to
    # a higher threshold"; we adopt 1.5e-4 (documented assumption, cf.
    # the later Aliferis-Cross analysis of the [[9,1,3]] code).
    threshold=1.5e-4,
    # Section 5.1: overlapping communication with computation requires
    # three channels for the Bacon-Shor code versus one for Steane.
    teleport_channels=3,
    needs_ancilla_verification=False,
)

_SPECS = {spec.key: spec for spec in (STEANE_SPEC, BACON_SHOR_SPEC)}


def spec_by_key(key: str) -> CodeSpec:
    try:
        return _SPECS[key]
    except KeyError as exc:
        raise ValueError(f"unknown code key {key!r}") from exc


class ConcatenatedCode:
    """Timing/area/reliability of a recursively encoded logical qubit."""

    def __init__(
        self,
        spec: CodeSpec,
        params: PhysicalParams = DEFAULT_PARAMS,
    ) -> None:
        self.spec = spec
        self.params = params

    # -- construction helpers ------------------------------------------
    @staticmethod
    def steane(params: PhysicalParams = DEFAULT_PARAMS) -> "ConcatenatedCode":
        return ConcatenatedCode(STEANE_SPEC, params)

    @staticmethod
    def bacon_shor(params: PhysicalParams = DEFAULT_PARAMS) -> "ConcatenatedCode":
        return ConcatenatedCode(BACON_SHOR_SPEC, params)

    def algebraic_code(self) -> StabilizerCode:
        """The underlying [[n,1,3]] code object."""
        if self.spec.key == "steane":
            return steane_code()
        return bacon_shor_code()

    # -- ion counting ---------------------------------------------------
    def total_ions(self, level: int) -> int:
        """All physical ions in one level-``level`` logical qubit."""
        self._check_level(level)
        if level == 0:
            return 1
        total = self.spec.n + self.spec.l1_ancilla_ions
        for _ in range(level - 1):
            total *= self.spec.n + self.spec.l2_ancilla_blocks
        return total

    def data_ions(self, level: int) -> int:
        """Physical ions carrying encoded data: ``n**level``."""
        self._check_level(level)
        return self.spec.n ** level

    def ancilla_ions(self, level: int) -> int:
        return self.total_ions(level) - self.data_ions(level)

    def logical_block_counts(self, level: int) -> Tuple[int, int]:
        """(data sub-blocks, ancilla sub-blocks) of a level-L qubit."""
        self._check_level(level)
        if level == 1:
            return self.spec.n, self.spec.l1_ancilla_ions
        return self.spec.n, self.spec.l2_ancilla_blocks

    # -- geometry ---------------------------------------------------------
    def tile_geometry(self) -> TileGeometry:
        """Geometry of the level-1 tile (ions + movement channels)."""
        return TileGeometry(
            n_ions=self.total_ions(1),
            channel_fraction=self.spec.channel_fraction,
        )

    def qubit_area_mm2(self, level: int) -> float:
        """Area of one level-``level`` logical qubit tile in mm^2."""
        self._check_level(level)
        if level == 0:
            return self.params.region_area_um2 / 1.0e6
        area = self.tile_geometry().area_mm2(self.params)
        blocks = self.spec.n + self.spec.l2_ancilla_blocks
        for _ in range(level - 1):
            area *= blocks * (1.0 + self.spec.l2_assembly_overhead)
        return area

    # -- timing ---------------------------------------------------------
    def l1_syndrome_cycles(self) -> int:
        return schedule.l1_syndrome_cycles(self.spec.key)

    def ec_time_s(self, level: int) -> float:
        """Duration of one full error correction at ``level`` (seconds)."""
        self._check_level(level)
        if level == 0:
            return 0.0
        cycle_s = CYCLE_TIME_US / 1.0e6
        if level == 1:
            return 2 * self.l1_syndrome_cycles() * cycle_s
        lower = self.ec_time_s(level - 1)
        # Each serialized sub-operation is a transversal gate at the
        # lower level followed by a lower-level EC; the raw gate time
        # (a handful of fundamental cycles) is small but included.
        raw_gate = self.raw_transversal_cycles() * cycle_s
        ops = 2 * self.spec.upper_ops_per_syndrome()
        return ops * (lower + raw_gate)

    def raw_transversal_cycles(self) -> int:
        """Fundamental cycles of one transversal gate without EC.

        Sub-block alignment movement (a few hops) plus the laser pulse.
        """
        return 4 + self.params.cycles(Op.DOUBLE_GATE)

    def transversal_gate_time_s(self, level: int) -> float:
        """Logical gate duration: EC before and after plus the pulse."""
        self._check_level(level)
        cycle_s = CYCLE_TIME_US / 1.0e6
        raw = self.raw_transversal_cycles() * cycle_s
        return 2 * self.ec_time_s(level) + raw

    def logical_op_time_s(self, level: int) -> float:
        """Steady-state per-gate period: one EC amortized per gate.

        In a gate sequence each EC is shared between the gate it follows
        and the gate it precedes, so the sustained rate is one EC plus
        one pulse per logical gate.
        """
        cycle_s = CYCLE_TIME_US / 1.0e6
        return self.ec_time_s(level) + self.raw_transversal_cycles() * cycle_s

    # -- reliability ------------------------------------------------------
    def failure_rate(self, level: int, p0: float = None) -> float:
        """Gottesman local fault-tolerance estimate (Equation 1).

        ``Pf = (pth / r**L) * (p0 / pth) ** (2**L)``, with ``r`` the mean
        communication distance between level-1 blocks (12 cells) and
        ``p0`` defaulting to the average component failure rate of the
        technology point.
        """
        self._check_level(level)
        if p0 is None:
            p0 = self.params.average_failure_rate()
        if level == 0:
            return p0
        pth = self.spec.threshold
        return (pth / GOTTESMAN_R ** level) * (p0 / pth) ** (2 ** level)

    def min_level_for(self, error_budget_per_op: float) -> int:
        """Smallest recursion level meeting a per-operation error budget."""
        if not 0 < error_budget_per_op < 1:
            raise ValueError("budget must be a probability in (0, 1)")
        for level in range(0, 8):
            if self.failure_rate(level) <= error_budget_per_op:
                return level
        raise ValueError(
            "no recursion level up to 7 meets the budget; the technology "
            "point is below threshold"
        )

    # -- misc -------------------------------------------------------------
    @staticmethod
    def _check_level(level: int) -> None:
        if level < 0:
            raise ValueError("recursion level cannot be negative")
        if level > 8:
            raise ValueError("recursion level above 8 is not modeled")

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"ConcatenatedCode({self.spec.display_name})"


@lru_cache(maxsize=None)
def steane_concatenated() -> ConcatenatedCode:
    """Shared Steane instance at the default technology point."""
    return ConcatenatedCode.steane()


@lru_cache(maxsize=None)
def bacon_shor_concatenated() -> ConcatenatedCode:
    """Shared Bacon-Shor instance at the default technology point."""
    return ConcatenatedCode.bacon_shor()


def by_key(key: str) -> ConcatenatedCode:
    if key == "steane":
        return steane_concatenated()
    if key == "bacon_shor":
        return bacon_shor_concatenated()
    raise ValueError(f"unknown code key {key!r}")
