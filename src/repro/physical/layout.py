"""Trapping-region grid geometry (Figure 1 of the paper).

The physical machine is a two-dimensional grid of *trapping regions*
connected by shared *junctions*.  A logical-qubit tile is a rectangular
patch of this grid that holds the ion-qubits of one encoded qubit plus
the open regions used as movement channels.

This module provides the grid coordinate system, Manhattan routing
distances and the tile-geometry helper used by :mod:`repro.arch.tile` to
turn ion counts into silicon (well, alumina) area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .params import DEFAULT_PARAMS, PhysicalParams

Coord = Tuple[int, int]


@dataclass(frozen=True)
class GridSpec:
    """A rectangular grid of trapping regions.

    ``rows`` x ``cols`` regions; each region can hold at most
    ``capacity`` ions (two ions in one region are required for a two-qubit
    gate, per Figure 1(b)).
    """

    rows: int
    cols: int
    capacity: int = 2

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.capacity < 1:
            raise ValueError("region capacity must be at least 1")

    @property
    def n_regions(self) -> int:
        return self.rows * self.cols

    def contains(self, coord: Coord) -> bool:
        r, c = coord
        return 0 <= r < self.rows and 0 <= c < self.cols

    def coords(self) -> Iterator[Coord]:
        for r in range(self.rows):
            for c in range(self.cols):
                yield (r, c)

    def neighbors(self, coord: Coord) -> List[Coord]:
        """The 4-connected neighbor regions (junction-linked)."""
        r, c = coord
        candidates = [(r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)]
        return [n for n in candidates if self.contains(n)]

    def area_um2(self, params: PhysicalParams = DEFAULT_PARAMS) -> float:
        return self.n_regions * params.region_area_um2

    def area_mm2(self, params: PhysicalParams = DEFAULT_PARAMS) -> float:
        return self.area_um2(params) / 1.0e6


def manhattan(a: Coord, b: Coord) -> int:
    """Number of fundamental move hops between two regions."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def route(a: Coord, b: Coord) -> List[Coord]:
    """A dimension-ordered (row-first) shortest path from ``a`` to ``b``.

    The returned list includes both endpoints.  Junction contention along
    the path is resolved by the machine executor, not here.
    """
    path = [a]
    r, c = a
    step_r = 1 if b[0] > r else -1
    while r != b[0]:
        r += step_r
        path.append((r, c))
    step_c = 1 if b[1] > c else -1
    while c != b[1]:
        c += step_c
        path.append((r, c))
    return path


def near_square_grid(n_slots: int) -> GridSpec:
    """Smallest near-square grid with at least ``n_slots`` regions."""
    if n_slots <= 0:
        raise ValueError("need at least one slot")
    rows = max(1, int(math.floor(math.sqrt(n_slots))))
    cols = int(math.ceil(n_slots / rows))
    return GridSpec(rows=rows, cols=cols)


@dataclass(frozen=True)
class TileGeometry:
    """Geometry of a logical-qubit tile on the trapping-region grid.

    A tile hosting ``n_ions`` ion-qubits needs one trapping region per
    ion plus open regions for ballistic movement.  The amount of movement
    headroom depends on the code's physical layout:

    * ``channel_fraction`` — open regions per ion region.  Codes that only
      ever interact nearest neighbors (the Bacon-Shor 3x3 layout) need
      little headroom; codes whose syndrome extraction shuttles ancilla
      blocks across the tile (Steane) need channel rows between ion rows.
    """

    n_ions: int
    channel_fraction: float

    def __post_init__(self) -> None:
        if self.n_ions <= 0:
            raise ValueError("a tile must hold at least one ion")
        if self.channel_fraction < 0:
            raise ValueError("channel fraction cannot be negative")

    @property
    def n_regions(self) -> int:
        """Total trapping regions (ion homes plus movement channels)."""
        return int(math.ceil(self.n_ions * (1.0 + self.channel_fraction)))

    def grid(self) -> GridSpec:
        return near_square_grid(self.n_regions)

    def area_um2(self, params: PhysicalParams = DEFAULT_PARAMS) -> float:
        return self.n_regions * params.region_area_um2

    def area_mm2(self, params: PhysicalParams = DEFAULT_PARAMS) -> float:
        return self.area_um2(params) / 1.0e6

    @property
    def side_regions(self) -> int:
        """Side length of the (near-square) tile in regions."""
        g = self.grid()
        return max(g.rows, g.cols)

    def mean_hop_distance(self) -> float:
        """Mean Manhattan distance between random regions of the tile.

        For a ``rows x cols`` grid the expected Manhattan distance between
        two uniformly random cells is ``(rows^2-1)/(3*rows) / ...`` per
        axis; we use the standard closed form per axis and sum them.  This
        drives the movement-cost estimates of the EC schedules.
        """
        g = self.grid()

        def axis_mean(n: int) -> float:
            if n <= 1:
                return 0.0
            return (n * n - 1) / (3.0 * n)

        return axis_mean(g.rows) + axis_mean(g.cols)
