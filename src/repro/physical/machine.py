"""A cycle-level executor for ion-trap micro-schedules.

This is the microarchitectural substrate of the reproduction: ions live
at trapping-region coordinates on a :class:`~repro.physical.layout.GridSpec`,
and a schedule of fundamental operations (gates, moves, splits, cooling,
measurement) is executed cycle by cycle.  Trapping regions are a shared
resource — a region may host at most ``capacity`` ions and a junction may
pass one ion per cycle — so the executor resolves contention by stalling,
exactly the serialization effect the paper identifies at the
microarchitecture level.

The executor reports the makespan in fundamental cycles and the
accumulated failure probability of the schedule, which feed the
error-correction timing models in :mod:`repro.ecc.schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .layout import Coord, GridSpec, manhattan, route
from .params import DEFAULT_PARAMS, Op, PhysicalParams


@dataclass(frozen=True)
class MicroOp:
    """One fundamental operation on named ions.

    ``op`` is the physical primitive; ``ions`` names the participating
    ions (one for single-qubit ops, two for two-qubit gates); ``dest`` is
    the target region for :data:`Op.MOVE`.
    """

    op: Op
    ions: Tuple[str, ...]
    dest: Optional[Coord] = None

    def __post_init__(self) -> None:
        if self.op is Op.DOUBLE_GATE and len(self.ions) != 2:
            raise ValueError("two-qubit gates take exactly two ions")
        if self.op is Op.MOVE and self.dest is None:
            raise ValueError("moves need a destination region")
        if self.op is not Op.DOUBLE_GATE and self.op is not Op.MOVE:
            if len(self.ions) != 1:
                raise ValueError(f"{self.op} takes exactly one ion")


@dataclass
class ExecutionResult:
    """Outcome of running a micro-schedule."""

    cycles: int
    op_counts: Dict[Op, int]
    failure_probability: float
    stall_cycles: int

    @property
    def duration_us(self) -> float:
        from .params import CYCLE_TIME_US

        return self.cycles * CYCLE_TIME_US

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1.0e6


class ContentionError(RuntimeError):
    """Raised when a schedule is physically impossible (overfull region)."""


@dataclass
class TrapMachine:
    """Cycle-level state of a patch of the ion-trap grid.

    Ions are registered by name at initial coordinates.  The machine then
    executes *steps*: groups of :class:`MicroOp` intended to run in
    parallel.  Ops within a step that contend for the same region or
    junction are serialized into later cycles automatically.
    """

    grid: GridSpec
    params: PhysicalParams = field(default_factory=lambda: DEFAULT_PARAMS)

    def __post_init__(self) -> None:
        self._positions: Dict[str, Coord] = {}
        self._clock = 0
        self._stalls = 0
        self._op_counts: Dict[Op, int] = {op: 0 for op in Op}
        self._log_success = 0.0  # sum of log(1 - p) over executed ops
        self._moves_since_cool: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # setup / inspection
    # ------------------------------------------------------------------
    def add_ion(self, name: str, coord: Coord) -> None:
        if name in self._positions:
            raise ValueError(f"ion {name!r} already placed")
        if not self.grid.contains(coord):
            raise ValueError(f"{coord} outside grid")
        if self._occupancy(coord) >= self.grid.capacity:
            raise ContentionError(f"region {coord} is full")
        self._positions[name] = coord
        self._moves_since_cool[name] = 0

    def position(self, name: str) -> Coord:
        return self._positions[name]

    def ions(self) -> List[str]:
        return sorted(self._positions)

    @property
    def clock(self) -> int:
        return self._clock

    def _occupancy(self, coord: Coord) -> int:
        return sum(1 for c in self._positions.values() if c == coord)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, steps: Sequence[Sequence[MicroOp]]) -> ExecutionResult:
        """Execute a schedule of parallel steps; return the result."""
        for step in steps:
            self._run_step(list(step))
        import math

        failure = 1.0 - math.exp(self._log_success)
        return ExecutionResult(
            cycles=self._clock,
            op_counts=dict(self._op_counts),
            failure_probability=failure,
            stall_cycles=self._stalls,
        )

    def _run_step(self, ops: List[MicroOp]) -> None:
        """Run one intended-parallel step, serializing on contention.

        Every op in the step starts no earlier than the step's start time;
        the step ends when its slowest op ends.  Junctions pass one ion
        per cycle, so two moves crossing the same region serialize.
        """
        start = self._clock
        end = start
        # junction reservation table: (cycle, region) -> taken
        reserved: Dict[Tuple[int, Coord], bool] = {}
        for op in ops:
            finish = self._issue(op, start, reserved)
            end = max(end, finish)
        self._clock = end

    def _issue(
        self,
        op: MicroOp,
        start: int,
        reserved: Dict[Tuple[int, Coord], bool],
    ) -> int:
        if op.op is Op.MOVE:
            return self._issue_move(op, start, reserved)
        for ion in op.ions:
            if ion not in self._positions:
                raise KeyError(f"unknown ion {ion!r}")
        if op.op is Op.DOUBLE_GATE:
            a, b = (self._positions[i] for i in op.ions)
            if a != b:
                raise ContentionError(
                    "two-qubit gate requires co-located ions "
                    f"({op.ions[0]} at {a}, {op.ions[1]} at {b})"
                )
        self._account(op.op, n=1)
        return start + self.params.cycles(op.op)

    def _issue_move(
        self,
        op: MicroOp,
        start: int,
        reserved: Dict[Tuple[int, Coord], bool],
    ) -> int:
        ion = op.ions[0]
        src = self._positions[ion]
        dest = op.dest
        assert dest is not None
        if not self.grid.contains(dest):
            raise ValueError(f"{dest} outside grid")
        path = route(src, dest)
        hops = len(path) - 1
        if hops == 0:
            return start
        # Destination must have room (the moving ion vacates its source).
        if self._occupancy(dest) >= self.grid.capacity:
            raise ContentionError(f"destination {dest} is full")
        cycles_per_hop = self.params.cycles(Op.MOVE)
        t = start
        for waypoint in path[1:]:
            # wait for a free junction slot into `waypoint`
            while reserved.get((t, waypoint), False):
                t += 1
                self._stalls += 1
            reserved[(t, waypoint)] = True
            t += cycles_per_hop
        self._positions[ion] = dest
        self._account(Op.MOVE, n=hops)
        self._moves_since_cool[ion] = self._moves_since_cool.get(ion, 0) + hops
        return t

    def _account(self, op: Op, n: int) -> None:
        import math

        self._op_counts[op] += n
        p = self.params.failure_rate(op)
        if p > 0.0:
            if p >= 1.0:
                raise ValueError("failure rate must be < 1")
            self._log_success += n * math.log1p(-p)

    # ------------------------------------------------------------------
    # convenience builders
    # ------------------------------------------------------------------
    def gate_step(self, *ions: str) -> List[MicroOp]:
        """A step applying one gate over the given ions (1 or 2)."""
        if len(ions) == 1:
            return [MicroOp(Op.SINGLE_GATE, ions)]
        if len(ions) == 2:
            return [MicroOp(Op.DOUBLE_GATE, ions)]
        raise ValueError("gate_step takes one or two ions")

    def bring_together(self, mover: str, target: str) -> List[List[MicroOp]]:
        """Steps moving ``mover`` into the region of ``target``."""
        dest = self._positions[target]
        return [[MicroOp(Op.MOVE, (mover,), dest=dest)]]


def interaction_cost_cycles(
    grid: GridSpec,
    a: Coord,
    b: Coord,
    params: PhysicalParams = DEFAULT_PARAMS,
) -> int:
    """Cycles to bring two ions together, gate, and return the mover.

    This closed-form helper mirrors what :class:`TrapMachine` computes for
    an uncontended interaction: move one ion to the other (Manhattan
    distance), apply the two-qubit gate, and move it home.
    """
    hops = manhattan(a, b)
    move = params.cycles(Op.MOVE)
    gate = params.cycles(Op.DOUBLE_GATE)
    return 2 * hops * move + gate
