"""Physical ion-trap technology parameters (Table 1 of the paper).

The paper evaluates the CQLA against two parameter sets for trapped-ion
hardware: the experimentally demonstrated values circa 2006 (*now*) and
the projected values used for the architecture study (*future*).  All
architectural timing in this package is derived from one of these sets;
the paper's headline results use the *future* set with a fundamental
clock cycle of 10 microseconds.

Durations are stored in microseconds, failure rates are dimensionless
probabilities per operation (movement failure is per fundamental move of
one trapping-region pitch), and lengths are in micrometers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict

#: Fundamental clock-cycle duration assumed by the architecture study.
CYCLE_TIME_US = 10.0

#: Microseconds per second, for unit conversions in timing code.
US_PER_SECOND = 1.0e6


class Op(enum.Enum):
    """Fundamental physical operations of the ion-trap microarchitecture.

    Each enum member is one of the un-encoded primitives of Section 2.2:
    one- and two-qubit laser gates, measurement, ballistic movement by one
    trapping region, chain splitting and sympathetic cooling.
    """

    SINGLE_GATE = "single_gate"
    DOUBLE_GATE = "double_gate"
    MEASURE = "measure"
    MOVE = "move"
    SPLIT = "split"
    COOL = "cool"


@dataclass(frozen=True)
class OpParams:
    """Timing and reliability of one fundamental operation."""

    duration_us: float
    failure_rate: float

    @property
    def cycles(self) -> int:
        """Duration in whole fundamental clock cycles (minimum one)."""
        return max(1, math.ceil(self.duration_us / CYCLE_TIME_US))


@dataclass(frozen=True)
class PhysicalParams:
    """A complete ion-trap technology operating point.

    Attributes mirror Table 1 of the paper.  ``trap_size_um`` is the size
    of a single electrode trap; ``electrodes_per_region`` scales it to a
    trapping region, whose pitch (including its junction share) is exposed
    by :attr:`region_pitch_um`.
    """

    name: str
    ops: Dict[Op, OpParams] = field(repr=False)
    memory_time_s: float
    trap_size_um: float
    #: Movement failure as quoted in Table 1: per micrometer traveled.
    #: The per-hop rate stored under ``Op.MOVE`` is this value scaled to
    #: a full trapping-region pitch (the paper's "order of 1e-6").
    move_failure_per_um: float = 0.0
    electrodes_per_region: int = 10

    @property
    def region_pitch_um(self) -> float:
        """Linear dimension of one trapping region including junction."""
        return self.trap_size_um * self.electrodes_per_region

    @property
    def region_area_um2(self) -> float:
        """Area of one trapping region (square pitch)."""
        return self.region_pitch_um ** 2

    def duration_us(self, op: Op) -> float:
        """Duration of a fundamental operation in microseconds."""
        return self.ops[op].duration_us

    def cycles(self, op: Op) -> int:
        """Duration of a fundamental operation in clock cycles."""
        return self.ops[op].cycles

    def failure_rate(self, op: Op) -> float:
        """Failure probability of a fundamental operation."""
        return self.ops[op].failure_rate

    def average_failure_rate(self) -> float:
        """Mean failure probability over the Table 1 entries.

        The paper's Equation 1 takes "as p0 the average of the expected
        failure probabilities given in Table 1" — one-qubit gates,
        two-qubit gates, measurement, and movement *as quoted there*
        (per micrometer, not per region hop).
        """
        rates = [
            self.ops[Op.SINGLE_GATE].failure_rate,
            self.ops[Op.DOUBLE_GATE].failure_rate,
            self.ops[Op.MEASURE].failure_rate,
            self.move_failure_per_um,
        ]
        return sum(rates) / len(rates)

    def scaled(self, name: str, failure_scale: float) -> "PhysicalParams":
        """Return a copy with every failure rate multiplied by a factor.

        Convenient for sensitivity sweeps around a technology point.
        """
        scaled_ops = {
            op: OpParams(p.duration_us, p.failure_rate * failure_scale)
            for op, p in self.ops.items()
        }
        return replace(self, name=name, ops=scaled_ops)


def now_params() -> PhysicalParams:
    """Experimentally demonstrated parameters (Table 1, *now* column)."""
    return PhysicalParams(
        name="now",
        ops={
            Op.SINGLE_GATE: OpParams(1.0, 1.0e-4),
            Op.DOUBLE_GATE: OpParams(10.0, 0.03),
            Op.MEASURE: OpParams(200.0, 0.01),
            # Movement failure in the *now* column is quoted per um; one
            # fundamental move covers a 200 um trap, giving 5e-3/um * 200.
            Op.MOVE: OpParams(20.0, 0.005),
            Op.SPLIT: OpParams(200.0, 0.0),
            Op.COOL: OpParams(200.0, 0.0),
        },
        memory_time_s=10.0,
        trap_size_um=200.0,
        move_failure_per_um=0.005,
    )


def future_params() -> PhysicalParams:
    """Projected parameters used for the CQLA study (Table 1, future).

    Failure rates follow Section 2.2: 1e-8 for one-qubit operations and
    measurement, 1e-7 for CNOT, and order 1e-6 per fundamental move
    (5e-8/um over a 5 um trap scaled to a full region hop, per the paper's
    stated "order of 1e-6" assumption).
    """
    return PhysicalParams(
        name="future",
        ops={
            Op.SINGLE_GATE: OpParams(1.0, 1.0e-8),
            Op.DOUBLE_GATE: OpParams(10.0, 1.0e-7),
            Op.MEASURE: OpParams(10.0, 1.0e-8),
            Op.MOVE: OpParams(10.0, 1.0e-6),
            Op.SPLIT: OpParams(0.1, 0.0),
            Op.COOL: OpParams(0.1, 0.0),
        },
        memory_time_s=100.0,
        trap_size_um=5.0,
        move_failure_per_um=5.0e-8,
    )


#: Default operating point for all architecture results.
DEFAULT_PARAMS = future_params()
