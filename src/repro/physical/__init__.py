"""Ion-trap physical substrate: parameters, layout and micro-execution.

This package owns the bottom of the stack: the Table 1 operation
times/failure rates (:mod:`repro.physical.params`, now and projected),
trapping-region grid geometry and routing
(:mod:`repro.physical.layout`), the cycle-level
:class:`TrapMachine` micro-executor (:mod:`repro.physical.machine`)
and classical-control budgets (:mod:`repro.physical.control`).  Every
EC period, gate time and area in the layers above bottoms out in
these numbers.
"""

from .control import (
    ControlBudget,
    control_budget,
    control_reduction,
    qla_control_budget,
)
from .layout import Coord, GridSpec, TileGeometry, manhattan, near_square_grid, route
from .machine import (
    ContentionError,
    ExecutionResult,
    MicroOp,
    TrapMachine,
    interaction_cost_cycles,
)
from .params import (
    CYCLE_TIME_US,
    DEFAULT_PARAMS,
    Op,
    OpParams,
    PhysicalParams,
    future_params,
    now_params,
)

__all__ = [
    "CYCLE_TIME_US",
    "DEFAULT_PARAMS",
    "ContentionError",
    "ControlBudget",
    "Coord",
    "control_budget",
    "control_reduction",
    "qla_control_budget",
    "ExecutionResult",
    "GridSpec",
    "MicroOp",
    "Op",
    "OpParams",
    "PhysicalParams",
    "TileGeometry",
    "TrapMachine",
    "future_params",
    "interaction_cost_cycles",
    "manhattan",
    "near_square_grid",
    "now_params",
    "route",
]
