"""Laser-control cost model (the paper's Section 7 future work).

"For ion-traps, lasers can also be a control issue... minimize the
number of lasers and minimize the power consumed by each laser, since
power is proportional to fanout.  Efficiently routing control signals to
all electrodes in an ion-trap is a challenging proposition."

This module provides that analysis for CQLA floorplans: laser-bank
counts from concurrent-gate requirements, per-laser power from MEMS
fanout, and electrode-signal counts per region — allowing control cost
to be traded against the block counts chosen in the design space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .params import DEFAULT_PARAMS, PhysicalParams

if TYPE_CHECKING:  # avoid the physical -> arch -> ecc -> physical cycle
    from ..arch.regions import CqlaFloorplan

#: Ions one laser bank can address concurrently through a MEMS mirror
#: array (Kim et al., cited in Section 2.2).
MEMS_FANOUT = 32

#: Relative power of one laser bank driving ``f`` targets: proportional
#: to fanout, normalized to one target.
def laser_power(fanout: int) -> float:
    if fanout < 1:
        raise ValueError("fanout must be positive")
    return float(fanout)


#: Control electrodes per trapping region (Section 2.2: ~10).
ELECTRODES_PER_REGION = 10


@dataclass(frozen=True)
class ControlBudget:
    """Laser and electrode-signal requirements of one floorplan."""

    laser_banks: int
    total_fanout: int
    electrode_signals: int

    @property
    def total_power(self) -> float:
        """Aggregate laser power in single-target units."""
        return float(self.total_fanout)

    @property
    def power_per_bank(self) -> float:
        return self.total_fanout / self.laser_banks if self.laser_banks else 0.0


def concurrent_gate_sites(plan: "CqlaFloorplan") -> int:
    """Upper bound on simultaneously pulsed ion sites.

    Every compute block may run one logical transversal gate (its data
    sub-qubits pulse together), memory interleaves error corrections at
    the 8:1 ancilla sharing rate, and the cache ECs with compute-like
    density at level 1.
    """
    from ..ecc.concatenated import by_key

    code = by_key(plan.code_key)
    per_l2_gate = code.data_ions(2)
    sites = plan.l2_blocks * per_l2_gate
    memory_ec_groups = plan.memory.ancilla_qubits  # one EC per shared ancilla
    sites += memory_ec_groups * code.data_ions(2)
    if plan.l1_blocks:
        sites += plan.l1_blocks * code.data_ions(1)
        sites += plan.cache.capacity * code.data_ions(1) // 8
    return sites


def control_budget(
    plan: "CqlaFloorplan",
    params: PhysicalParams = DEFAULT_PARAMS,
) -> ControlBudget:
    """Laser-bank count, fanout and electrode signals for a floorplan."""
    fanout = concurrent_gate_sites(plan)
    banks = math.ceil(fanout / MEMS_FANOUT)
    area_mm2 = plan.area_mm2()
    regions = area_mm2 * 1.0e6 / params.region_area_um2
    signals = int(round(regions * ELECTRODES_PER_REGION))
    return ControlBudget(
        laser_banks=banks,
        total_fanout=fanout,
        electrode_signals=signals,
    )


def qla_control_budget(
    n_bits: int,
    params: PhysicalParams = DEFAULT_PARAMS,
) -> ControlBudget:
    """The same budget for the sea-of-qubits baseline.

    Every QLA site may compute concurrently (that is its premise), so
    the fanout covers every logical qubit's data ions — the control
    burden the CQLA's specialization avoids.
    """
    from ..arch.qla import QlaMachine
    from ..ecc.concatenated import steane_concatenated

    qla = QlaMachine(n_bits)
    code = steane_concatenated()
    fanout = qla.logical_qubits * 3 * code.data_ions(2)  # data + 2 ancilla
    banks = math.ceil(fanout / MEMS_FANOUT)
    regions = qla.area_mm2() * 1.0e6 / params.region_area_um2
    return ControlBudget(
        laser_banks=banks,
        total_fanout=fanout,
        electrode_signals=int(round(regions * ELECTRODES_PER_REGION)),
    )


def control_reduction(plan: "CqlaFloorplan", n_bits: int) -> float:
    """Factor by which the CQLA cuts laser-bank requirements vs QLA."""
    cqla = control_budget(plan)
    qla = qla_control_budget(n_bits)
    return qla.laser_banks / cqla.laser_banks
