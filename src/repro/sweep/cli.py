"""Worker CLI for sharded sweeps: ``run``/``status``/``merge``/``resume``/``serve``/``table``.

The distributed workflow over the engine design space
(:func:`repro.core.design_space.engine_grid`)::

    # K workers, anywhere with the same store directory (or each with
    # its own directory, merged later — records are content-addressed):
    python -m repro.sweep run --shard 0/4 --store /shared/sweep
    python -m repro.sweep run --shard 1/4 --store /shared/sweep
    ...

    python -m repro.sweep status --store /shared/sweep --shards 4
    python -m repro.sweep resume --store /shared/sweep   # after a crash
    python -m repro.sweep merge  --store /shared/sweep --output rows.json

Every ``--store`` accepts a backend locator
(:mod:`repro.perf.backends`): a bare path or ``fs:DIR`` is the
filesystem store, ``sqlite:PATH`` keeps the whole store in one SQLite
database — interchangeable byte-for-byte at the record level, so any
workflow above runs unchanged against either.  ``serve`` stands up the
read-only HTTP query service (:mod:`repro.service`) over a store::

    python -m repro.sweep serve --store sqlite:/shared/sweep.db --port 8123
    curl http://HOST:8123/v1/status
    curl http://HOST:8123/v1/table
    curl -N "http://HOST:8123/v1/progress?interval=2"   # streamed ticks

Every subcommand takes the same grid options, so the workers, the
status probe, and the merge all agree on the canonical cell enumeration.
``merge --verify`` recomputes the whole grid single-process in-memory
and asserts the reassembled rows are bit-identical — the CI sharding
job uses it as its correctness gate.

Fault tolerance: ``run``/``resume`` take ``--retries``, ``--cell-timeout``
and ``--max-failures``; any of them switches execution to the supervised
pool (:mod:`repro.perf.supervise`), which retries transient faults,
reaps hung cells, rebuilds crashed workers, and *quarantines* cells
that exhaust their attempts (durable failure record, shard still exits
0).  ``status`` reports quarantined cells; ``merge --allow-missing``
degrades gracefully, emitting the rows that exist plus a failure
footer instead of refusing the whole table.

Performance: ``run --batched`` / ``resume --batched`` (engine grids
only) executes each *traffic group* — cells differing only in priced
axes such as ``code_pairs`` — as one unit: the movement trace is
simulated once and re-priced per member, with stored records
bit-identical to the per-cell path.  Group-aware sharding keeps whole
groups on one worker.  ``--trace-cache DIR`` additionally persists each
group's movement trace as a verified, content-addressed blob shared
across shards and across run→resume — a warm cache turns any engine
sweep into a pure pricing pass with zero traffic simulation (the
printed ``(N extractions)`` tally proves it; ``status --trace-cache``
reports the cache-wide totals).  ``--profile`` wraps the shard in
cProfile and drops a ``.pstats`` dump next to the store directory.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Iterator, List, Optional

from ..perf.backends import locator_path, open_store
from ..perf.supervise import RetryPolicy, Supervision, TooManyFailures
from .grid import Grid, parse_shard_spec
from .runner import (
    MissingCells,
    compute_grid,
    kernel_registry,
    missing_report,
    rows_from_store,
)


#: Engine-only grid options (dest names); passing one of these with a
#: Table 3/4/5 kernel is an error, not a silent ignore.
_ENGINE_ONLY = (
    "workloads",
    "depths",
    "policies",
    "prefetches",
    "compute_qubits",
    "cache_factor",
    "code_pairs",
)

#: Options the Table 3 (transfer_cell) grid does not take either.
_TABLE45_ONLY = ("sizes", "transfers")

#: Fidelity-grid-only options (dest names); the other kernels reject
#: them the same way.
_FIDELITY_ONLY = ("fidelity_trials", "fidelity_seed")


def _parse_code_pair(spec: str):
    """One ``compute:memory`` mixed-stack axis entry, fully validated
    (unknown codes and same-code pairs fail at parse time with a clean
    usage error, not mid-shard inside a worker)."""
    from ..ecc.concatenated import by_key

    parts = spec.split(":")
    if len(parts) != 2 or not all(parts):
        raise argparse.ArgumentTypeError(
            f"code pair {spec!r} must be COMPUTE:MEMORY, "
            "e.g. bacon_shor:steane"
        )
    try:
        for key in parts:
            by_key(key)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"code pair {spec!r}: {exc}")
    if parts[0] == parts[1]:
        raise argparse.ArgumentTypeError(
            f"code pair {spec!r} is not mixed; pure-code stacks belong "
            "on --codes"
        )
    return tuple(parts)


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    grid = parser.add_argument_group(
        "grid options (must match across run/status/merge/resume)"
    )
    grid.add_argument(
        "--kernel",
        choices=(
            "engine_cell",
            "fidelity_cell",
            "specialization_cell",
            "hierarchy_cell",
            "transfer_cell",
        ),
        default="engine_cell",
        help="which sweep grid to shard (default: the engine design space; "
        "fidelity_cell = the same cells priced in time AND logical error, "
        "specialization_cell = Table 4, hierarchy_cell = Table 5, "
        "transfer_cell = the Table 3 transfer matrix)",
    )
    grid.add_argument("--workloads", nargs="+", default=None, metavar="NAME")
    grid.add_argument("--sizes", nargs="+", type=int, default=None, metavar="N")
    grid.add_argument("--codes", nargs="+", default=None, metavar="CODE")
    grid.add_argument("--depths", nargs="+", type=int, default=None, metavar="D")
    grid.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="POLICY",
        help="default: every registered eviction policy",
    )
    grid.add_argument("--prefetches", nargs="+", default=None, metavar="PF")
    grid.add_argument("--transfers", nargs="+", type=int, default=None, metavar="P")
    grid.add_argument("--compute-qubits", type=int, default=None, metavar="Q")
    grid.add_argument("--cache-factor", type=float, default=None, metavar="F")
    grid.add_argument(
        "--code-pairs",
        nargs="+",
        type=_parse_code_pair,
        default=None,
        metavar="COMPUTE:MEMORY",
        help="mixed-code stack axis of the engine grid, e.g. "
        "bacon_shor:steane (compute code over memory code)",
    )
    grid.add_argument(
        "--fidelity-trials",
        type=int,
        default=None,
        metavar="N",
        help="fidelity_cell grids: Monte Carlo calibration trials per "
        "(code, level) point (part of cell identity)",
    )
    grid.add_argument(
        "--fidelity-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="fidelity_cell grids: Monte Carlo calibration seed "
        "(part of cell identity)",
    )


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "fault tolerance (any of these enables the supervised pool)"
    )
    group.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per failing cell before quarantine (default 0)",
    )
    group.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline; hung workers are reaped",
    )
    group.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="abort the run (exit 1) after more than N quarantined cells",
    )


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--batched",
        action="store_true",
        help="engine grids only: simulate each traffic group once and "
        "re-price every member (bit-identical records, one group = one "
        "unit of work and of sharding)",
    )
    group.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="with --batched: persist each traffic group's movement trace "
        "under DIR (shared across shards and run/resume), so a warm "
        "re-run performs zero traffic simulation",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="profile this invocation with cProfile and write a .pstats "
        "dump next to the store directory",
    )


def _batch_from_args(args: argparse.Namespace):
    """``(BatchSpec, shard group_key)`` under ``--batched``, else ``(None, None)``.

    The traffic/price factorization is a property of the engine design
    space (replacement traffic is code-agnostic for reservation-model
    cells), so ``--batched`` with any other kernel is a usage error,
    not a silent fall-back.
    """
    if not getattr(args, "batched", False):
        if getattr(args, "trace_cache", None):
            raise SystemExit(
                "--trace-cache requires --batched (traces are artifacts "
                "of the batched traffic/price factorization)"
            )
        return None, None
    if args.kernel != "engine_cell":
        raise SystemExit(
            f"--batched only applies to engine_cell grids "
            f"(got --kernel {args.kernel})"
        )
    from ..core import design_space

    def group_key(cell):
        return design_space.engine_traffic_key(cell.as_dict())

    return (
        design_space.engine_batch_spec(getattr(args, "trace_cache", None)),
        group_key,
    )


@contextmanager
def _maybe_profile(args: argparse.Namespace, label: str) -> Iterator[None]:
    """cProfile the wrapped block under ``--profile``.

    The dump lands *next to* the store directory (a sibling file, never
    inside it) so profiling artifacts can't perturb the record set a
    ``merge`` or ``diff -r`` inspects.
    """
    if not getattr(args, "profile", False):
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        anchor = locator_path(args.store)
        path = anchor.parent / f"{anchor.name}-profile-{label}.pstats"
        profiler.dump_stats(path)
        print(f"profile: {path}")


def _trace_cache_line(deltas: dict) -> str:
    """The one-line hit/miss/bytes tally ``run``/``resume`` print.

    The ``(N extractions)`` clause is load-bearing: the CI warm-sweep
    job greps for ``(0 extractions)`` to prove a second invocation did
    zero traffic simulation.
    """
    return (
        f"trace cache: {deltas.get('hits', 0)} hits, "
        f"{deltas.get('misses', 0)} misses "
        f"({deltas.get('extractions', 0)} extractions), "
        f"{deltas.get('bytes_read', 0)} bytes read, "
        f"{deltas.get('bytes_written', 0)} bytes written"
    )


@contextmanager
def _trace_cache_tally(args: argparse.Namespace) -> Iterator[None]:
    """Print the run's trace-cache counter delta after the block.

    Counters accumulate durably in the cache's ``stats.json`` (pool
    workers and earlier runs included), so the delta across the block
    is exactly this invocation's activity.
    """
    directory = getattr(args, "trace_cache", None)
    if not directory:
        yield
        return
    from ..perf.tracecache import TraceCache

    cache = TraceCache(directory)
    before = cache.read_stats()
    try:
        yield
    finally:
        after = cache.read_stats()
        deltas = {
            name: value - before.get(name, 0) for name, value in after.items()
        }
        print(_trace_cache_line(deltas))


def _supervision_from_args(args: argparse.Namespace) -> Optional[Supervision]:
    """A :class:`Supervision` spec iff any fault-tolerance flag was given.

    With none of them the plain runner is used, keeping the default CLI
    path byte-for-byte the pre-supervision behaviour.
    """
    if not args.retries and args.cell_timeout is None and args.max_failures is None:
        return None
    return Supervision(
        retry=RetryPolicy(max_attempts=args.retries + 1),
        cell_timeout_s=args.cell_timeout,
        max_failures=args.max_failures,
        quarantine=True,
    )


def _report_quarantine(store, grid: Grid) -> int:
    """Print quarantined cells of ``grid``; returns how many there are."""
    failed = store.status(grid.keys()).failed_keys
    for key in failed:
        record = store.failure(key) or {}
        failure = record.get("failure", {})
        print(
            f"  quarantined {key}: {failure.get('kind', '?')} "
            f"({failure.get('exception_type', '?')} after "
            f"{failure.get('attempts', '?')} attempt(s))"
        )
    return len(failed)


def _picked(args: argparse.Namespace, **renames: str) -> dict:
    """CLI options that were explicitly set, renamed to grid kwargs."""
    return {
        kwarg: getattr(args, dest)
        for dest, kwarg in renames.items()
        if getattr(args, dest) is not None
    }


def _grid_from_args(args: argparse.Namespace) -> Grid:
    # Omitted options take the grid builders' defaults, so the CLI and
    # the in-process sweeps enumerate the same canonical grid.
    from ..core import design_space

    if args.kernel != "fidelity_cell":
        stray = [
            "--" + dest.replace("_", "-")
            for dest in _FIDELITY_ONLY
            if getattr(args, dest) is not None
        ]
        if stray:
            raise SystemExit(
                f"{args.kernel} grids do not take {', '.join(stray)} "
                f"(fidelity-grid options)"
            )
    if args.kernel in ("engine_cell", "fidelity_cell"):
        picks = _picked(
            args,
            workloads="workloads",
            sizes="sizes",
            codes="code_keys",
            depths="depths",
            policies="policies",
            prefetches="prefetches",
            transfers="transfer_options",
            compute_qubits="compute_qubits",
            cache_factor="cache_factor",
            code_pairs="code_pairs",
        )
        if args.kernel == "fidelity_cell":
            picks.update(_picked(
                args,
                fidelity_trials="fidelity_trials",
                fidelity_seed="fidelity_seed",
            ))
            return design_space.fidelity_grid(**picks)
        return design_space.engine_grid(**picks)
    stray = [
        "--" + dest.replace("_", "-")
        for dest in _ENGINE_ONLY
        if getattr(args, dest) is not None
    ]
    if stray:
        raise SystemExit(
            f"{args.kernel} grids do not take {', '.join(stray)} "
            f"(engine-grid options)"
        )
    if args.kernel == "transfer_cell":
        stray = [
            "--" + dest.replace("_", "-")
            for dest in _TABLE45_ONLY
            if getattr(args, dest) is not None
        ]
        if stray:
            raise SystemExit(
                f"transfer_cell grids do not take {', '.join(stray)} "
                f"(the Table 3 matrix has no size or transfer axis)"
            )
        return design_space.transfer_grid(**_picked(args, codes="code_keys"))
    if args.kernel == "specialization_cell":
        return design_space.specialization_grid(
            **_picked(args, sizes="sizes", codes="code_keys")
        )
    return design_space.hierarchy_grid(
        **_picked(args, sizes="sizes", codes="code_keys", transfers="transfer_options")
    )


def _cmd_run(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    index, count = parse_shard_spec(args.shard)
    batch, group_key = _batch_from_args(args)
    shard = grid.shard(index, count, group_key=group_key)
    store = open_store(args.store)
    before = store.status(shard.keys())
    fn, row_type = kernel_registry()[grid.kernel]
    try:
        with _trace_cache_tally(args), _maybe_profile(args, f"shard{index}of{count}"):
            compute_grid(
                shard,
                fn,
                row_type,
                store=store,
                workers=args.workers,
                supervise=_supervision_from_args(args),
                batch=batch,
            )
    except TooManyFailures as exc:
        print(f"shard {index}/{count} aborted: {exc}", file=sys.stderr)
        return 1
    print(
        f"shard {index}/{count}: {len(shard)} of {len(grid)} cells "
        f"({before.done} already stored, {before.missing} computed)"
    )
    # Quarantined cells are reported but do not fail the shard: the
    # other K-1 shards' work stays mergeable and a resume can retry.
    _report_quarantine(store, shard)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    batch, _ = _batch_from_args(args)
    store = open_store(args.store)
    before = store.status(grid.keys())
    fn, row_type = kernel_registry()[grid.kernel]
    try:
        with _trace_cache_tally(args), _maybe_profile(args, "resume"):
            compute_grid(
                grid,
                fn,
                row_type,
                store=store,
                workers=args.workers,
                supervise=_supervision_from_args(args),
                batch=batch,
            )
    except TooManyFailures as exc:
        print(f"resume aborted: {exc}", file=sys.stderr)
        return 1
    print(
        f"resume: {len(grid)} cells ({before.done} already stored, "
        f"{before.missing} computed)"
    )
    _report_quarantine(store, grid)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = open_store(args.store)
    overall = store.status(grid.keys())
    print(
        f"{grid.kernel} grid: {overall.done}/{overall.total} cells "
        f"stored in {args.store}"
        + (f" ({overall.failed} quarantined)" if overall.failed else "")
    )
    if args.shards:
        for index in range(args.shards):
            shard_status = store.status(grid.shard(index, args.shards).keys())
            print(
                f"  shard {index}/{args.shards}: "
                f"{shard_status.done}/{shard_status.total} done"
                + (
                    f", {shard_status.failed} quarantined"
                    if shard_status.failed
                    else ""
                )
            )
    if getattr(args, "trace_cache", None):
        from ..perf.tracecache import TraceCache

        cache = TraceCache(args.trace_cache)
        summary = cache.summary()
        print(
            f"trace cache {args.trace_cache}: {summary['entries']} blobs, "
            f"{summary['entry_bytes']} bytes; lifetime "
            + _trace_cache_line(summary)[len("trace cache: "):]
        )
    _report_quarantine(store, grid)
    return 0 if overall.complete else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = open_store(args.store)
    # Shard artifacts each shipped their own index.json and only one
    # survives a file-level directory merge; records are the truth.
    store.rebuild_index()
    fn, row_type = kernel_registry()[grid.kernel]
    try:
        rows = rows_from_store(
            grid, row_type, store, allow_missing=args.allow_missing
        )
    except MissingCells as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        for key in exc.keys[:10]:
            print(f"  missing {key}", file=sys.stderr)
        return 1
    present = [row for row in rows if row is not None]
    if args.allow_missing and len(present) < len(rows):
        # Graceful degradation: name every hole (and why, when a
        # quarantine record says) instead of refusing the whole table.
        print(
            f"merge degraded: {len(rows) - len(present)} of {len(rows)} "
            f"cells missing",
            file=sys.stderr,
        )
        for cell, failure_record in missing_report(grid, store):
            failure = (failure_record or {}).get("failure", {})
            why = (
                f"{failure.get('kind', '?')}: "
                f"{failure.get('exception_type', '?')} after "
                f"{failure.get('attempts', '?')} attempt(s)"
                if failure_record
                else "no record (never computed, or torn)"
            )
            print(f"  missing {cell.key}: {why}", file=sys.stderr)
    if args.verify:
        recomputed = compute_grid(grid, fn, row_type)
        # Under --allow-missing only the cells that exist are checked;
        # a quarantined hole is reported above, not a verify failure.
        mismatched = [
            index
            for index, row in enumerate(rows)
            if row is not None and recomputed[index] != row
        ]
        if mismatched:
            print(
                "verify FAILED: merged rows differ from a single-process sweep",
                file=sys.stderr,
            )
            return 1
        print(
            f"verify ok: {len(present)} rows bit-identical to a fresh sweep"
            + (
                f" ({len(rows) - len(present)} missing cells skipped)"
                if len(present) < len(rows)
                else ""
            )
        )
    payload = [asdict(row) for row in present]
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"merged {len(present)} rows into {args.output}")
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = open_store(args.store)
    from ..analysis.tables import render_table_from_store

    try:
        text = render_table_from_store(
            grid, store, allow_missing=args.allow_missing
        )
    except MissingCells as exc:
        print(f"table failed: {exc}", file=sys.stderr)
        for key in exc.keys[:10]:
            print(f"  missing {key}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # A kernel without a registered renderer (Table 4/5 render
        # through repro.analysis directly).
        print(f"table failed: {exc}", file=sys.stderr)
        return 1
    print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    grid = _grid_from_args(args)
    store = open_store(args.store)
    from ..service.server import run_service

    return run_service(
        store,
        grid,
        host=args.host,
        port=args.port,
        locator=args.store,
        trace_cache=getattr(args, "trace_cache", None),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sharded design-space sweeps over a durable result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compute one shard's missing cells")
    run.add_argument("--shard", default="0/1", metavar="i/K")
    run.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    run.add_argument("--workers", type=int, default=None, metavar="N")
    _add_grid_options(run)
    _add_supervision_options(run)
    _add_execution_options(run)
    run.set_defaults(fn=_cmd_run)

    resume = sub.add_parser(
        "resume", help="compute every missing cell of the whole grid"
    )
    resume.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    resume.add_argument("--workers", type=int, default=None, metavar="N")
    _add_grid_options(resume)
    _add_supervision_options(resume)
    _add_execution_options(resume)
    resume.set_defaults(fn=_cmd_resume)

    status = sub.add_parser("status", help="report stored vs missing cells")
    status.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    status.add_argument("--shards", type=int, default=None, metavar="K")
    status.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="also report the trace cache at DIR (blob count/bytes and "
        "the lifetime hit/miss tally)",
    )
    _add_grid_options(status)
    status.set_defaults(fn=_cmd_status)

    merge = sub.add_parser(
        "merge", help="reassemble the single-process row list from the store"
    )
    merge.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    merge.add_argument("--output", default=None, metavar="FILE")
    merge.add_argument(
        "--verify",
        action="store_true",
        help="recompute the grid in-process and assert bit-identical rows",
    )
    merge.add_argument(
        "--allow-missing",
        action="store_true",
        help="degrade gracefully: emit the rows that exist plus a failure "
        "footer instead of failing on missing/quarantined cells",
    )
    _add_grid_options(merge)
    merge.set_defaults(fn=_cmd_merge)

    table = sub.add_parser(
        "table",
        help="render the grid's analysis table from the store "
        "(engine_cell / fidelity_cell / transfer_cell; computes nothing)",
    )
    table.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    table.add_argument(
        "--allow-missing",
        action="store_true",
        help="degrade gracefully: render — cells and a failure footer "
        "instead of failing on missing/quarantined cells",
    )
    _add_grid_options(table)
    table.set_defaults(fn=_cmd_table)

    serve = sub.add_parser(
        "serve",
        help="HTTP query service over a store: tables, status, cell "
        "lookups, streamed progress (read-only; computes nothing)",
    )
    serve.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="store backend locator: DIR / fs:DIR / sqlite:PATH",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address (default 127.0.0.1; 0.0.0.0 for other hosts)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8123,
        metavar="N",
        help="bind port (default 8123; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="include this trace cache's summary in /v1/status",
    )
    _add_grid_options(serve)
    serve.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
