"""Grid execution: store read-through, compute, reassembly.

:func:`compute_grid` is the one engine every sweep goes through — the
single-process :func:`repro.core.design_space.engine_sweep` call, a
``python -m repro.sweep run --shard i/K`` worker, and a ``resume`` after
a crash are all the same loop: skip cells whose record is already in
the store, fan the rest over :func:`repro.perf.parallel.parallel_indexed`,
persist each result as it completes, return rows in canonical grid
order.

:func:`rows_from_store` is the read-only half — ``merge``, ``status``
and the table builders use it to reassemble a sweep without computing
anything, failing loudly (:class:`MissingCells`) when records are
absent or corrupt.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..perf.parallel import parallel_indexed
from ..perf.store import ResultStore, resolve_store
from .grid import Cell, Grid


class MissingCells(ValueError):
    """A read-only reassembly found cells with no readable record."""

    def __init__(self, grid: Grid, keys: Tuple[str, ...]) -> None:
        self.keys = keys
        super().__init__(
            f"store is missing {len(keys)}/{len(grid)} cells of the "
            f"{grid.kernel} grid (run `python -m repro.sweep resume` to "
            f"compute them)"
        )


def _row_from_record(row_type: Type, value: Any) -> Optional[Any]:
    """Rebuild a row dataclass from a stored record value, or None.

    A record whose value does not match the row schema (wrong fields,
    wrong shape — e.g. written by an older layout) is treated exactly
    like a corrupt file: missing, to be recomputed.
    """
    if not isinstance(value, dict):
        return None
    try:
        return row_type(**value)
    except TypeError:
        return None


def compute_grid(
    grid: Grid,
    fn: Callable[[Dict[str, Any]], Any],
    row_type: Type,
    *,
    store=None,
    workers: Optional[int] = None,
) -> List[Any]:
    """Rows for every grid cell, reading through ``store`` when given.

    ``fn`` maps one cell's parameter dict to one ``row_type`` row (it
    must be module-level so pool workers can pickle it).  Cells already
    in the store are not recomputed; freshly computed cells are
    persisted *as each result completes* (completion order, so a slow
    cell never delays the durability of faster ones — a worker killed
    mid-grid loses only its in-flight cells) with one batched
    index update at the end (the index is advisory; records are the
    truth and ``merge`` rebuilds it).  The returned list is always in
    canonical grid order, so a warm, cold, sharded, or mixed run yields
    the identical row sequence.
    """
    resolved: Optional[ResultStore] = resolve_store(store)
    cells = list(grid)
    rows: List[Any] = [None] * len(cells)
    todo: List[int] = []
    for position, cell in enumerate(cells):
        if resolved is not None:
            row = _row_from_record(row_type, resolved.get(cell.key))
            if row is not None:
                rows[position] = row
                continue
        todo.append(position)
    results = parallel_indexed(
        fn, [cells[position].as_dict() for position in todo], workers=workers
    )
    written: Dict[str, Any] = {}
    try:
        # Completion order, not input order: each finished cell is
        # persisted immediately, never queued behind a slower one.
        for offset, row in results:
            position = todo[offset]
            rows[position] = row
            if resolved is not None:
                written[cells[position].key] = _persist(resolved, cells[position], row)
    finally:
        if resolved is not None and written:
            resolved.index_add(written)
    return rows


def _persist(store: ResultStore, cell: Cell, row: Any) -> Dict[str, Any]:
    """Write one row's record (indexing deferred to the caller's batch)."""
    return store.put(
        cell.key, asdict(row), kernel=cell.kernel, params=cell.as_dict(), index=False
    )


def persist_rows(grid: Grid, rows: List[Any], store) -> None:
    """Write already-computed rows through to a store.

    Used when a sweep obtains its rows without touching the store —
    e.g. a whole-sweep memoization hit — so that ``store=`` always
    leaves a complete, mergeable record set behind.  Cells whose record
    already exists are left untouched.
    """
    resolved = resolve_store(store)
    if resolved is None:
        return
    written: Dict[str, Any] = {}
    for cell, row in zip(grid, rows):
        if not resolved.has(cell.key):
            written[cell.key] = _persist(resolved, cell, row)
    if written:
        resolved.index_add(written)


def rows_from_store(grid: Grid, row_type: Type, store) -> List[Any]:
    """Reassemble a complete sweep from stored records only.

    Raises :class:`MissingCells` (listing the absent keys) if any cell
    has no readable, schema-valid record — a merge must never silently
    return a partial sweep.
    """
    resolved = resolve_store(store)
    if resolved is None:
        raise ValueError("rows_from_store requires a store")
    rows: List[Any] = []
    missing: List[str] = []
    for cell in grid:
        row = _row_from_record(row_type, resolved.get(cell.key))
        if row is None:
            missing.append(cell.key)
        else:
            rows.append(row)
    if missing:
        raise MissingCells(grid, tuple(missing))
    return rows


def kernel_registry() -> Dict[str, Tuple[Callable[[Dict[str, Any]], Any], Type]]:
    """Kernel name -> (cell function, row type) for the worker CLI.

    Imported lazily: the design-space module itself imports this
    package for :func:`compute_grid`, and the registry is only needed
    by CLI entry points.
    """
    from ..core import design_space

    return {
        "engine_cell": (design_space.engine_cell, design_space.EngineRow),
        "specialization_cell": (
            design_space.specialization_cell,
            design_space.SpecializationRow,
        ),
        "hierarchy_cell": (design_space.hierarchy_cell, design_space.HierarchyRow),
        "transfer_cell": (design_space.transfer_cell, design_space.TransferRow),
    }
