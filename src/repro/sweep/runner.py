"""Grid execution: store read-through, compute, reassembly.

:func:`compute_grid` is the one engine every sweep goes through — the
single-process :func:`repro.core.design_space.engine_sweep` call, a
``python -m repro.sweep run --shard i/K`` worker, and a ``resume`` after
a crash are all the same loop: skip cells whose record is already in
the store, fan the rest over :func:`repro.perf.parallel.parallel_indexed`,
persist each result as it completes, return rows in canonical grid
order.

A ``supervise=`` :class:`repro.perf.supervise.Supervision` spec runs
the same loop under the supervised executor instead: transient faults
are retried, hung cells reaped, dead workers rebuilt, and a cell that
exhausts its retries is *quarantined* — its classified failure lands as
a durable store record and its row slot stays ``None`` — rather than
killing the shard (``quarantine=False`` restores fail-fast via
:class:`CellFailed`).  Fault-free supervised runs are bit-identical to
unsupervised ones.

:func:`rows_from_store` is the read-only half — ``merge``, ``status``
and the table builders use it to reassemble a sweep without computing
anything, failing loudly (:class:`MissingCells`) when records are
absent or corrupt, unless ``allow_missing=True`` degrades gracefully
(``None`` placeholders in canonical positions; see
:func:`missing_report` for the failure footer data).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..perf import chaos
from ..perf.parallel import parallel_indexed
from ..perf.store import ResultStore, resolve_store
from ..perf.supervise import CellFailure, Supervision, supervised_indexed
from .grid import Cell, Grid


class MissingCells(ValueError):
    """A read-only reassembly found cells with no readable record."""

    def __init__(self, grid: Grid, keys: Tuple[str, ...]) -> None:
        self.keys = keys
        super().__init__(
            f"store is missing {len(keys)}/{len(grid)} cells of the "
            f"{grid.kernel} grid (run `python -m repro.sweep resume` to "
            f"compute them)"
        )


class CellFailed(RuntimeError):
    """A supervised, non-quarantine run hit a terminal cell failure."""

    def __init__(self, cell: Cell, failure: CellFailure) -> None:
        self.cell = cell
        self.failure = failure
        super().__init__(
            f"cell {cell.key} of the {cell.kernel} grid failed terminally "
            f"({failure.kind}: {failure.exception_type} after "
            f"{failure.attempts} attempt(s))"
        )


@dataclass(frozen=True)
class BatchSpec:
    """How a grid's cells group into shared-work batches.

    ``group_key`` maps one cell's parameter dict to a stable group
    token, or ``None`` for cells that must run individually through the
    per-cell kernel.  ``fn`` is the group kernel: it takes the member
    parameter dicts of one group (in canonical grid order) and returns
    one row per member, same order.  Both must be module-level
    (picklable) so groups can run in pool workers.

    ``grid_fn`` is the optional whole-grid kernel: it takes *every*
    group's member tuple at once and returns one row list per group
    (same orders) — the engine's grid mode extracts or cache-loads all
    movement traces first, then prices the entire (group x config) grid
    in a single vectorized pass.  It must be bit-identical to mapping
    ``fn`` over the groups; the runner engages it only on serial,
    unsupervised runs (a process pool already spreads groups across
    cores, and supervision retries/quarantines per group), so every
    other execution mode is untouched.
    """

    group_key: Callable[[Dict[str, Any]], Optional[str]]
    fn: Callable[[Tuple[Dict[str, Any], ...]], List[Any]]
    grid_fn: Optional[
        Callable[[Tuple[Tuple[Dict[str, Any], ...], ...]], List[List[Any]]]
    ] = None


@dataclass(frozen=True)
class _BatchKernel:
    """Picklable dispatcher for batched work items.

    A work item is ``("cell", params)`` or ``("group", (params, ...))``;
    both return a *list* of rows so the runner maps results back
    uniformly.  Chaos faults fire per member — a scripted fault aimed
    at any one cell of a group poisons (and on retry, re-poisons) the
    whole group, which is the unit of supervised work.
    """

    cell_fn: Callable[[Dict[str, Any]], Any]
    group_fn: Callable[[Tuple[Dict[str, Any], ...]], List[Any]]

    def __call__(self, item: Tuple[str, Any]) -> List[Any]:
        kind, payload = item
        plan = chaos.active_plan()
        if kind == "cell":
            if plan is not None:
                plan.before_cell(payload)
            return [self.cell_fn(payload)]
        if plan is not None:
            for params in payload:
                plan.before_cell(params)
        return list(self.group_fn(payload))


def _row_from_record(row_type: Type, value: Any) -> Optional[Any]:
    """Rebuild a row dataclass from a stored record value, or None.

    A record whose value does not match the row schema (wrong fields,
    wrong shape — e.g. written by an older layout) is treated exactly
    like a corrupt file: missing, to be recomputed.
    """
    if not isinstance(value, dict):
        return None
    try:
        return row_type(**value)
    except TypeError:
        return None


def compute_grid(
    grid: Grid,
    fn: Callable[[Dict[str, Any]], Any],
    row_type: Type,
    *,
    store=None,
    workers: Optional[int] = None,
    supervise: Optional[Supervision] = None,
    batch: Optional[BatchSpec] = None,
) -> List[Any]:
    """Rows for every grid cell, reading through ``store`` when given.

    ``fn`` maps one cell's parameter dict to one ``row_type`` row (it
    must be module-level so pool workers can pickle it).  Cells already
    in the store are not recomputed; freshly computed cells are
    persisted *as each result completes* (completion order, so a slow
    cell never delays the durability of faster ones — a worker killed
    mid-grid loses only its in-flight cells) with one batched
    index update at the end (the index is advisory; records are the
    truth and ``merge`` rebuilds it).  The returned list is always in
    canonical grid order, so a warm, cold, sharded, or mixed run yields
    the identical row sequence.

    ``supervise`` switches execution to the supervised pool
    (:func:`repro.perf.supervise.supervised_indexed`): failures are
    retried per its policy, and a cell that exhausts its attempts is
    quarantined — a durable failure record replaces its result and its
    slot in the returned list is ``None`` — unless
    ``supervise.quarantine`` is False, in which case :class:`CellFailed`
    raises.  With the default :class:`Supervision` (one attempt, no
    deadline) fault-free output is bit-identical to the unsupervised
    path.

    ``batch`` (a :class:`BatchSpec`) groups cells that share work: each
    group is *one* unit of execution — one pool task, one supervised
    attempt (a transient fault retries only its group, charged once),
    one per-group deadline scaled by member count — while the store
    still receives one record per member cell, so memo keys, resume,
    quarantine and ``merge --verify`` are unaffected.  A terminal group
    failure quarantines every member, each failure record naming the
    full membership under ``"group_members"``.  A spec with a
    ``grid_fn`` additionally prices *all* groups in one whole-grid
    kernel call on serial unsupervised runs (see :class:`BatchSpec`);
    rows and records are pinned bit-identical either way.
    """
    resolved: Optional[ResultStore] = resolve_store(store)
    cells = list(grid)
    rows: List[Any] = [None] * len(cells)
    todo: List[int] = []
    for position, cell in enumerate(cells):
        if resolved is not None:
            row = _row_from_record(row_type, resolved.get(cell.key))
            if row is not None:
                rows[position] = row
                continue
        todo.append(position)
    written: Dict[str, Any] = {}
    try:
        if batch is None:
            _run_cells(
                grid,
                fn,
                cells,
                todo,
                rows,
                resolved,
                written,
                workers=workers,
                supervise=supervise,
            )
        else:
            _run_batched(
                grid,
                fn,
                batch,
                cells,
                todo,
                rows,
                resolved,
                written,
                workers=workers,
                supervise=supervise,
            )
    finally:
        if resolved is not None and written:
            resolved.index_add(written)
    return rows


def _run_cells(
    grid: Grid,
    fn: Callable[[Dict[str, Any]], Any],
    cells: List[Cell],
    todo: List[int],
    rows: List[Any],
    resolved: Optional[ResultStore],
    written: Dict[str, Any],
    *,
    workers: Optional[int],
    supervise: Optional[Supervision],
) -> None:
    """The per-cell execution loop of :func:`compute_grid`."""
    fn = chaos.wrap_if_active(fn)
    params_list = [cells[position].as_dict() for position in todo]
    # Completion order, not input order: each finished cell is
    # persisted immediately, never queued behind a slower one.
    if supervise is None:
        for offset, row in parallel_indexed(fn, params_list, workers=workers):
            position = todo[offset]
            rows[position] = row
            if resolved is not None:
                written[cells[position].key] = _persist(resolved, cells[position], row)
        return
    outcomes = supervised_indexed(
        fn, params_list, workers=workers, supervision=supervise
    )
    for outcome in outcomes:
        position = todo[outcome.index]
        cell = cells[position]
        if outcome.ok:
            rows[position] = outcome.value
            if resolved is not None:
                written[cell.key] = _persist(resolved, cell, outcome.value)
            continue
        if not supervise.quarantine:
            raise CellFailed(cell, outcome.failure)
        if resolved is not None:
            resolved.put_failure(
                cell.key,
                outcome.failure.as_record(),
                kernel=cell.kernel,
                params=cell.as_dict(),
            )


def _run_batched(
    grid: Grid,
    fn: Callable[[Dict[str, Any]], Any],
    batch: BatchSpec,
    cells: List[Cell],
    todo: List[int],
    rows: List[Any],
    resolved: Optional[ResultStore],
    written: Dict[str, Any],
    *,
    workers: Optional[int],
    supervise: Optional[Supervision],
) -> None:
    """The grouped execution loop of :func:`compute_grid`.

    Work items are whole groups (first-appearance order, members in
    canonical grid order); unbatchable cells (``group_key`` None) ride
    along as singleton ``("cell", params)`` items through the same
    pipeline, so one sweep can mix both kinds.
    """
    items: List[Tuple[str, Any]] = []
    members: List[List[int]] = []
    group_slots: Dict[str, int] = {}
    for position in todo:
        params = cells[position].as_dict()
        token = batch.group_key(params)
        if token is None:
            items.append(("cell", params))
            members.append([position])
            continue
        slot = group_slots.get(token)
        if slot is None:
            group_slots[token] = len(items)
            items.append(("group", [params]))
            members.append([position])
        else:
            items[slot][1].append(params)
            members[slot].append(position)
    items = [
        (kind, tuple(payload) if kind == "group" else payload)
        for kind, payload in items
    ]
    kernel = _BatchKernel(cell_fn=fn, group_fn=batch.fn)

    def emit(offset: int, group_rows: Sequence[Any]) -> None:
        positions = members[offset]
        if len(group_rows) != len(positions):
            raise ValueError(
                f"batch kernel returned {len(group_rows)} rows for a "
                f"{len(positions)}-cell group of the {grid.kernel} grid"
            )
        for position, row in zip(positions, group_rows):
            rows[position] = row
            if resolved is not None:
                written[cells[position].key] = _persist(resolved, cells[position], row)

    if (
        batch.grid_fn is not None
        and supervise is None
        and workers in (None, 0, 1)
    ):
        # Grid mode: one whole-grid kernel call prices every group at
        # once.  Chaos faults still fire per member (the same points
        # the per-group dispatcher hits), so scripted-fault tests see
        # identical behavior; singleton unbatchable cells ride through
        # the ordinary dispatcher below.
        offsets = [i for i, (kind, _) in enumerate(items) if kind == "group"]
        if offsets:
            plan = chaos.active_plan()
            if plan is not None:
                for offset in offsets:
                    for params in items[offset][1]:
                        plan.before_cell(params)
            per_group = batch.grid_fn(tuple(items[i][1] for i in offsets))
            if len(per_group) != len(offsets):
                raise ValueError(
                    f"grid kernel returned {len(per_group)} row lists "
                    f"for {len(offsets)} groups of the {grid.kernel} grid"
                )
            for offset, group_rows in zip(offsets, per_group):
                emit(offset, group_rows)
        for offset, item in enumerate(items):
            if item[0] == "cell":
                emit(offset, kernel(item))
        return

    if supervise is None:
        for offset, group_rows in parallel_indexed(kernel, items, workers=workers):
            emit(offset, group_rows)
        return
    outcomes = supervised_indexed(
        kernel,
        items,
        workers=workers,
        supervision=supervise,
        weights=[float(len(positions)) for positions in members],
    )
    for outcome in outcomes:
        positions = members[outcome.index]
        if outcome.ok:
            emit(outcome.index, outcome.value)
            continue
        if not supervise.quarantine:
            raise CellFailed(cells[positions[0]], outcome.failure)
        if resolved is None:
            continue
        # One failure record per member, each naming the whole group:
        # a quarantined group must be diagnosable from any of its cells.
        record = outcome.failure.as_record()
        record["group_members"] = [cells[p].key for p in positions]
        for position in positions:
            cell = cells[position]
            resolved.put_failure(
                cell.key,
                record,
                kernel=cell.kernel,
                params=cell.as_dict(),
            )


def _persist(store, cell: Cell, row: Any) -> Dict[str, Any]:
    """Write one row's record (indexing deferred to the caller's batch).

    ``store`` is any backend of the pluggable-store protocol
    (:mod:`repro.perf.backends`), not just the filesystem
    :class:`ResultStore`.
    """
    meta = store.put(
        cell.key, asdict(row), kernel=cell.kernel, params=cell.as_dict(), index=False
    )
    # A success supersedes any quarantine left by an earlier run —
    # supervised or not, a healed cell must stop reporting as failed.
    store.clear_failure(cell.key)
    plan = chaos.active_plan()
    if plan is not None:
        # The "corrupt" chaos fault models a torn write surviving
        # persistence: it fires here, after the record landed, through
        # the backend's own tear hook.
        store.chaos_tear(plan, cell.key, cell.as_dict())
    return meta


def persist_rows(grid: Grid, rows: List[Any], store) -> None:
    """Write already-computed rows through to a store.

    Used when a sweep obtains its rows without touching the store —
    e.g. a whole-sweep memoization hit — so that ``store=`` always
    leaves a complete, mergeable record set behind.  Cells whose record
    already exists are left untouched.
    """
    resolved = resolve_store(store)
    if resolved is None:
        return
    written: Dict[str, Any] = {}
    for cell, row in zip(grid, rows):
        if not resolved.has(cell.key):
            written[cell.key] = _persist(resolved, cell, row)
    if written:
        resolved.index_add(written)


def rows_from_store(
    grid: Grid, row_type: Type, store, *, allow_missing: bool = False
) -> List[Any]:
    """Reassemble a sweep from stored records only.

    Raises :class:`MissingCells` (listing the absent keys) if any cell
    has no readable, schema-valid record — a merge must never silently
    return a partial sweep.  ``allow_missing=True`` is the explicit
    graceful-degradation opt-in: the returned list keeps canonical grid
    length with ``None`` in each missing (e.g. quarantined) cell's
    position, so table renderers can show ``—`` cells with a failure
    footer instead of nothing at all.
    """
    resolved = resolve_store(store)
    if resolved is None:
        raise ValueError("rows_from_store requires a store")
    rows: List[Any] = []
    missing: List[str] = []
    for cell in grid:
        row = _row_from_record(row_type, resolved.get(cell.key))
        if row is None:
            missing.append(cell.key)
        rows.append(row)
    if missing and not allow_missing:
        raise MissingCells(grid, tuple(missing))
    return rows


def missing_report(grid: Grid, store) -> List[Tuple[Cell, Optional[Dict[str, Any]]]]:
    """Each cell lacking a readable record, with its failure if known.

    The data behind every graceful-degradation footer: a list of
    ``(cell, failure_record_or_None)`` pairs in canonical grid order.
    A ``None`` failure means the cell is merely missing (never
    computed, or torn); a dict is the durable quarantine record
    (``{"failure": {...}, "meta": {...}}``).
    """
    resolved = resolve_store(store)
    if resolved is None:
        raise ValueError("missing_report requires a store")
    report = []
    for cell in grid:
        if not resolved.has(cell.key):
            report.append((cell, resolved.failure(cell.key)))
    return report


def kernel_registry() -> Dict[str, Tuple[Callable[[Dict[str, Any]], Any], Type]]:
    """Kernel name -> (cell function, row type) for the worker CLI.

    Imported lazily: the design-space module itself imports this
    package for :func:`compute_grid`, and the registry is only needed
    by CLI entry points.
    """
    from ..core import design_space

    return {
        "engine_cell": (design_space.engine_cell, design_space.EngineRow),
        "fidelity_cell": (design_space.fidelity_cell, design_space.FidelityRow),
        "specialization_cell": (
            design_space.specialization_cell,
            design_space.SpecializationRow,
        ),
        "hierarchy_cell": (design_space.hierarchy_cell, design_space.HierarchyRow),
        "transfer_cell": (design_space.transfer_cell, design_space.TransferRow),
    }
