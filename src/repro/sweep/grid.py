"""Deterministic cell grids and the stable shard planner.

Every design-space sweep is an enumeration of independent *cells* — one
kernel name plus one JSON-able parameter mapping per cell.  This module
gives all of them one shared abstraction:

* a :class:`Cell` knows its content hash (:attr:`Cell.key`, the same
  :func:`repro.perf.memo.stable_key` digest the memo layer uses), so a
  cell computed anywhere — serial sweep, pool worker, another host —
  lands under the same identity in a :class:`repro.perf.store.ResultStore`;
* a :class:`Grid` is the *canonical enumeration order* of a sweep.
  Reassembling rows in grid order is what makes a sharded run's merge
  bit-identical to the single-process sweep;
* :func:`shard_index` hash-partitions cells into ``K`` stable shards.
  The assignment depends only on a cell's key, never on the grid it
  appears in or the process computing it, so workers started on
  different hosts (or re-started after a crash) agree on who owns what
  without coordination.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..perf.memo import stable_key


def shard_index(key: str, count: int) -> int:
    """Stable shard assignment of one cell key into ``count`` shards.

    Re-hashes the key (with a domain tag) rather than slicing its hex,
    so the partition is independent of how the key digest is truncated;
    the result is a pure function of ``(key, count)``.
    """
    if count < 1:
        raise ValueError("shard count must be at least 1")
    digest = hashlib.sha256(f"shard:{key}".encode("utf-8")).hexdigest()
    return int(digest, 16) % count


def parse_shard_spec(spec: str) -> Tuple[int, int]:
    """Parse a ``"i/K"`` shard spec into ``(index, count)``."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"shard spec must look like 'i/K' (got {spec!r})") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"shard index must satisfy 0 <= i < K (got {spec!r})")
    return index, count


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a kernel name plus its full parameter mapping."""

    kernel: str
    params: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(kernel: str, **params: Any) -> "Cell":
        """Build a cell with canonically (name-)sorted parameters."""
        return Cell(kernel, tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @cached_property
    def key(self) -> str:
        """Content hash — the record key in a result store."""
        return stable_key(self.kernel, **self.as_dict())


@dataclass(frozen=True)
class Grid:
    """An ordered cell enumeration — the canonical shape of one sweep."""

    kernel: str
    cells: Tuple[Cell, ...]

    def __post_init__(self) -> None:
        for cell in self.cells:
            if cell.kernel != self.kernel:
                raise ValueError(
                    f"grid kernel {self.kernel!r} != cell kernel {cell.kernel!r}"
                )

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def keys(self) -> List[str]:
        """Record keys in canonical enumeration order."""
        return [cell.key for cell in self.cells]

    def shard(
        self,
        index: int,
        count: int,
        group_key: Optional[Callable[[Cell], Optional[str]]] = None,
    ) -> "Grid":
        """The sub-grid a worker owns under a ``count``-way partition.

        Cells keep their canonical relative order; every cell of the
        grid lands in exactly one shard for any ``count``.

        ``group_key`` makes the partition group-aware: cells mapping to
        the same token are hashed by that token instead of their own
        key, so a whole work group (e.g. one traffic group of the
        batched engine sweep) always lands in one shard and is never
        split across workers.  Cells whose token is ``None`` fall back
        to their own key.  Determinism is unchanged — the assignment is
        still a pure function of (token, count).
        """
        if not 0 <= index < count:
            raise ValueError(
                f"shard index must satisfy 0 <= i < K (got {index}/{count})"
            )
        if group_key is None:
            owned = tuple(
                cell
                for cell in self.cells
                if shard_index(cell.key, count) == index
            )
        else:
            owned = tuple(
                cell
                for cell in self.cells
                if shard_index(group_key(cell) or cell.key, count) == index
            )
        return Grid(self.kernel, owned)

    def shard_sizes(self, count: int) -> List[int]:
        """Cell counts per shard under a ``count``-way partition."""
        sizes = [0] * count
        for cell in self.cells:
            sizes[shard_index(cell.key, count)] += 1
        return sizes
