"""Sharded sweep orchestration.

Grow a design-space sweep past one process and one host: the canonical
cell enumeration lives in a :class:`Grid` (:mod:`repro.sweep.grid`),
workers own a stable hash-partition of it (``shard i/K``), every result
lands as a content-addressed record in a durable
:class:`repro.perf.store.ResultStore`, and a merge reassembles the
exact row list a single-process sweep produces — bit-identically.

Library surface: :func:`compute_grid` / :func:`rows_from_store`
(:mod:`repro.sweep.runner`).  Operational surface::

    python -m repro.sweep run --shard 0/4 --store URL   # one worker
    python -m repro.sweep status --store URL --shards 4
    python -m repro.sweep resume --store URL            # fill gaps
    python -m repro.sweep merge --store URL --verify
    python -m repro.sweep serve --store URL             # HTTP queries

``--store`` takes a backend locator (:mod:`repro.perf.backends`):
a bare directory or ``fs:DIR``, or ``sqlite:PATH`` for the
single-file SQLite backend; ``serve`` stands up the read-only query
service (:mod:`repro.service`) over either.  (The CLI lives in
:mod:`repro.sweep.cli`, imported only by ``__main__`` so this package
stays import-light for the sweeps.)
"""

from .grid import Cell, Grid, parse_shard_spec, shard_index
from .runner import (
    MissingCells,
    compute_grid,
    kernel_registry,
    persist_rows,
    rows_from_store,
)

__all__ = [
    "Cell",
    "Grid",
    "MissingCells",
    "compute_grid",
    "kernel_registry",
    "parse_shard_spec",
    "persist_rows",
    "rows_from_store",
    "shard_index",
]
