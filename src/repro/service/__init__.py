"""Sweep query service: tables and progress over HTTP, from warm stores.

**Ownership.**  This subsystem owns the *serving* half of the sharded
sweep stack: everything between a filled result store and a reader on
another host.  Computation stays in :mod:`repro.sweep`; persistence
stays in :mod:`repro.perf.store` / :mod:`repro.perf.backends`; this
package only reads — it renders tables, answers design-point lookups,
and streams in-flight sweep progress, for many concurrent clients,
without ever touching a cell kernel.

**Public surface.**

* :class:`repro.service.server.SweepService` — the asyncio HTTP
  service over one (store backend, grid) pair;
* :func:`repro.service.server.start_service` /
  :func:`repro.service.server.run_service` — bind-and-return (tests)
  and serve-until-interrupted (the ``python -m repro.sweep serve``
  subcommand);
* :class:`repro.service.server.BackgroundService` — the same server on
  a daemon thread, for in-process tests, benchmarks and doctests;
* :class:`repro.service.client.ServiceClient` — the stdlib client, one
  method per endpoint, with ``progress()`` as a generator over the
  chunked stream.

``docs/sweep-service.md`` documents the endpoint contract with
request/response examples and the multi-host walkthrough;
``tests/test_service.py`` and the CI ``sweep-service`` job hold the
behaviour (byte-identical tables across backends, concurrent readers,
live progress streaming).
"""

from .client import ServiceClient, ServiceError
from .server import (
    BackgroundService,
    SweepService,
    run_service,
    start_service,
)

__all__ = [
    "BackgroundService",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "run_service",
    "start_service",
]
