"""Stdlib HTTP client for the sweep service.

A thin, dependency-free wrapper over :mod:`urllib.request` mirroring
the server's endpoint surface (:mod:`repro.service.server`), one
method per route.  ``progress()`` is a generator over the chunked
NDJSON stream — :mod:`http.client` de-chunks transparently, so each
``readline`` yields one complete progress tick.  Used by the service
tests, the CI ``sweep-service`` job, and the
``service_table_query_overhead`` benchmark kernel; any HTTP client
(curl included) speaks the same protocol.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional
from urllib.error import HTTPError
from urllib.parse import quote, urlencode
from urllib.request import urlopen


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying the decoded error payload."""

    def __init__(self, code: int, payload: Any) -> None:
        self.code = code
        self.payload = payload
        super().__init__(f"service answered {code}: {payload}")


class ServiceClient:
    """Synchronous client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _open(self, path: str, query: Optional[Dict[str, Any]] = None):
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        try:
            return urlopen(url, timeout=self.timeout)
        except HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                payload = json.loads(body)
            except ValueError:
                payload = body
            raise ServiceError(exc.code, payload) from None

    def _get_json(
        self, path: str, query: Optional[Dict[str, Any]] = None
    ) -> Any:
        with self._open(path, query) as response:
            return json.loads(response.read().decode())

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe: kernel, cell count, store locator."""
        return self._get_json("/healthz")

    def status(self) -> Dict[str, Any]:
        """The grid's done/missing/failed split against the store."""
        return self._get_json("/v1/status")

    def table(self, *, allow_missing: bool = False) -> str:
        """The rendered table text; :class:`ServiceError` (409) while
        the store is incomplete unless ``allow_missing`` opts into a
        degraded render."""
        query = {"allow_missing": "1"} if allow_missing else None
        with self._open("/v1/table", query) as response:
            return response.read().decode()

    def cells(self) -> Dict[str, Any]:
        """Every grid cell's key, parameters and done flag."""
        return self._get_json("/v1/cells")

    def cell(self, key: str) -> Dict[str, Any]:
        """One design point's record; :class:`ServiceError` (404, with
        any quarantine record in the payload) when missing."""
        return self._get_json("/v1/cell/" + quote(key, safe=""))

    def progress(
        self,
        *,
        interval: float = 1.0,
        ticks: Optional[int] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield progress ticks from the chunked stream as dicts.

        The stream (and this generator) ends when the grid completes
        or after ``ticks`` polls.
        """
        query: Dict[str, Any] = {"interval": interval}
        if ticks is not None:
            query["ticks"] = ticks
        with self._open("/v1/progress", query) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
