"""The asyncio HTTP server behind ``python -m repro.sweep serve``.

One :class:`SweepService` binds a store backend (any
:mod:`repro.perf.backends` locator) to a canonical grid and answers
read-only queries straight from the warm records — no cell is ever
computed here.  The protocol is plain HTTP/1.1 GET over an
:func:`asyncio.start_server` loop; store reads run in the default
executor so many concurrent readers never serialize behind one
directory scan or table render.

Endpoints (all JSON unless noted):

* ``GET /healthz`` — liveness: kernel, cell count, store locator.
* ``GET /v1/status`` — done/missing/failed split of the grid against
  the store (plus the trace-cache summary when one is attached).
* ``GET /v1/table[?allow_missing=1]`` — the rendered table
  (``text/plain``): the engine design-space table for ``engine_cell``
  grids, the time-vs-fidelity pareto table for ``fidelity_cell``
  grids, Table 3 for ``transfer_cell`` grids.  An incomplete store
  answers **409** with the missing count unless ``allow_missing=1``
  explicitly opts into a degraded render — the service never silently
  serves a stale/partial table mid-sweep.
* ``GET /v1/cells`` — every grid cell's key, parameters and done flag
  (the design-point directory).
* ``GET /v1/cell/<key>`` — one design point's full record (value +
  meta); **404** with the quarantine record, if any, when missing.
* ``GET /v1/progress[?interval=S&ticks=N]`` — a chunked stream of
  JSON lines, one per poll: done/total/failed counts, cells/sec since
  the previous tick, elapsed seconds.  The stream ends when the grid
  completes or after ``ticks`` polls, so a reader can watch an
  in-flight sharded sweep converge live.

:class:`BackgroundService` runs the same server on a daemon thread for
tests, benchmarks and doctests; :func:`run_service` is the blocking
CLI entry point.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Progress-poll interval bounds (seconds): fast enough to watch a
#: sweep, slow enough that a stream cannot busy-spin a store scan.
MIN_INTERVAL_S = 0.05
MAX_INTERVAL_S = 10.0

#: Default and ceiling for the number of progress ticks per stream.
DEFAULT_TICKS = 3600
MAX_TICKS = 100_000

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


class SweepService:
    """Read-only query service over one (store backend, grid) pair."""

    def __init__(
        self,
        store,
        grid,
        *,
        locator: Optional[str] = None,
        trace_cache: Optional[str] = None,
    ) -> None:
        from ..perf.store import resolve_store

        self.store = resolve_store(store)
        if self.store is None:
            raise ValueError("SweepService requires a store")
        self.grid = grid
        if locator is None:
            locator = str(getattr(self.store, "path", store))
        self.locator = locator
        self.trace_cache = trace_cache
        self._keys = list(grid.keys())

    # -- store reads (executor-side, blocking) ---------------------------
    def status_payload(self) -> Dict[str, Any]:
        status = self.store.status(self._keys)
        payload = {
            "kernel": self.grid.kernel,
            "store": self.locator,
            "total": status.total,
            "done": status.done,
            "missing": status.missing,
            "failed": status.failed,
            "failed_keys": list(status.failed_keys),
            "complete": status.complete,
        }
        if self.trace_cache:
            from ..perf.tracecache import TraceCache

            payload["trace_cache"] = TraceCache(self.trace_cache).summary()
        return payload

    def table_text(self, *, allow_missing: bool) -> str:
        from ..analysis.tables import render_table_from_store

        return render_table_from_store(
            self.grid, self.store, allow_missing=allow_missing
        )

    def cells_payload(self) -> Dict[str, Any]:
        status = self.store.status(self._keys)
        missing = set(status.missing_keys)
        return {
            "kernel": self.grid.kernel,
            "total": len(self._keys),
            "cells": [
                {
                    "key": cell.key,
                    "params": cell.as_dict(),
                    "done": cell.key not in missing,
                }
                for cell in self.grid
            ],
        }

    def cell_payload(self, key: str) -> Tuple[int, Dict[str, Any]]:
        record = self.store.record(key)
        if record is not None:
            return 200, {
                "key": key,
                "value": record.get("value"),
                "meta": record.get("meta", {}),
            }
        failure = self.store.failure(key)
        return 404, {
            "key": key,
            "error": "missing",
            "failure": None if failure is None else failure.get("failure"),
        }

    # -- HTTP plumbing ---------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: parse a GET, route it, close."""
        try:
            method, target = await self._read_request(reader)
            if method is None:
                return
            if method != "GET":
                await self._respond_json(
                    writer, 405, {"error": f"method {method} not allowed"}
                )
                return
            await self._route(writer, target)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-response; nothing to salvage
        except asyncio.CancelledError:
            pass  # server shutdown mid-request; exit the handler quietly
        except Exception as exc:  # pragma: no cover - defensive surface
            try:
                await self._respond_json(writer, 500, {"error": str(exc)})
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(reader) -> Tuple[Optional[str], str]:
        request_line = await reader.readline()
        if not request_line:
            return None, ""
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None, ""
        # Drain headers; GET requests carry no body we care about.
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return parts[0], parts[1]

    async def _route(self, writer, target: str) -> None:
        split = urlsplit(target)
        path = unquote(split.path)
        query = dict(parse_qsl(split.query))
        loop = asyncio.get_running_loop()
        if path == "/healthz":
            await self._respond_json(
                writer,
                200,
                {
                    "ok": True,
                    "kernel": self.grid.kernel,
                    "cells": len(self._keys),
                    "store": self.locator,
                },
            )
            return
        if path == "/v1/status":
            payload = await loop.run_in_executor(None, self.status_payload)
            await self._respond_json(writer, 200, payload)
            return
        if path == "/v1/table":
            allow = query.get("allow_missing") in ("1", "true", "yes")
            status = await loop.run_in_executor(
                None, lambda: self.store.status(self._keys)
            )
            if not status.complete and not allow:
                await self._respond_json(
                    writer,
                    409,
                    {
                        "error": "store incomplete",
                        "done": status.done,
                        "total": status.total,
                        "failed": status.failed,
                        "hint": "pass allow_missing=1 for a degraded table",
                    },
                )
                return
            text = await loop.run_in_executor(
                None, lambda: self.table_text(allow_missing=allow)
            )
            await self._respond_text(writer, 200, text)
            return
        if path == "/v1/cells":
            payload = await loop.run_in_executor(None, self.cells_payload)
            await self._respond_json(writer, 200, payload)
            return
        if path.startswith("/v1/cell/"):
            key = path[len("/v1/cell/") :]
            code, payload = await loop.run_in_executor(
                None, lambda: self.cell_payload(key)
            )
            await self._respond_json(writer, code, payload)
            return
        if path == "/v1/progress":
            await self._stream_progress(writer, query)
            return
        await self._respond_json(writer, 404, {"error": f"no route {path}"})

    async def _stream_progress(self, writer, query: Dict[str, str]) -> None:
        try:
            interval = float(query.get("interval", "1.0"))
            ticks = int(query.get("ticks", str(DEFAULT_TICKS)))
        except ValueError:
            await self._respond_json(
                writer, 400, {"error": "interval/ticks must be numeric"}
            )
            return
        interval = min(max(interval, MIN_INTERVAL_S), MAX_INTERVAL_S)
        ticks = min(max(ticks, 1), MAX_TICKS)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        previous: Optional[Tuple[float, int]] = None
        for tick in range(ticks):
            status = await loop.run_in_executor(
                None, lambda: self.store.status(self._keys)
            )
            now = time.monotonic()
            rate = 0.0
            if previous is not None and now > previous[0]:
                rate = (status.done - previous[1]) / (now - previous[0])
            previous = (now, status.done)
            line = {
                "tick": tick,
                "done": status.done,
                "total": status.total,
                "failed": status.failed,
                "cells_per_s": round(rate, 3),
                "elapsed_s": round(now - started, 3),
                "complete": status.complete,
            }
            await self._write_chunk(
                writer, (json.dumps(line, sort_keys=True) + "\n").encode()
            )
            if status.complete:
                break
            await asyncio.sleep(interval)
        await self._write_chunk(writer, b"")  # terminal chunk

    @staticmethod
    async def _write_chunk(writer, payload: bytes) -> None:
        writer.write(f"{len(payload):x}\r\n".encode() + payload + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _respond(
        writer, code: int, content_type: str, body: bytes
    ) -> None:
        reason = _REASONS.get(code, "?")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _respond_json(self, writer, code: int, payload: Any) -> None:
        await self._respond(
            writer,
            code,
            "application/json",
            json.dumps(payload, sort_keys=True).encode(),
        )

    async def _respond_text(self, writer, code: int, text: str) -> None:
        await self._respond(
            writer, code, "text/plain; charset=utf-8", text.encode()
        )


async def start_service(
    store,
    grid,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    locator: Optional[str] = None,
    trace_cache: Optional[str] = None,
) -> asyncio.AbstractServer:
    """Bind a :class:`SweepService` and return the listening server.

    ``port=0`` picks an ephemeral port; read the bound address off
    ``server.sockets[0].getsockname()``.
    """
    service = SweepService(
        store, grid, locator=locator, trace_cache=trace_cache
    )
    return await asyncio.start_server(service.handle, host, port)


def run_service(
    store,
    grid,
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    locator: Optional[str] = None,
    trace_cache: Optional[str] = None,
) -> int:
    """Serve until interrupted (the blocking ``serve`` CLI body)."""

    async def main() -> None:
        service = SweepService(
            store, grid, locator=locator, trace_cache=trace_cache
        )
        server = await asyncio.start_server(service.handle, host, port)
        bound = server.sockets[0].getsockname()
        print(
            f"serving {grid.kernel} grid ({len(grid)} cells) from "
            f"{service.locator} on http://{bound[0]}:{bound[1]}",
            flush=True,
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


class BackgroundService:
    """A :class:`SweepService` on a daemon thread, for in-process use.

    Context manager: entering starts the event loop and binds an
    ephemeral port, ``.url`` is the base URL, exiting stops the loop
    and joins the thread.  This is what the service tests, the
    ``service_table_query_overhead`` benchmark kernel, and the
    ``docs/sweep-service.md`` doctests run against.
    """

    def __init__(
        self,
        store,
        grid,
        *,
        host: str = "127.0.0.1",
        locator: Optional[str] = None,
        trace_cache: Optional[str] = None,
    ) -> None:
        self._store = store
        self._grid = grid
        self._host = host
        self._locator = locator
        self._trace_cache = trace_cache
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self.url: Optional[str] = None

    def __enter__(self) -> "BackgroundService":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve, name="sweep-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("sweep service did not start within 10 s")
        if self._failure is not None:
            raise RuntimeError("sweep service failed to start") from self._failure
        return self

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            server = await start_service(
                self._store,
                self._grid,
                host=self._host,
                port=0,
                locator=self._locator,
                trace_cache=self._trace_cache,
            )
            bound = server.sockets[0].getsockname()
            self.url = f"http://{bound[0]}:{bound[1]}"
            self._ready.set()
            async with server:
                await server.serve_forever()

        try:
            self._loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # startup failure: surface in __enter__
            self._failure = exc
            self._ready.set()
        finally:
            self._loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and not self._loop.is_closed():

            def _cancel_all() -> None:
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            self._loop.call_soon_threadsafe(_cancel_all)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
