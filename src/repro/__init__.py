"""repro — reproduction of "Quantum Memory Hierarchies" (ISCA 2006).

A production-quality model of the Compressed Quantum Logic Array (CQLA)
of Thaker, Metodi, Cross, Chuang and Chong, built from scratch:

* :mod:`repro.physical` — trapped-ion substrate: Table 1 parameters,
  trapping-region grids, cycle-level micro-execution;
* :mod:`repro.ecc` — Pauli/stabilizer algebra, the Steane [[7,1,3]] and
  Bacon-Shor [[9,1,3]] codes, concatenation timing/area/reliability,
  EC schedules and the code-transfer network;
* :mod:`repro.circuits` — logical gate IR, the Draper carry-lookahead
  adder, modular exponentiation and QFT workloads, the cache ISA;
* :mod:`repro.arch` — tiles, memory/compute/cache regions, the QLA
  baseline, teleportation interconnect and bandwidth models;
* :mod:`repro.core` — the CQLA design object, the quantum memory
  hierarchy, fidelity budgeting, the gain-product metrics and the
  design-space grids/sweeps;
* :mod:`repro.sim` — the N-level policy-pluggable hierarchy engine on
  its discrete-event kernel (pure and mixed-code stacks, eviction
  policies, exact prefetchers), plus the block scheduler, cache
  simulator and communication accounting;
* :mod:`repro.perf` — memoization, process-pool fan-out and the
  durable content-addressed result store, with pluggable backends
  (:mod:`repro.perf.backends`: ``fs:DIR`` / ``sqlite:PATH`` locators);
* :mod:`repro.sweep` — sharded sweep orchestration over that store
  (``python -m repro.sweep``);
* :mod:`repro.service` — the read-only HTTP query service over warm
  sweep stores (``python -m repro.sweep serve``): rendered tables,
  design-point lookups, streamed progress;
* :mod:`repro.analysis` — builders regenerating every table and figure
  of the paper's evaluation, with the published values alongside.

``docs/architecture.md`` maps the layers in detail;
``docs/reproducing-the-paper.md`` maps each paper artifact to its
module, public call and pinning test; ``docs/sweep-service.md`` is the
store-backend and query-service guide.

Quickstart::

    from repro import CqlaDesign, MemoryHierarchy

    design = CqlaDesign("bacon_shor", n_bits=1024, n_blocks=121)
    print(design.area_reduction(), design.speedup())
    hierarchy = MemoryHierarchy(design, parallel_transfers=10)
    print(hierarchy.adder_speedup(), hierarchy.gain_product())
"""

from .arch import CqlaFloorplan, QlaMachine
from .circuits import Circuit, carry_lookahead_adder, qft_circuit
from .core import (
    CqlaDesign,
    FidelityBudget,
    HierarchyPolicy,
    MemoryHierarchy,
    hierarchy_sweep,
    specialization_sweep,
)
from .ecc import ConcatenatedCode, bacon_shor_code, steane_code
from .physical import DEFAULT_PARAMS, PhysicalParams, future_params, now_params

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "ConcatenatedCode",
    "CqlaDesign",
    "CqlaFloorplan",
    "DEFAULT_PARAMS",
    "FidelityBudget",
    "HierarchyPolicy",
    "MemoryHierarchy",
    "PhysicalParams",
    "QlaMachine",
    "__version__",
    "bacon_shor_code",
    "carry_lookahead_adder",
    "future_params",
    "hierarchy_sweep",
    "now_params",
    "qft_circuit",
    "specialization_sweep",
    "steane_code",
]
