"""Quantum cache simulator (Section 5.2, Figure 7).

Models the level-1 cache of the CQLA memory hierarchy.  The simulator
consumes an instruction sequence (logical gates over qubit ids) and
tracks which logical qubits are resident at level 1; every gate operand
is an access, misses fetch from level-2 memory, and replacement is least
recently used.  Because qubits cannot be copied, every eviction is a
write-back (the evicted qubit must be promoted back to memory).

Two fetch policies are implemented, exactly as the paper describes:

* **in-order** — execute the program in generated order; hit rates stall
  around 20% for the Draper adder;
* **optimized** — the fetch window is the whole (statically known)
  program: build the dependency list, then repeatedly pick the ready
  instruction with the most operands already resident.  This raises hit
  rates to ~85% "immaterial of adder size and cache size".

The optimized policy has two implementations with bit-identical output:

* :func:`simulate_optimized` — the production incremental scheduler.
  It maintains a qubit -> pending-ready-gate index and a per-gate
  resident-operand count, updates scores only for gates touching qubits
  whose residency actually changed on an access or eviction, and keeps
  ready gates in score-keyed lazy heaps so each pick is O(1) amortized
  instead of rescanning the whole ready list;
* :func:`simulate_optimized_reference` — the original O(ready) rescan
  per pick, retained verbatim as the executable specification.  The
  equivalence tests assert both produce the identical ``order`` and
  :class:`CacheStats`.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import CircuitDag
from ..circuits.gates import Gate


@dataclass
class CacheStats:
    """Access counters for one simulation run."""

    capacity: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class LruCache:
    """LRU-resident set of logical qubits (ids are hashable ints)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.stats = CacheStats(capacity=capacity)

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> List[int]:
        return list(self._resident)

    def access(self, qubit: int) -> bool:
        """Touch ``qubit``; returns True on hit, fetching on miss."""
        hit, _ = self.access_evicting(qubit)
        return hit

    def access_evicting(self, qubit: int) -> Tuple[bool, Optional[int]]:
        """Touch ``qubit``; returns ``(hit, evicted_qubit_or_None)``.

        Identical to :meth:`access` but additionally reports which qubit
        the miss displaced, which is what lets the incremental scheduler
        update exactly the scores affected by the residency change.
        """
        self.stats.accesses += 1
        if qubit in self._resident:
            self._resident.move_to_end(qubit)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        evicted: Optional[int] = None
        if len(self._resident) >= self.capacity:
            evicted, _ = self._resident.popitem(last=False)
            self.stats.evictions += 1
        self._resident[qubit] = None
        return False, evicted

    def peek_hits(self, qubits: Iterable[int]) -> int:
        """Resident operands of a candidate gate, without touching LRU."""
        return sum(1 for q in qubits if q in self._resident)


def simulate_in_order(circuit: Circuit, capacity: int) -> CacheStats:
    """Run the program in generated order through an LRU cache."""
    cache = LruCache(capacity)
    for gate in circuit.gates:
        for q in gate.qubits:
            cache.access(q)
    return cache.stats


@dataclass
class OptimizedFetchResult:
    """Stats plus the reordered instruction sequence it produced."""

    stats: CacheStats
    order: List[int] = field(default_factory=list)

    def reordered_gates(self, circuit: Circuit) -> List[Gate]:
        return [circuit.gates[i] for i in self.order]


def simulate_optimized_reference(
    circuit: Circuit,
    capacity: int,
    window: Optional[int] = None,
) -> OptimizedFetchResult:
    """Reference dependency-aware fetch: O(ready) rescan per pick.

    This is the original implementation, kept as the executable
    specification for :func:`simulate_optimized`.  Selection rule: the
    first ready instruction (in ready-list order, which is insertion
    order) whose operands are all resident wins outright; otherwise the
    highest resident-operand count wins, ties going to the earliest
    ready-list position.
    """
    dag = CircuitDag.build(circuit)
    gates = circuit.gates
    indegree = [len(p) for p in dag.preds]
    ready: List[int] = list(dag.ready_at_start())
    ready_set = set(ready)
    cache = LruCache(capacity)
    order: List[int] = []

    while ready:
        candidates = ready if window is None else ready[:window]
        # Most resident operands wins; ties go to program order (the
        # earliest instruction), which also keeps the schedule stable.
        best_pos = 0
        best_score = -1
        for pos, idx in enumerate(candidates):
            score = cache.peek_hits(gates[idx].qubits)
            if score == len(gates[idx].qubits):
                best_pos = pos
                break
            if score > best_score:
                best_score = score
                best_pos = pos
        idx = candidates[best_pos]
        ready.remove(idx)
        ready_set.discard(idx)
        for q in gates[idx].qubits:
            cache.access(q)
        order.append(idx)
        for succ in dag.succs[idx]:
            indegree[succ] -= 1
            if indegree[succ] == 0 and succ not in ready_set:
                ready.append(succ)
                ready_set.add(succ)
    return OptimizedFetchResult(stats=cache.stats, order=order)


class _IncrementalFetch:
    """Incremental optimized-fetch scheduler state.

    Every ready gate carries a monotonically increasing arrival sequence
    number (its position in the reference implementation's ready list)
    and a maintained score — the number of its operand occurrences
    currently resident.  Scores change only when a qubit enters or
    leaves the cache, and only for the ready gates touching that qubit,
    which the ``_gates_on`` index finds directly.

    Picking uses score-keyed heaps of ``(seq, gate)`` with lazy
    invalidation: a *saturated* gate (score == operand count) anywhere
    in the ready set wins outright, earliest arrival first, mirroring
    the reference scan's early break; otherwise the highest-scoring
    bucket's earliest arrival wins.  With a finite fetch ``window`` the
    heaps are bypassed and the first ``window`` ready gates are scanned
    in arrival order, exactly like the reference's ``ready[:window]``.
    """

    def __init__(self, circuit: Circuit, capacity: int,
                 window: Optional[int]) -> None:
        self.gates = circuit.gates
        self.dag = CircuitDag.build(circuit)
        self.indegree = [len(p) for p in self.dag.preds]
        self.cache = LruCache(capacity)
        self.window = window
        self.use_heaps = window is None

        self.order: List[int] = []
        self.score: Dict[int, int] = {}
        self.seq_of: Dict[int, int] = {}
        self.ready_order: "OrderedDict[int, int]" = OrderedDict()  # seq -> gate
        self._next_seq = 0
        # qubit -> {ready gate -> operand-occurrence count}
        self._gates_on: Dict[int, Dict[int, int]] = {}
        # score -> lazy min-heap of (seq, gate); plus the saturated heap
        self._buckets: Dict[int, List[Tuple[int, int]]] = {}
        self._full: List[Tuple[int, int]] = []
        self._max_score = 0

        for idx in self.dag.ready_at_start():
            self._make_ready(idx)

    # -- ready-set maintenance -----------------------------------------
    def _make_ready(self, idx: int) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self.seq_of[idx] = seq
        self.ready_order[seq] = idx
        qubits = self.gates[idx].qubits
        for q in qubits:
            self._gates_on.setdefault(q, {})
            self._gates_on[q][idx] = self._gates_on[q].get(idx, 0) + 1
        score = self.cache.peek_hits(qubits)
        self.score[idx] = score
        self._push(idx, seq, score)

    def _push(self, idx: int, seq: int, score: int) -> None:
        if not self.use_heaps:
            return
        if score == len(self.gates[idx].qubits):
            heapq.heappush(self._full, (seq, idx))
        heapq.heappush(self._buckets.setdefault(score, []), (seq, idx))
        if score > self._max_score:
            self._max_score = score

    def _remove_ready(self, idx: int) -> None:
        seq = self.seq_of.pop(idx)
        del self.ready_order[seq]
        del self.score[idx]
        for q in set(self.gates[idx].qubits):
            bucket = self._gates_on.get(q)
            if bucket is not None:
                bucket.pop(idx, None)
                if not bucket:
                    del self._gates_on[q]

    def _residency_changed(self, qubit: int, delta: int) -> None:
        for idx, count in self._gates_on.get(qubit, {}).items():
            new_score = self.score[idx] + delta * count
            self.score[idx] = new_score
            self._push(idx, self.seq_of[idx], new_score)

    # -- picking ---------------------------------------------------------
    def _pick_heaps(self) -> int:
        full = self._full
        while full:
            seq, idx = full[0]
            if self.seq_of.get(idx) == seq and (
                    self.score[idx] == len(self.gates[idx].qubits)):
                return idx
            heapq.heappop(full)
        for s in range(self._max_score, -1, -1):
            heap = self._buckets.get(s)
            while heap:
                seq, idx = heap[0]
                if self.seq_of.get(idx) == seq and self.score[idx] == s:
                    return idx
                heapq.heappop(heap)
        raise RuntimeError("ready set empty")  # pragma: no cover

    def _pick_window(self, window: int) -> int:
        best_idx = -1
        best_score = -1
        for idx in islice(self.ready_order.values(), window):
            score = self.score[idx]
            if score == len(self.gates[idx].qubits):
                return idx
            if score > best_score:
                best_score = score
                best_idx = idx
        return best_idx

    # -- main loop -------------------------------------------------------
    def run(self) -> OptimizedFetchResult:
        gates = self.gates
        succs = self.dag.succs
        indegree = self.indegree
        total = len(gates)
        while len(self.order) < total:
            idx = (self._pick_heaps() if self.use_heaps
                   else self._pick_window(self.window))
            self._remove_ready(idx)
            for q in gates[idx].qubits:
                hit, evicted = self.cache.access_evicting(q)
                if hit:
                    continue
                if evicted is not None:
                    self._residency_changed(evicted, -1)
                self._residency_changed(q, +1)
            self.order.append(idx)
            for succ in succs[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    self._make_ready(succ)
        return OptimizedFetchResult(stats=self.cache.stats, order=self.order)


def simulate_optimized(
    circuit: Circuit,
    capacity: int,
    window: Optional[int] = None,
) -> OptimizedFetchResult:
    """Dependency-aware fetch maximizing operands found in cache.

    ``window`` optionally limits how many ready instructions (in arrival
    order) are examined per pick; ``None`` scans the whole ready set,
    matching the paper's whole-program fetch window.

    Incremental implementation — bit-identical to
    :func:`simulate_optimized_reference` (same ``order``, same
    :class:`CacheStats`) but O(1) amortized per pick instead of
    rescanning the ready list.
    """
    if capacity < 2:
        raise ValueError(
            "cache capacity must be at least 2 logical qubits "
            f"(a two-operand gate needs both resident), got {capacity}"
        )
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    if window is not None and window < 1:
        raise ValueError("fetch window must be positive")
    return _IncrementalFetch(circuit, capacity, window).run()


@dataclass(frozen=True)
class HitRatePoint:
    """One bar of Figure 7."""

    n_bits: int
    capacity: int
    policy: str
    hit_rate: float


def hit_rate_study(
    n_bits_list: Sequence[int],
    compute_qubits: int,
    cache_factors: Sequence[float] = (1.0, 1.5, 2.0),
) -> List[HitRatePoint]:
    """Figure 7 sweep: hit rates for both policies and cache sizes.

    ``compute_qubits`` is the level-1 compute-region size ``PE``; cache
    capacities are ``factor * PE``.
    """
    from ..sim.scheduler import _adder_circuit

    points: List[HitRatePoint] = []
    for n_bits in n_bits_list:
        circuit = _adder_circuit(n_bits, False)
        for factor in cache_factors:
            capacity = int(round(factor * compute_qubits))
            in_order = simulate_in_order(circuit, capacity)
            optimized = simulate_optimized(circuit, capacity)
            points.append(HitRatePoint(
                n_bits, capacity, "in-order", in_order.hit_rate))
            points.append(HitRatePoint(
                n_bits, capacity, "optimized", optimized.stats.hit_rate))
    return points
