"""Quantum cache simulator (Section 5.2, Figure 7).

Models the level-1 cache of the CQLA memory hierarchy.  The simulator
consumes an instruction sequence (logical gates over qubit ids) and
tracks which logical qubits are resident at level 1; every gate operand
is an access, misses fetch from level-2 memory, and replacement is least
recently used.  Because qubits cannot be copied, every eviction is a
write-back (the evicted qubit must be promoted back to memory).

Two fetch policies are implemented, exactly as the paper describes:

* **in-order** — execute the program in generated order; hit rates stall
  around 20% for the Draper adder;
* **optimized** — the fetch window is the whole (statically known)
  program: build the dependency list, then repeatedly pick the ready
  instruction with the most operands already resident.  This raises hit
  rates to ~85% "immaterial of adder size and cache size".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import CircuitDag
from ..circuits.gates import Gate


@dataclass
class CacheStats:
    """Access counters for one simulation run."""

    capacity: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class LruCache:
    """LRU-resident set of logical qubits (ids are hashable ints)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.stats = CacheStats(capacity=capacity)

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> List[int]:
        return list(self._resident)

    def access(self, qubit: int) -> bool:
        """Touch ``qubit``; returns True on hit, fetching on miss."""
        self.stats.accesses += 1
        if qubit in self._resident:
            self._resident.move_to_end(qubit)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
            self.stats.evictions += 1
        self._resident[qubit] = None
        return False

    def peek_hits(self, qubits: Iterable[int]) -> int:
        """Resident operands of a candidate gate, without touching LRU."""
        return sum(1 for q in qubits if q in self._resident)


def simulate_in_order(circuit: Circuit, capacity: int) -> CacheStats:
    """Run the program in generated order through an LRU cache."""
    cache = LruCache(capacity)
    for gate in circuit.gates:
        for q in gate.qubits:
            cache.access(q)
    return cache.stats


@dataclass
class OptimizedFetchResult:
    """Stats plus the reordered instruction sequence it produced."""

    stats: CacheStats
    order: List[int] = field(default_factory=list)

    def reordered_gates(self, circuit: Circuit) -> List[Gate]:
        return [circuit.gates[i] for i in self.order]


def simulate_optimized(
    circuit: Circuit,
    capacity: int,
    window: Optional[int] = None,
) -> OptimizedFetchResult:
    """Dependency-aware fetch maximizing operands found in cache.

    ``window`` optionally limits how many ready instructions (in program
    order) are examined per pick; ``None`` scans the whole ready list,
    matching the paper's whole-program fetch window.
    """
    dag = CircuitDag.build(circuit)
    gates = circuit.gates
    indegree = [len(p) for p in dag.preds]
    ready: List[int] = list(dag.ready_at_start())
    ready_set = set(ready)
    cache = LruCache(capacity)
    order: List[int] = []

    while ready:
        candidates = ready if window is None else ready[:window]
        # Most resident operands wins; ties go to program order (the
        # earliest instruction), which also keeps the schedule stable.
        best_pos = 0
        best_score = -1
        for pos, idx in enumerate(candidates):
            score = cache.peek_hits(gates[idx].qubits)
            if score == len(gates[idx].qubits):
                best_pos = pos
                break
            if score > best_score:
                best_score = score
                best_pos = pos
        idx = candidates[best_pos]
        ready.remove(idx)
        ready_set.discard(idx)
        for q in gates[idx].qubits:
            cache.access(q)
        order.append(idx)
        for succ in dag.succs[idx]:
            indegree[succ] -= 1
            if indegree[succ] == 0 and succ not in ready_set:
                ready.append(succ)
                ready_set.add(succ)
    return OptimizedFetchResult(stats=cache.stats, order=order)


@dataclass(frozen=True)
class HitRatePoint:
    """One bar of Figure 7."""

    n_bits: int
    capacity: int
    policy: str
    hit_rate: float


def hit_rate_study(
    n_bits_list: Sequence[int],
    compute_qubits: int,
    cache_factors: Sequence[float] = (1.0, 1.5, 2.0),
) -> List[HitRatePoint]:
    """Figure 7 sweep: hit rates for both policies and cache sizes.

    ``compute_qubits`` is the level-1 compute-region size ``PE``; cache
    capacities are ``factor * PE``.
    """
    from ..sim.scheduler import _adder_circuit

    points: List[HitRatePoint] = []
    for n_bits in n_bits_list:
        circuit = _adder_circuit(n_bits, False)
        for factor in cache_factors:
            capacity = int(round(factor * compute_qubits))
            in_order = simulate_in_order(circuit, capacity)
            optimized = simulate_optimized(circuit, capacity)
            points.append(HitRatePoint(
                n_bits, capacity, "in-order", in_order.hit_rate))
            points.append(HitRatePoint(
                n_bits, capacity, "optimized", optimized.stats.hit_rate))
    return points
