"""Simulators: the hierarchy engine, scheduling, caching, traffic.

This package owns every timing simulation between a logical circuit
and a makespan:

* :mod:`repro.sim.levels` — the N-level memory-hierarchy engine:
  :class:`HierarchyStack`\\ s of per-level codes (pure via
  :func:`standard_stack`, mixed via :func:`mixed_stack`), exclusive
  residency, cascaded write-backs, and
  :func:`simulate_hierarchy_run` over any registered workload/policy;
* :mod:`repro.sim.events` — the discrete-event kernel and
  :class:`PortServer` transfer ports, speaking both time-model
  dialects (greedy reservations, bit-identical to the retained
  reference loops, and split transactions that pipeline hops);
* :mod:`repro.sim.policies` / :mod:`repro.sim.prefetch` — the
  eviction-policy and exact-prefetcher registries;
* :mod:`repro.sim.cache` — the two-level optimized-fetch cache
  simulator of Figure 7 (the fetch scheduler every engine run reuses);
* :mod:`repro.sim.hierarchy_sim` — the legacy Table 5 surface
  (:func:`simulate_l1_run`), a thin wrapper over the engine;
* :mod:`repro.sim.scheduler` / :mod:`repro.sim.comm` — block-level
  list scheduling (Figure 2) and communication accounting (Figure 8).

The public surface is re-exported below; ``docs/architecture.md``
explains how the pieces compose.
"""

from .cache import (
    CacheStats,
    HitRatePoint,
    LruCache,
    OptimizedFetchResult,
    hit_rate_study,
    simulate_in_order,
    simulate_optimized,
    simulate_optimized_reference,
)
from .comm import (
    CommBreakdown,
    adder_transfer_count,
    modexp_breakdown,
    qft_breakdown,
    superblock_bandwidth_per_period,
)
from .events import (
    EventKernel,
    PortServer,
    Reservation,
    TransferRequest,
)
from .hierarchy_sim import (
    DEFAULT_COMPUTE_QUBITS,
    HierarchyRunResult,
    l1_speedup,
    simulate_l1_run,
    simulate_l1_run_reference,
)
from .levels import (
    EngineAudit,
    HierarchyEngineResult,
    HierarchyStack,
    LevelStat,
    MemoryLevel,
    mixed_stack,
    simulate_hierarchy_run,
    simulate_hierarchy_run_audited,
    simulate_hierarchy_run_reference,
    standard_stack,
    three_level_stack,
    two_level_stack,
)
from .policies import (
    EvictionPolicy,
    PolicyCache,
    available_policies,
    make_policy,
    register_policy,
    validate_policy,
)
from .prefetch import (
    Prefetcher,
    available_prefetchers,
    make_prefetcher,
    register_prefetcher,
    validate_prefetcher,
)
from .scheduler import (
    ScheduleResult,
    adder_critical_slots,
    adder_makespan_slots,
    adder_schedule,
    adder_utilization,
    list_schedule,
    parallelism_profiles,
)

__all__ = [
    "CacheStats",
    "CommBreakdown",
    "DEFAULT_COMPUTE_QUBITS",
    "EngineAudit",
    "EventKernel",
    "EvictionPolicy",
    "HierarchyEngineResult",
    "HierarchyRunResult",
    "HierarchyStack",
    "HitRatePoint",
    "LevelStat",
    "LruCache",
    "MemoryLevel",
    "OptimizedFetchResult",
    "PolicyCache",
    "PortServer",
    "Prefetcher",
    "Reservation",
    "ScheduleResult",
    "TransferRequest",
    "adder_critical_slots",
    "adder_makespan_slots",
    "adder_schedule",
    "adder_transfer_count",
    "adder_utilization",
    "available_policies",
    "available_prefetchers",
    "hit_rate_study",
    "l1_speedup",
    "list_schedule",
    "make_policy",
    "make_prefetcher",
    "mixed_stack",
    "modexp_breakdown",
    "parallelism_profiles",
    "qft_breakdown",
    "register_policy",
    "register_prefetcher",
    "simulate_hierarchy_run",
    "simulate_hierarchy_run_audited",
    "simulate_hierarchy_run_reference",
    "simulate_in_order",
    "simulate_l1_run",
    "simulate_l1_run_reference",
    "simulate_optimized",
    "simulate_optimized_reference",
    "standard_stack",
    "superblock_bandwidth_per_period",
    "three_level_stack",
    "two_level_stack",
    "validate_policy",
    "validate_prefetcher",
]
