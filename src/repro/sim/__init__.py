"""Simulators: block scheduling, caching, hierarchy timing, traffic."""

from .cache import (
    CacheStats,
    HitRatePoint,
    LruCache,
    OptimizedFetchResult,
    hit_rate_study,
    simulate_in_order,
    simulate_optimized,
    simulate_optimized_reference,
)
from .comm import (
    CommBreakdown,
    adder_transfer_count,
    modexp_breakdown,
    qft_breakdown,
    superblock_bandwidth_per_period,
)
from .hierarchy_sim import (
    DEFAULT_COMPUTE_QUBITS,
    HierarchyRunResult,
    l1_speedup,
    simulate_l1_run,
)
from .scheduler import (
    ScheduleResult,
    adder_critical_slots,
    adder_makespan_slots,
    adder_schedule,
    adder_utilization,
    list_schedule,
    parallelism_profiles,
)

__all__ = [
    "CacheStats",
    "CommBreakdown",
    "DEFAULT_COMPUTE_QUBITS",
    "HierarchyRunResult",
    "HitRatePoint",
    "LruCache",
    "OptimizedFetchResult",
    "ScheduleResult",
    "adder_critical_slots",
    "adder_makespan_slots",
    "adder_schedule",
    "adder_transfer_count",
    "adder_utilization",
    "hit_rate_study",
    "l1_speedup",
    "list_schedule",
    "modexp_breakdown",
    "parallelism_profiles",
    "qft_breakdown",
    "simulate_in_order",
    "simulate_l1_run",
    "simulate_optimized",
    "simulate_optimized_reference",
    "superblock_bandwidth_per_period",
]
