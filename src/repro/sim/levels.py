"""N-level memory-hierarchy engine (generalizing the Table 5 simulator).

The paper evaluates exactly one organization: a level-1 compute region
plus cache in front of level-2 memory, LRU replacement, Draper adder
workload.  This module is the general form: a :class:`HierarchyStack`
of N >= 2 :class:`MemoryLevel`\\ s — level 0 is the compute level, the
last level the unbounded backing store — connected by the Table 3
:class:`~repro.ecc.transfer.TransferNetwork` between each adjacent
pair, driven by any :class:`~repro.circuits.circuit.Circuit` under any
registered eviction policy (:mod:`repro.sim.policies`).  Each level
carries its own code family: a boundary between two different codes is
priced from both endpoints' EC periods and teleport-channel
requirements (the off-diagonal Table 3 cells), so load/store-style
organizations like a Bacon-Shor compute level over Steane memory
(:func:`mixed_stack`) simulate on the same engine as the paper's pure
stacks.

The hierarchy is *exclusive*: logical qubits cannot be copied, so each
lives at exactly one level.  A gate operand found below level 0 is
teleported up hop by hop (each hop occupies a port of that hop's
network); the insertion at level 0 may evict a resident, whose paired
write-back may cascade further evictions down the stack.  Intermediate
levels therefore behave as victim caches: a qubit evicted from level 0
is one cheap hop away on its next use instead of a full climb from
memory.

Since PR 3 the time model runs on the discrete-event kernel of
:mod:`repro.sim.events`.  Two transfer models are available:

* the **reservation model** (``pipeline=False``, the default) keeps
  the PR 2 semantics — ports are greedily reserved at scan time and a
  miss's paired write-back holds the arrival port — and is pinned
  bit-identical to the retained sequential loop
  (:func:`simulate_hierarchy_run_reference`);
* the **split-transaction model** (``pipeline=True``) occupies a port
  only while a transfer is actually in flight, so multi-hop promotions
  pipeline across networks and short transfers backfill the idle
  windows the greedy model wastes.  On top of it, a registered
  prefetcher (:mod:`repro.sim.prefetch`) walks the *static* optimized
  fetch order and promotes upcoming operands into idle ports —
  prefetching is exact, not speculative, and prefetched qubits are
  pinned against eviction until first use.

With a two-level stack and the ``lru`` policy the reservation model
reproduces the original Table 5 simulator bit for bit (pinned by the
equivalence tests against ``simulate_l1_run_reference``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..circuits.circuit import Circuit, TraceIndex
from ..ecc.concatenated import by_key
from ..ecc.transfer import TransferNetwork
from .cache import simulate_optimized
from .events import EventKernel, PortServer
from .policies import PolicyCache, make_policy, validate_policy
from .prefetch import make_prefetcher, validate_prefetcher

#: Level-1 compute-region size used across the hierarchy studies: one
#: optimally sized superblock (36 blocks) of 9 data qubits... the paper
#: studies cache sizes against the compute-region qubit count n; we use
#: a 9-block compute region (81 qubits), the superblock granularity of
#: Figure 3, with the standard cache factor of 2.
DEFAULT_COMPUTE_QUBITS = 81

#: Standard cache-capacity multiple of the compute-region size.
DEFAULT_CACHE_FACTOR = 2.0


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy: an encoding point plus a capacity.

    ``capacity`` is the number of logical qubits the level can hold;
    ``None`` marks the unbounded backing store (the last level).  The
    access cost and the per-transfer channel requirement derive from
    the level's concatenated code.
    """

    name: str
    code_key: str
    code_level: int
    capacity: Optional[int]

    def __post_init__(self) -> None:
        by_key(self.code_key)  # validates the key
        if self.code_level < 1:
            raise ValueError("memory levels must be encoded (code_level >= 1)")
        if self.capacity is not None and self.capacity < 2:
            raise ValueError(
                "level capacity must be at least 2 logical qubits "
                "(or None for an unbounded backing store)"
            )

    @property
    def is_bounded(self) -> bool:
        return self.capacity is not None

    @property
    def op_time_s(self) -> float:
        """Sustained logical-gate period at this level's encoding."""
        return by_key(self.code_key).logical_op_time_s(self.code_level)

    @property
    def ec_time_s(self) -> float:
        return by_key(self.code_key).ec_time_s(self.code_level)

    @property
    def channels_per_transfer(self) -> int:
        """Teleport channels one logical transfer occupies (Table 3)."""
        return by_key(self.code_key).spec.teleport_channels


@dataclass(frozen=True)
class HierarchyStack:
    """An ordered stack of levels joined by transfer networks.

    ``levels[0]`` is the compute level (gates execute there),
    ``levels[-1]`` the unbounded backing store.  ``parallel_transfers``
    is either one "Par Xfer" count broadcast to every network or a
    tuple with one entry per adjacent-level network (index ``i`` joins
    level ``i+1`` to level ``i``).
    """

    levels: Tuple[MemoryLevel, ...]
    parallel_transfers: Tuple[int, ...] = (10,)

    def __post_init__(self) -> None:
        levels = tuple(self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) < 2:
            raise ValueError("a hierarchy needs at least two levels")
        for level in levels[:-1]:
            if not level.is_bounded:
                raise ValueError(
                    "only the last (backing-store) level may be unbounded"
                )
        if levels[-1].is_bounded:
            raise ValueError(
                "the last level is the backing store and must be unbounded "
                "(capacity=None)"
            )
        pt = self.parallel_transfers
        if isinstance(pt, int):
            pt = (pt,) * (len(levels) - 1)
        else:
            pt = tuple(pt)
            if len(pt) == 1:
                pt = pt * (len(levels) - 1)
        if len(pt) != len(levels) - 1:
            raise ValueError(
                "parallel_transfers needs one entry per adjacent-level "
                f"network ({len(levels) - 1}), got {len(pt)}"
            )
        for i, count in enumerate(pt):
            if count < 1:
                raise ValueError("need at least one parallel transfer")
            lower, upper = levels[i], levels[i + 1]
            # A cross-code boundary's transfer terminates in both
            # encodings, so it needs the wider channel requirement
            # (matches TransferNetwork.channels_per_transfer).
            channels = max(
                lower.channels_per_transfer, upper.channels_per_transfer
            )
            if count < channels:
                boundary = (
                    f"{upper.code_key} {upper.name} to "
                    f"{lower.code_key} {lower.name}"
                )
                raise ValueError(
                    f"network {i} (joining {boundary}) has "
                    f"parallel_transfers={count} but one transfer across "
                    f"this boundary occupies {channels} channels — the "
                    "network cannot fit even one transfer, and the port "
                    "model would silently over-provision it to a single "
                    "lane"
                )
        object.__setattr__(self, "parallel_transfers", pt)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def code_key(self) -> str:
        """The compute-level code family (the whole stack's, if pure)."""
        return self.levels[0].code_key

    @property
    def code_keys(self) -> Tuple[str, ...]:
        """Each level's code family, top (compute) to bottom (store)."""
        return tuple(level.code_key for level in self.levels)

    @property
    def is_mixed(self) -> bool:
        """Does any boundary of this stack bridge two code families?"""
        return len(set(self.code_keys)) > 1

    def network(self, index: int) -> TransferNetwork:
        """The transfer network joining level ``index+1`` to ``index``.

        Both endpoints are routed through the builder: the cache side
        is the lower level's (code, code level), the memory side the
        upper level's, so a cross-code boundary prices its transfers
        from both codes' EC periods (the off-diagonal Table 3 cells).
        """
        lower, upper = self.levels[index], self.levels[index + 1]
        return TransferNetwork(
            code_key=lower.code_key,
            memory_level=upper.code_level,
            cache_level=lower.code_level,
            parallel_transfers=self.parallel_transfers[index],
            memory_code_key=upper.code_key,
        )

    def networks(self) -> Tuple[TransferNetwork, ...]:
        return tuple(self.network(i) for i in range(self.depth - 1))


def l1_capacity(compute_qubits: int, cache_factor: float) -> int:
    """Resident-set size of a compute level: region plus cache."""
    return int(round((1.0 + cache_factor) * compute_qubits))


def two_level_stack(
    code_key: str,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = DEFAULT_CACHE_FACTOR,
    parallel_transfers: Union[int, Sequence[int]] = 10,
) -> HierarchyStack:
    """The paper's design point: L1 compute+cache over L2 memory."""
    return _leveled_stack(
        (code_key, code_key), compute_qubits, cache_factor,
        parallel_transfers,
    )


def _leveled_stack(
    code_keys: Sequence[str],
    compute_qubits: int,
    cache_factor: float,
    parallel_transfers: Union[int, Sequence[int]],
) -> HierarchyStack:
    """The shared standard geometry over one code per level: code level
    ``i+1`` at stack level ``i``, capacities doubling below the compute
    level, the deepest level the unbounded store."""
    depth = len(code_keys)
    if depth < 2:
        raise ValueError("a hierarchy needs at least two levels")
    base = l1_capacity(compute_qubits, cache_factor)
    levels: List[MemoryLevel] = [
        MemoryLevel(f"L{i + 1}", code_keys[i], i + 1, base * (2 ** i))
        for i in range(depth - 1)
    ]
    levels.append(MemoryLevel("memory", code_keys[-1], depth, None))
    return HierarchyStack(tuple(levels), parallel_transfers)


def standard_stack(
    code_key: str,
    depth: int,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = DEFAULT_CACHE_FACTOR,
    parallel_transfers: Union[int, Sequence[int]] = 10,
) -> HierarchyStack:
    """A depth-N stack: code level ``i+1`` at stack level ``i``.

    Capacities double per level below the compute level (each tier
    trades speed for space), the deepest level is the unbounded store.
    ``depth=2`` is exactly :func:`two_level_stack`.
    """
    if depth < 2:
        raise ValueError("a hierarchy needs at least two levels")
    return _leveled_stack(
        (code_key,) * depth, compute_qubits, cache_factor,
        parallel_transfers,
    )


def three_level_stack(code_key: str, **kwargs) -> HierarchyStack:
    """Convenience: the default depth-3 organization."""
    return standard_stack(code_key, 3, **kwargs)


def mixed_stack(
    compute_code_key: str,
    memory_code_key: str,
    depth: int = 2,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = DEFAULT_CACHE_FACTOR,
    parallel_transfers: Union[int, Sequence[int]] = 10,
) -> HierarchyStack:
    """A mixed-code stack: one code computes, another code stores.

    Level 0 (the compute level plus its cache capacity) is encoded in
    ``compute_code_key``; every level below it — intermediate victim
    caches and the unbounded backing store — in ``memory_code_key``.
    Geometry matches :func:`standard_stack`: code level ``i+1`` at
    stack level ``i``, capacities doubling below the compute level.

    This is the load/store-style organization of e.g. a Bacon-Shor
    compute region over Steane memory: the compute-memory boundary's
    transfers are priced from *both* codes' teleport channels and EC
    periods (the off-diagonal Table 3 cells).  With
    ``compute_code_key == memory_code_key`` the result is exactly
    :func:`standard_stack` (and ``depth=2``, :func:`two_level_stack`) —
    both builders share one geometry constructor, so they cannot drift.
    """
    if depth < 2:
        raise ValueError("a hierarchy needs at least two levels")
    return _leveled_stack(
        (compute_code_key,) + (memory_code_key,) * (depth - 1),
        compute_qubits, cache_factor, parallel_transfers,
    )


# ----------------------------------------------------------------------
# engine results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LevelStat:
    """Access counters of one level over a run."""

    name: str
    capacity: Optional[int]
    accesses: int
    hits: int
    misses: int
    evictions: int
    final_occupancy: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class HierarchyEngineResult:
    """Timing and traffic breakdown of one N-level simulated run."""

    workload: str
    policy: str
    depth: int
    total_time_s: float
    serial_bottom_time_s: float
    compute_time_s: float
    transfer_wait_s: float
    level_stats: Tuple[LevelStat, ...]
    fetches: Tuple[int, ...]
    writebacks: Tuple[int, ...]
    prefetch: str = "none"
    prefetches_issued: int = 0
    prefetches_used: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate at the compute level (the paper's cache hit rate)."""
        return self.level_stats[0].hit_rate

    @property
    def speedup(self) -> float:
        """Serial bottom-level execution time over hierarchy time."""
        return self.serial_bottom_time_s / self.total_time_s

    @property
    def transfers(self) -> int:
        """Total logical-qubit moves across every network, both ways."""
        return sum(self.fetches) + sum(self.writebacks)

    @property
    def transfer_bound_fraction(self) -> float:
        if not self.total_time_s:
            return 0.0
        return self.transfer_wait_s / self.total_time_s


@dataclass(frozen=True)
class EngineAudit:
    """Invariant bookkeeping of one engine run (for tests and studies).

    ``port_peak_concurrency`` is computed from the recorded busy
    intervals of each network, independently of the dispatch
    accounting; ``pinned_evictions`` counts evictions of in-flight or
    prefetched-unused qubits (must stay 0 — the pin budget guarantees
    an unpinned victim always exists); ``conservation_ok`` is the
    end-of-run exclusive-residency check (every qubit at exactly one
    level, caches and location map agreeing).
    """

    port_lanes: Tuple[int, ...]
    port_peak_concurrency: Tuple[int, ...]
    prefetches_vetoed: int
    pinned_evictions: int
    conservation_ok: bool
    #: Residency-recorder invariants (defaults when no recorder ran):
    #: time inversions monotonized away (reservation dialect only),
    #: source-level disagreements (an accounting bug; always 0), and
    #: the exact interval-partition check over every qubit's timeline.
    residency_clamped: int = 0
    residency_mismatches: int = 0
    residency_partition_ok: bool = True


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def _resolve_workload(workload: Union[Circuit, str]) -> Circuit:
    if isinstance(workload, Circuit):
        return workload
    if isinstance(workload, str):
        from ..circuits.workloads import build_workload

        return build_workload(workload)
    raise TypeError(
        "workload must be a Circuit or a registered workload name, "
        f"got {type(workload).__name__}"
    )


def _resolve_order(
    circuit: Circuit,
    capacity: int,
    window: Optional[int],
    fetch: str,
    order: Optional[Sequence[int]],
) -> Sequence[int]:
    """Shared fetch-order validation and scheduling."""
    gates = circuit.gates
    if fetch not in ("optimized", "in-order"):
        raise ValueError(
            f"unknown fetch mode {fetch!r}; use 'optimized' or 'in-order'"
        )
    if window is not None and (order is not None or fetch != "optimized"):
        raise ValueError(
            "window only applies to fetch='optimized' without a "
            "precomputed order; it would be silently ignored here"
        )
    if order is not None and fetch != "optimized":
        raise ValueError(
            "order and fetch='in-order' contradict each other; a "
            "precomputed order already fixes the schedule"
        )
    if order is not None:
        if sorted(order) != list(range(len(gates))):
            raise ValueError(
                "order must be a permutation of the circuit's gate indices"
            )
        return order
    if fetch == "optimized":
        return simulate_optimized(circuit, capacity, window=window).order
    return range(len(gates))


def simulate_hierarchy_run(
    stack: HierarchyStack,
    workload: Union[Circuit, str],
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
    prefetch: str = "none",
    pipeline: Optional[bool] = None,
    recorder=None,
) -> HierarchyEngineResult:
    """Simulate ``workload`` on the compute level of ``stack``.

    Instructions issue in the optimized fetch order computed against
    the compute level's capacity (``fetch="in-order"`` keeps program
    order instead; ``window`` bounds the fetch lookahead).  Every
    finite level replaces residents with a fresh instance of the named
    eviction ``policy``.  All qubits start at the backing store.

    ``prefetch`` names a registered prefetcher
    (:mod:`repro.sim.prefetch`); anything but ``"none"`` walks the
    static fetch order and promotes upcoming operands ahead of demand.
    ``pipeline`` selects the transfer model: ``False`` is the PR 2
    reservation model (bit-identical to
    :func:`simulate_hierarchy_run_reference`), ``True`` the
    split-transaction model.  The default (``None``) picks the
    reservation model for ``prefetch="none"`` and the split-transaction
    model otherwise — prefetching requires it.

    The fetch schedule depends only on (circuit, compute capacity,
    window), never on the eviction policy — callers comparing policies
    can compute ``simulate_optimized(circuit, capacity).order`` once
    and pass it as ``order`` to skip redundant scheduling runs.

    ``recorder`` (a :class:`~repro.sim.residency.ResidencyRecorder`)
    observes per-qubit residency intervals; with one attached the
    reservation model runs the event-kernel engine instead of the
    replay pricer (its makespan is pinned bit-identical), and every
    returned float is unchanged — recording never touches engine
    arithmetic.

    This entry point runs the *fast* engines — the reservation model
    through :mod:`repro.sim.replay` (extract the movement trace, price
    it), the split-transaction model through
    :mod:`repro.sim.fastsplit` (the flattened event loop) — both
    pinned bit-identical to the retained reference implementations
    behind :func:`simulate_hierarchy_run_audited`.
    """
    circuit = _resolve_workload(workload)
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    validate_prefetcher(prefetch)
    if pipeline is None:
        pipeline = prefetch != "none"
    if prefetch != "none" and not pipeline:
        raise ValueError(
            f"prefetch={prefetch!r} requires the split-transaction "
            "pipeline; pipeline=False contradicts it"
        )
    validate_policy(policy)
    order = _resolve_order(
        circuit, stack.levels[0].capacity, window, fetch, order
    )
    if pipeline:
        from .fastsplit import simulate_split_fast, supports_fast_split

        if supports_fast_split(policy, prefetch):
            return simulate_split_fast(
                stack, circuit, order, policy, prefetch, recorder=recorder
            )
        run = _SplitTransactionRun(
            stack, circuit, order, circuit.operand_trace(order), policy,
            [make_policy(policy) for _ in stack.levels[:-1]], prefetch,
            recorder=recorder,
        )
        return run.run()[0]
    if recorder is not None:
        # The movement trace has no qubit identities, so a recorded
        # reservation run goes through the event-kernel engine (its
        # makespan is pinned bit-identical to the replay pricer).
        return _run_reservation(
            stack, circuit, order, circuit.operand_trace(order), policy,
            [make_policy(policy) for _ in stack.levels[:-1]],
            recorder=recorder,
        )[0]
    from .replay import _extract, _scan_program, price_movement_trace

    movement = _extract(stack, circuit, policy, _scan_program(circuit, order))
    return price_movement_trace(movement, stack)


def simulate_hierarchy_run_audited(
    stack: HierarchyStack,
    workload: Union[Circuit, str],
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
    prefetch: str = "none",
    pipeline: Optional[bool] = None,
    recorder=None,
) -> Tuple[HierarchyEngineResult, EngineAudit]:
    """:func:`simulate_hierarchy_run` plus the :class:`EngineAudit`.

    With a ``recorder`` attached the audit's ``residency_*`` fields are
    filled from the finished recorder's invariant checks.
    """
    circuit = _resolve_workload(workload)
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    validate_prefetcher(prefetch)
    if pipeline is None:
        pipeline = prefetch != "none"
    if prefetch != "none" and not pipeline:
        raise ValueError(
            f"prefetch={prefetch!r} requires the split-transaction "
            "pipeline; pipeline=False contradicts it"
        )
    top = stack.levels[0]
    # One policy instance per finite level, built before the (much more
    # expensive) fetch scheduling so a bad policy name fails fast.
    level_policies = [make_policy(policy) for _ in stack.levels[:-1]]
    order = _resolve_order(circuit, top.capacity, window, fetch, order)
    trace = circuit.operand_trace(order)
    if pipeline:
        run = _SplitTransactionRun(
            stack, circuit, order, trace, policy, level_policies, prefetch,
            recorder=recorder,
        )
        return run.run()
    return _run_reservation(
        stack, circuit, order, trace, policy, level_policies,
        recorder=recorder,
    )


# ----------------------------------------------------------------------
# reservation model (PR 2-compatible, bit-identical to the reference)
# ----------------------------------------------------------------------

def _run_reservation(
    stack: HierarchyStack,
    circuit: Circuit,
    order: Sequence[int],
    trace: Sequence[int],
    policy_name: str,
    level_policies: list,
    recorder=None,
) -> Tuple[HierarchyEngineResult, EngineAudit]:
    """The PR 2 time model on :class:`~repro.sim.events.PortServer`.

    Ports are greedily reserved at scan time and the paired write-back
    of an evicted qubit holds the arrival port — exactly the retained
    sequential loop's arithmetic, so every float matches
    :func:`simulate_hierarchy_run_reference` bit for bit.  A
    ``recorder`` only observes the already-computed reservation times
    (scan order is not per-qubit causal here — the recorder's
    clamp-truncation handles the inversions).
    """
    gates = circuit.gates
    top = stack.levels[0]
    bottom = stack.depth - 1
    caches = [
        PolicyCache(level.capacity, level_policy, trace)
        for level, level_policy in zip(stack.levels[:-1], level_policies)
    ]
    networks = stack.networks()
    demote = [net.demote_time_s for net in networks]
    promote = [net.promote_time_s for net in networks]
    servers = [
        PortServer(max(1, round(net.effective_concurrency)), name=f"net{i}",
                   record=True)
        for i, net in enumerate(networks)
    ]

    location = {q: bottom for q in circuit.touched_qubits()}
    if recorder is not None:
        recorder.begin(location)
    rec = None if recorder is None else recorder.transfer
    fetches = [0] * len(networks)
    writebacks = [0] * len(networks)
    bottom_hits = 0

    top_op = top.op_time_s
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    pos = 0
    for idx in order:
        gate = gates[idx]
        arrivals = 0.0
        # Operands already touched for this gate are pinned: they are
        # part of the issuing gate and cannot be evicted mid-gate.
        # (LRU never picks them anyway — they sit at the MRU end — so
        # the two-level-LRU compatibility path is unaffected.)
        issued: set = set()
        for q in gate.qubits:
            src = location[q]
            if src == 0:
                caches[0].access_evicting(q, pos)  # guaranteed hit
                issued.add(q)
                pos += 1
                continue
            # The search walks down the stack: a miss at every level
            # above the qubit's, a hit where it lives.
            for k in range(1, src):
                caches[k].record_miss()
            if src == bottom:
                bottom_hits += 1
            else:
                caches[src].lookup_remove(q, pos)
            # Teleport the qubit up hop by hop; each hop occupies a
            # port of its network, and the qubit cannot start a hop
            # before finishing the previous one.
            prev = 0.0
            for k in range(src - 1, 0, -1):
                start = servers[k].reserve(prev, demote[k])
                prev = start + demote[k]
                fetches[k] += 1
                if rec is not None:
                    rec(q, k + 1, k, start, prev, k)
            # The eviction decision precedes the final-hop reservation
            # (it does not touch the ports) so the paired write-back's
            # port hold can be reserved in one step.
            _, evicted = caches[0].access_evicting(q, pos, issued)
            location[q] = 0
            issued.add(q)
            hold = promote[0] if evicted is not None else 0.0
            start = servers[0].reserve(prev, demote[0], hold)
            arrival = start + demote[0]
            fetches[0] += 1
            if rec is not None:
                rec(q, 1, 0, start, arrival, 0)
            if evicted is not None:
                # The paired write-back of the evicted qubit keeps the
                # arrival port busy after the demotion completes.
                writebacks[0] += 1
                location[evicted] = 1
                victim = evicted
                available = arrival + promote[0]
                if rec is not None:
                    rec(evicted, 0, 1, arrival, available, 0)
                lvl = 1
                while lvl < bottom:
                    bumped = caches[lvl].insert(victim, pos)
                    if bumped is None:
                        break
                    writebacks[lvl] += 1
                    location[bumped] = lvl + 1
                    start2 = servers[lvl].reserve(available, promote[lvl])
                    available = start2 + promote[lvl]
                    if rec is not None:
                        rec(bumped, lvl, lvl + 1, start2, available, lvl)
                    victim = bumped
                    lvl += 1
            if arrival > arrivals:
                arrivals = arrival
            pos += 1
        start = compute_free if compute_free > arrivals else arrivals
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        duration = gate.ec_slots * top_op
        compute_free = start + duration
        compute_time += duration

    level_stats = _collect_level_stats(
        stack, caches, location, bottom_hits
    )
    serial_bottom = (
        sum(g.ec_slots for g in gates) * stack.levels[bottom].op_time_s
    )
    result = HierarchyEngineResult(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy_name,
        depth=stack.depth,
        total_time_s=compute_free,
        serial_bottom_time_s=serial_bottom,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        level_stats=tuple(level_stats),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
    )
    if recorder is not None:
        recorder.finish(compute_free)
    audit = EngineAudit(
        port_lanes=tuple(s.lanes for s in servers),
        port_peak_concurrency=tuple(s.max_concurrency() for s in servers),
        prefetches_vetoed=0,
        pinned_evictions=0,
        conservation_ok=_check_conservation(stack, caches, location),
        **_residency_audit(recorder),
    )
    return result, audit


def _residency_audit(recorder) -> Dict[str, object]:
    """The audit's ``residency_*`` keywords from a finished recorder."""
    if recorder is None:
        return {}
    return {
        "residency_clamped": recorder.clamped,
        "residency_mismatches": recorder.mismatches,
        "residency_partition_ok": recorder.partition_ok(),
    }


def _collect_level_stats(
    stack: HierarchyStack,
    caches: List[PolicyCache],
    location: Dict[int, int],
    bottom_hits: int,
) -> List[LevelStat]:
    occupancy = [0] * stack.depth
    for level in location.values():
        occupancy[level] += 1
    level_stats: List[LevelStat] = []
    for i, cache in enumerate(caches):
        level = stack.levels[i]
        s = cache.stats
        level_stats.append(LevelStat(
            name=level.name,
            capacity=level.capacity,
            accesses=s.accesses,
            hits=s.hits,
            misses=s.misses,
            evictions=s.evictions,
            final_occupancy=occupancy[i],
        ))
    bottom_level = stack.levels[-1]
    level_stats.append(LevelStat(
        name=bottom_level.name,
        capacity=None,
        accesses=bottom_hits,
        hits=bottom_hits,
        misses=0,
        evictions=0,
        final_occupancy=occupancy[-1],
    ))
    return level_stats


def _check_conservation(
    stack: HierarchyStack,
    caches: List[PolicyCache],
    location: Dict[int, int],
) -> bool:
    """Exclusive residency: caches and the location map must agree."""
    for i, cache in enumerate(caches):
        at_level = {q for q, lvl in location.items() if lvl == i}
        if set(cache.resident()) != at_level:
            return False
    bottom = stack.depth - 1
    return all(0 <= lvl <= bottom for lvl in location.values())


# ----------------------------------------------------------------------
# split-transaction model (pipelined transfers + exact prefetch)
# ----------------------------------------------------------------------

#: Dispatch priorities among simultaneously-ready transfers.
_DEMAND, _WRITEBACK, _PREFETCH = 0, 1, 2

#: Compute-level slots never given to prefetch pins: headroom for the
#: operands of the issuing gate (up to three) plus one spare victim, so
#: a demand insertion can always find an unpinned qubit to evict.
_PIN_MARGIN = 4


class _Trigger:
    """A one-shot event time: subscribers fire at (or after) it."""

    __slots__ = ("time", "_subscribers")

    def __init__(self) -> None:
        self.time: Optional[float] = None
        self._subscribers: List[Callable[[float], None]] = []

    def subscribe(self, fn: Callable[[float], None]) -> None:
        if self.time is None:
            self._subscribers.append(fn)
        else:
            fn(self.time)

    def fire(self, time: float) -> None:
        self.time = time
        subscribers, self._subscribers = self._subscribers, []
        for fn in subscribers:
            fn(time)


class _Fetch:
    """One in-flight promotion to the compute level."""

    __slots__ = ("qubit", "priority", "pending", "server_k")

    def __init__(self, qubit: int, priority: int) -> None:
        self.qubit = qubit
        self.priority = priority
        self.pending = None  # the TransferRequest of the current hop
        self.server_k = -1


class _SplitTransactionRun:
    """One engine run under the split-transaction transfer model.

    Cache state (residency, policy bookkeeping, hit/miss counters)
    advances in *scan order* — the static fetch schedule — exactly as
    in the reservation model, so replacement decisions are identical
    across transfer models.  Only the time domain differs: transfers
    are queued requests against the port servers of an
    :class:`~repro.sim.events.EventKernel`, a port is busy only while a
    transfer is in flight, and each qubit's movements serialize through
    a per-qubit movement queue (a qubit mid-write-back must land before
    it can climb again).
    """

    def __init__(
        self,
        stack: HierarchyStack,
        circuit: Circuit,
        order: Sequence[int],
        trace: Sequence[int],
        policy_name: str,
        level_policies: list,
        prefetch_name: str,
        recorder=None,
    ) -> None:
        self.stack = stack
        self.circuit = circuit
        self.order = order
        self.trace = trace
        self.policy_name = policy_name
        self.prefetch_name = prefetch_name
        self.bottom = stack.depth - 1
        self.caches = [
            PolicyCache(level.capacity, level_policy, trace)
            for level, level_policy in zip(stack.levels[:-1], level_policies)
        ]
        networks = stack.networks()
        self.demote = [net.demote_time_s for net in networks]
        self.promote = [net.promote_time_s for net in networks]
        self.kernel = EventKernel()
        self.servers = [
            PortServer(
                max(1, round(net.effective_concurrency)),
                kernel=self.kernel, name=f"net{i}", record=True,
            )
            for i, net in enumerate(networks)
        ]
        touched = circuit.touched_qubits()
        self.location = {q: self.bottom for q in touched}
        self.recorder = recorder
        if recorder is not None:
            recorder.begin(self.location)
        self._rec = None if recorder is None else recorder.transfer
        self.avail = {q: 0.0 for q in touched}
        #: Per-qubit queue of movements waiting on the active one; a
        #: qubit is present exactly while some movement is unfinished.
        self.moving: Dict[int, List[Callable[[float], None]]] = {}
        #: In-flight promotions by qubit (all are at location 0).
        self.in_flight_up: Dict[int, _Fetch] = {}
        #: Prefetched qubits not yet demanded: pinned against eviction.
        self.pinned: Set[int] = set()
        self.index = TraceIndex.build(trace)
        self.prefetcher = make_prefetcher(prefetch_name)
        self.prefetcher.reset(trace, self.index, stack.depth)
        self.fetches = [0] * len(networks)
        self.writebacks = [0] * len(networks)
        self.bottom_hits = 0
        self.prefetches_issued = 0
        self.prefetches_used = 0
        self.prefetches_vetoed = 0
        self.pinned_evictions = 0
        self.pos = 0

    # -- per-qubit movement sequencing ---------------------------------
    def _enqueue_move(self, q: int, launch: Callable[[float], None]) -> None:
        """Schedule a movement of ``q``: ``launch(settle_t)`` runs once
        any earlier movement of ``q`` lands."""
        queue = self.moving.get(q)
        if queue is None:
            self.moving[q] = []
            launch(self.avail[q])
        else:
            queue.append(launch)

    def _movement_done(self, q: int, t: float) -> None:
        self.avail[q] = t
        queue = self.moving[q]
        if queue:
            queue.pop(0)(t)
        else:
            del self.moving[q]

    # -- promotions ----------------------------------------------------
    def _launch_fetch(
        self,
        q: int,
        src: int,
        issue_t: float,
        priority: int,
        chain: List[Tuple[int, int]],
    ) -> None:
        fetch = _Fetch(q, priority)
        self.in_flight_up[q] = fetch
        arrival = _Trigger()
        trigger = arrival
        for net_k, victim in chain:
            trigger = self._pair_writeback(trigger, net_k, victim)

        def launch(settle_t: float) -> None:
            ready = issue_t if issue_t > settle_t else settle_t
            self._hop(fetch, src - 1, ready, arrival)

        self._enqueue_move(q, launch)

    def _hop(
        self, fetch: _Fetch, k: int, ready: float, arrival: _Trigger
    ) -> None:
        def done(end: float) -> None:
            self.fetches[k] += 1
            if self._rec is not None:
                self._rec(
                    fetch.qubit, k + 1, k, end - self.demote[k], end, k
                )
            fetch.pending = None
            if k == 0:
                q = fetch.qubit
                del self.in_flight_up[q]
                self._movement_done(q, end)
                arrival.fire(end)
            else:
                self._hop(fetch, k - 1, end, arrival)

        fetch.server_k = k
        fetch.pending = self.servers[k].request(
            ready, self.demote[k], done, priority=fetch.priority,
        )

    def _upgrade_priority(self, fetch: _Fetch) -> None:
        """Promote a queued prefetch transfer to demand priority."""
        fetch.priority = _DEMAND
        req = fetch.pending
        if req is None:
            return
        server = self.servers[fetch.server_k]
        if server.withdraw(req):
            fetch.pending = server.request(
                req.ready, req.duration, req.on_complete, priority=_DEMAND,
            )

    # -- demotions -----------------------------------------------------
    def _pair_writeback(
        self, trigger: _Trigger, net_k: int, victim: int
    ) -> _Trigger:
        """Schedule ``victim``'s write-back once ``trigger`` fires (the
        incoming qubit's arrival, or the previous cascade hop)."""
        done_trigger = _Trigger()

        def launch(settle_t: float) -> None:
            def fire(t: float) -> None:
                ready = t if t > settle_t else settle_t

                def done(end: float) -> None:
                    self.writebacks[net_k] += 1
                    if self._rec is not None:
                        self._rec(
                            victim, net_k, net_k + 1,
                            end - self.promote[net_k], end, net_k,
                        )
                    self._movement_done(victim, end)
                    done_trigger.fire(end)

                self.servers[net_k].request(
                    ready, self.promote[net_k], done, priority=_WRITEBACK,
                )

            trigger.subscribe(fire)

        self._enqueue_move(victim, launch)
        return done_trigger

    def _evict_cascade(
        self, evicted: Optional[int]
    ) -> List[Tuple[int, int]]:
        """Scan-order cascade of an eviction at the compute level.

        Returns the write-back chain as (network, victim) pairs; cache
        state and the location map update immediately (scan order), the
        transfers themselves run later in the time domain.
        """
        if evicted is None:
            return []
        if evicted in self.pinned or evicted in self.in_flight_up:
            # The pin budget should make this unreachable; count it so
            # the invariant tests can assert it never happens.
            self.pinned_evictions += 1
            self.pinned.discard(evicted)
        chain = [(0, evicted)]
        self.location[evicted] = 1
        victim = evicted
        lvl = 1
        while lvl < self.bottom:
            bumped = self.caches[lvl].insert(victim, self.pos)
            if bumped is None:
                break
            chain.append((lvl, bumped))
            self.location[bumped] = lvl + 1
            victim = bumped
            lvl += 1
        return chain

    # -- prefetching ---------------------------------------------------
    def _victim_exclusions(self, issued) -> Set[int]:
        pinned = set(self.pinned)
        pinned.update(self.in_flight_up)
        pinned.update(issued)
        return pinned

    def _issue_prefetches(self, issue_t: float, issued: Set[int]) -> None:
        cache0 = self.caches[0]
        cap = cache0.capacity
        budget = cap - _PIN_MARGIN - len(self.pinned)
        if budget <= 0:
            return
        # The victim choice and exclusion set only change when a
        # prefetch is actually accepted (vetoed candidates mutate
        # nothing), so both are cached per acceptance epoch instead of
        # being recomputed for every candidate.
        exclusions: Optional[Set[int]] = None
        victim: Optional[int] = None
        victim_next: float = 0.0
        for q in self.prefetcher.candidates(self.pos - 1, self.location):
            if budget <= 0:
                break
            src = self.location[q]
            if src == 0 or q in self.moving:
                continue
            if exclusions is None:
                # ``issued`` keeps the current gate's operands out of
                # victim selection: they cannot be teleported away
                # mid-gate (a last-use operand would otherwise be the
                # lookahead policies' favorite victim, stalling the
                # gate on its own prefetch-induced write-back).
                exclusions = self._victim_exclusions(issued)
                victim = None
                if len(cache0) >= cap:
                    victim = cache0.peek_victim(self.pos, exclusions)
                    if victim is not None and victim in exclusions:
                        break  # unsatisfiable pin: no victim this gate
                    if victim is not None:
                        victim_next = self.index.next_use(
                            victim, self.pos - 1
                        )
            if victim is not None:
                # Exactness veto: an exact prefetch may reorder
                # transfers but never displace a qubit the static
                # schedule needs no later than the prefetched one —
                # the injected miss (and its serialized refill wait)
                # costs more than the prefetch hides.
                if victim_next <= self.index.next_use(q, self.pos - 1):
                    self.prefetches_vetoed += 1
                    continue
            if src != self.bottom:
                # A prefetch is not a demand access: pull the qubit out
                # quietly, without perturbing the level's hit counters.
                self.caches[src].remove(q)
            evicted = cache0.insert(q, self.pos, exclusions)
            self.location[q] = 0
            self.pinned.add(q)
            chain = self._evict_cascade(evicted)
            self._launch_fetch(q, src, issue_t, _PREFETCH, chain)
            self.prefetches_issued += 1
            budget -= 1
            exclusions = None  # state changed: recompute next round

    # -- the run -------------------------------------------------------
    def run(self) -> Tuple[HierarchyEngineResult, EngineAudit]:
        gates = self.circuit.gates
        caches = self.caches
        top_op = self.stack.levels[0].op_time_s
        compute_free = 0.0
        transfer_wait = 0.0
        compute_time = 0.0
        for idx in self.order:
            gate = gates[idx]
            issue_t = compute_free
            issued: Set[int] = set()
            for q in gate.qubits:
                src = self.location[q]
                if src == 0:
                    caches[0].access_evicting(q, self.pos)  # guaranteed hit
                    if q in self.pinned:
                        self.pinned.discard(q)
                        self.prefetches_used += 1
                    fetch = self.in_flight_up.get(q)
                    if fetch is not None and fetch.priority != _DEMAND:
                        self._upgrade_priority(fetch)
                else:
                    for k in range(1, src):
                        caches[k].record_miss()
                    if src == self.bottom:
                        self.bottom_hits += 1
                    else:
                        caches[src].lookup_remove(q, self.pos)
                    _, evicted = caches[0].access_evicting(
                        q, self.pos, self._victim_exclusions(issued)
                    )
                    self.location[q] = 0
                    chain = self._evict_cascade(evicted)
                    self._launch_fetch(q, src, issue_t, _DEMAND, chain)
                issued.add(q)
                self.pos += 1
            self._issue_prefetches(issue_t, issued)
            operands = set(gate.qubits)
            while any(q in self.moving for q in operands):
                self.kernel.step()
            arrivals = 0.0
            for q in operands:
                if self.avail[q] > arrivals:
                    arrivals = self.avail[q]
            start = compute_free if compute_free > arrivals else arrivals
            if arrivals > compute_free:
                transfer_wait += arrivals - compute_free
            duration = gate.ec_slots * top_op
            compute_free = start + duration
            compute_time += duration
        # Let trailing write-backs land so the audit sees settled state;
        # the makespan is the compute-level completion, as in PR 2.
        self.kernel.run()
        if self.recorder is not None:
            self.recorder.finish(compute_free)

        level_stats = _collect_level_stats(
            self.stack, caches, self.location, self.bottom_hits
        )
        serial_bottom = (
            sum(g.ec_slots for g in gates)
            * self.stack.levels[self.bottom].op_time_s
        )
        circuit = self.circuit
        result = HierarchyEngineResult(
            workload=circuit.name or f"circuit-{circuit.n_qubits}q",
            policy=self.policy_name,
            depth=self.stack.depth,
            total_time_s=compute_free,
            serial_bottom_time_s=serial_bottom,
            compute_time_s=compute_time,
            transfer_wait_s=transfer_wait,
            level_stats=tuple(level_stats),
            fetches=tuple(self.fetches),
            writebacks=tuple(self.writebacks),
            prefetch=self.prefetch_name,
            prefetches_issued=self.prefetches_issued,
            prefetches_used=self.prefetches_used,
        )
        conservation = (
            not self.moving
            and not self.in_flight_up
            and _check_conservation(self.stack, caches, self.location)
        )
        audit = EngineAudit(
            port_lanes=tuple(s.lanes for s in self.servers),
            port_peak_concurrency=tuple(
                s.max_concurrency() for s in self.servers
            ),
            prefetches_vetoed=self.prefetches_vetoed,
            pinned_evictions=self.pinned_evictions,
            conservation_ok=conservation,
            **_residency_audit(self.recorder),
        )
        return result, audit


# ----------------------------------------------------------------------
# retained reference (the PR 2 sequential loop, verbatim)
# ----------------------------------------------------------------------

def simulate_hierarchy_run_reference(
    stack: HierarchyStack,
    workload: Union[Circuit, str],
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
) -> HierarchyEngineResult:
    """The PR 2 sequential engine loop, retained verbatim.

    This is the executable specification the event-kernel engine's
    reservation model is pinned against: same fetch order, same
    replacement decisions, same greedy port arithmetic, field-for-field
    identical :class:`HierarchyEngineResult` (the prefetch fields stay
    at their defaults).
    """
    circuit = _resolve_workload(workload)
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    if fetch not in ("optimized", "in-order"):
        raise ValueError(
            f"unknown fetch mode {fetch!r}; use 'optimized' or 'in-order'"
        )
    if window is not None and (order is not None or fetch != "optimized"):
        raise ValueError(
            "window only applies to fetch='optimized' without a "
            "precomputed order; it would be silently ignored here"
        )
    if order is not None and fetch != "optimized":
        raise ValueError(
            "order and fetch='in-order' contradict each other; a "
            "precomputed order already fixes the schedule"
        )
    gates = circuit.gates
    top = stack.levels[0]
    level_policies = [make_policy(policy) for _ in stack.levels[:-1]]
    if order is not None:
        if sorted(order) != list(range(len(gates))):
            raise ValueError(
                "order must be a permutation of the circuit's gate indices"
            )
    elif fetch == "optimized":
        order = simulate_optimized(circuit, top.capacity, window=window).order
    else:
        order = range(len(gates))
    trace = [q for idx in order for q in gates[idx].qubits]

    bottom = stack.depth - 1
    caches = [
        PolicyCache(level.capacity, level_policy, trace)
        for level, level_policy in zip(stack.levels[:-1], level_policies)
    ]
    networks = stack.networks()
    demote = [net.demote_time_s for net in networks]
    promote = [net.promote_time_s for net in networks]
    ports: List[List[float]] = []
    for net in networks:
        lanes = max(1, round(net.effective_concurrency))
        heap = [0.0] * lanes
        heapq.heapify(heap)
        ports.append(heap)

    location = {q: bottom for q in circuit.touched_qubits()}
    fetches = [0] * len(networks)
    writebacks = [0] * len(networks)
    bottom_hits = 0

    top_op = top.op_time_s
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    pos = 0
    for idx in order:
        gate = gates[idx]
        arrivals = 0.0
        issued: set = set()
        for q in gate.qubits:
            src = location[q]
            if src == 0:
                caches[0].access_evicting(q, pos)  # guaranteed hit
                issued.add(q)
                pos += 1
                continue
            for k in range(1, src):
                caches[k].record_miss()
            if src == bottom:
                bottom_hits += 1
            else:
                caches[src].lookup_remove(q, pos)
            prev = 0.0
            for k in range(src - 1, 0, -1):
                port = heapq.heappop(ports[k])
                start = port if port > prev else prev
                prev = start + demote[k]
                fetches[k] += 1
                heapq.heappush(ports[k], prev)
            port = heapq.heappop(ports[0])
            start = port if port > prev else prev
            arrival = start + demote[0]
            fetches[0] += 1
            _, evicted = caches[0].access_evicting(q, pos, issued)
            location[q] = 0
            issued.add(q)
            busy = arrival
            if evicted is not None:
                busy = arrival + promote[0]
                writebacks[0] += 1
                location[evicted] = 1
                victim = evicted
                available = busy
                lvl = 1
                while lvl < bottom:
                    bumped = caches[lvl].insert(victim, pos)
                    if bumped is None:
                        break
                    writebacks[lvl] += 1
                    location[bumped] = lvl + 1
                    lower_port = heapq.heappop(ports[lvl])
                    start2 = (lower_port if lower_port > available
                              else available)
                    available = start2 + promote[lvl]
                    heapq.heappush(ports[lvl], available)
                    victim = bumped
                    lvl += 1
            heapq.heappush(ports[0], busy)
            if arrival > arrivals:
                arrivals = arrival
            pos += 1
        start = compute_free if compute_free > arrivals else arrivals
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        duration = gate.ec_slots * top_op
        compute_free = start + duration
        compute_time += duration

    level_stats = _collect_level_stats(stack, caches, location, bottom_hits)
    bottom_level = stack.levels[bottom]
    serial_bottom = sum(g.ec_slots for g in gates) * bottom_level.op_time_s
    return HierarchyEngineResult(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy,
        depth=stack.depth,
        total_time_s=compute_free,
        serial_bottom_time_s=serial_bottom,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        level_stats=tuple(level_stats),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
    )
