"""N-level memory-hierarchy engine (generalizing the Table 5 simulator).

The paper evaluates exactly one organization: a level-1 compute region
plus cache in front of level-2 memory, LRU replacement, Draper adder
workload.  This module is the general form: a :class:`HierarchyStack`
of N >= 2 :class:`MemoryLevel`\\ s — level 0 is the compute level, the
last level the unbounded backing store — connected by the Table 3
:class:`~repro.ecc.transfer.TransferNetwork` between each adjacent
pair, driven by any :class:`~repro.circuits.circuit.Circuit` under any
registered eviction policy (:mod:`repro.sim.policies`).

The hierarchy is *exclusive*: logical qubits cannot be copied, so each
lives at exactly one level.  A gate operand found below level 0 is
teleported up hop by hop (each hop occupies a port of that hop's
network); the insertion at level 0 may evict a resident, whose paired
write-back holds the arrival port for the promotion latency — and may
cascade further evictions down the stack, each paired with a write-back
on its own network.  Intermediate levels therefore behave as victim
caches: a qubit evicted from level 0 is one cheap hop away on its next
use instead of a full climb from memory.

With a two-level stack and the ``lru`` policy this engine reproduces
the original Table 5 simulator bit for bit (pinned by the equivalence
tests against ``simulate_l1_run_reference``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..circuits.circuit import Circuit
from ..ecc.concatenated import by_key
from ..ecc.transfer import TransferNetwork
from .cache import simulate_optimized
from .policies import PolicyCache, make_policy

#: Level-1 compute-region size used across the hierarchy studies: one
#: optimally sized superblock (36 blocks) of 9 data qubits... the paper
#: studies cache sizes against the compute-region qubit count n; we use
#: a 9-block compute region (81 qubits), the superblock granularity of
#: Figure 3, with the standard cache factor of 2.
DEFAULT_COMPUTE_QUBITS = 81

#: Standard cache-capacity multiple of the compute-region size.
DEFAULT_CACHE_FACTOR = 2.0


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy: an encoding point plus a capacity.

    ``capacity`` is the number of logical qubits the level can hold;
    ``None`` marks the unbounded backing store (the last level).  The
    access cost and the per-transfer channel requirement derive from
    the level's concatenated code.
    """

    name: str
    code_key: str
    code_level: int
    capacity: Optional[int]

    def __post_init__(self) -> None:
        by_key(self.code_key)  # validates the key
        if self.code_level < 1:
            raise ValueError("memory levels must be encoded (code_level >= 1)")
        if self.capacity is not None and self.capacity < 2:
            raise ValueError(
                "level capacity must be at least 2 logical qubits "
                "(or None for an unbounded backing store)"
            )

    @property
    def is_bounded(self) -> bool:
        return self.capacity is not None

    @property
    def op_time_s(self) -> float:
        """Sustained logical-gate period at this level's encoding."""
        return by_key(self.code_key).logical_op_time_s(self.code_level)

    @property
    def ec_time_s(self) -> float:
        return by_key(self.code_key).ec_time_s(self.code_level)

    @property
    def channels_per_transfer(self) -> int:
        """Teleport channels one logical transfer occupies (Table 3)."""
        return by_key(self.code_key).spec.teleport_channels


@dataclass(frozen=True)
class HierarchyStack:
    """An ordered stack of levels joined by transfer networks.

    ``levels[0]`` is the compute level (gates execute there),
    ``levels[-1]`` the unbounded backing store.  ``parallel_transfers``
    is either one "Par Xfer" count broadcast to every network or a
    tuple with one entry per adjacent-level network (index ``i`` joins
    level ``i+1`` to level ``i``).
    """

    levels: Tuple[MemoryLevel, ...]
    parallel_transfers: Tuple[int, ...] = (10,)

    def __post_init__(self) -> None:
        levels = tuple(self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) < 2:
            raise ValueError("a hierarchy needs at least two levels")
        for level in levels[:-1]:
            if not level.is_bounded:
                raise ValueError(
                    "only the last (backing-store) level may be unbounded"
                )
        if levels[-1].is_bounded:
            raise ValueError(
                "the last level is the backing store and must be unbounded "
                "(capacity=None)"
            )
        keys = {level.code_key for level in levels}
        if len(keys) != 1:
            raise ValueError(
                "mixed-code stacks are not supported yet (multi-backend "
                "codes are a ROADMAP open item)"
            )
        pt = self.parallel_transfers
        if isinstance(pt, int):
            pt = (pt,) * (len(levels) - 1)
        else:
            pt = tuple(pt)
            if len(pt) == 1:
                pt = pt * (len(levels) - 1)
        if len(pt) != len(levels) - 1:
            raise ValueError(
                "parallel_transfers needs one entry per adjacent-level "
                f"network ({len(levels) - 1}), got {len(pt)}"
            )
        for count in pt:
            if count < 1:
                raise ValueError("need at least one parallel transfer")
        object.__setattr__(self, "parallel_transfers", pt)

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def code_key(self) -> str:
        return self.levels[0].code_key

    def network(self, index: int) -> TransferNetwork:
        """The transfer network joining level ``index+1`` to ``index``."""
        lower, upper = self.levels[index], self.levels[index + 1]
        return TransferNetwork(
            code_key=lower.code_key,
            memory_level=upper.code_level,
            cache_level=lower.code_level,
            parallel_transfers=self.parallel_transfers[index],
        )

    def networks(self) -> Tuple[TransferNetwork, ...]:
        return tuple(self.network(i) for i in range(self.depth - 1))


def l1_capacity(compute_qubits: int, cache_factor: float) -> int:
    """Resident-set size of a compute level: region plus cache."""
    return int(round((1.0 + cache_factor) * compute_qubits))


def two_level_stack(
    code_key: str,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = DEFAULT_CACHE_FACTOR,
    parallel_transfers: Union[int, Sequence[int]] = 10,
) -> HierarchyStack:
    """The paper's design point: L1 compute+cache over L2 memory."""
    capacity = l1_capacity(compute_qubits, cache_factor)
    return HierarchyStack(
        levels=(
            MemoryLevel("L1", code_key, 1, capacity),
            MemoryLevel("memory", code_key, 2, None),
        ),
        parallel_transfers=parallel_transfers,
    )


def standard_stack(
    code_key: str,
    depth: int,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = DEFAULT_CACHE_FACTOR,
    parallel_transfers: Union[int, Sequence[int]] = 10,
) -> HierarchyStack:
    """A depth-N stack: code level ``i+1`` at stack level ``i``.

    Capacities double per level below the compute level (each tier
    trades speed for space), the deepest level is the unbounded store.
    ``depth=2`` is exactly :func:`two_level_stack`.
    """
    if depth < 2:
        raise ValueError("a hierarchy needs at least two levels")
    base = l1_capacity(compute_qubits, cache_factor)
    levels: List[MemoryLevel] = [
        MemoryLevel(f"L{i + 1}", code_key, i + 1, base * (2 ** i))
        for i in range(depth - 1)
    ]
    levels.append(MemoryLevel("memory", code_key, depth, None))
    return HierarchyStack(tuple(levels), parallel_transfers)


def three_level_stack(code_key: str, **kwargs) -> HierarchyStack:
    """Convenience: the default depth-3 organization."""
    return standard_stack(code_key, 3, **kwargs)


# ----------------------------------------------------------------------
# engine results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LevelStat:
    """Access counters of one level over a run."""

    name: str
    capacity: Optional[int]
    accesses: int
    hits: int
    misses: int
    evictions: int
    final_occupancy: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class HierarchyEngineResult:
    """Timing and traffic breakdown of one N-level simulated run."""

    workload: str
    policy: str
    depth: int
    total_time_s: float
    serial_bottom_time_s: float
    compute_time_s: float
    transfer_wait_s: float
    level_stats: Tuple[LevelStat, ...]
    fetches: Tuple[int, ...]
    writebacks: Tuple[int, ...]

    @property
    def hit_rate(self) -> float:
        """Hit rate at the compute level (the paper's cache hit rate)."""
        return self.level_stats[0].hit_rate

    @property
    def speedup(self) -> float:
        """Serial bottom-level execution time over hierarchy time."""
        return self.serial_bottom_time_s / self.total_time_s

    @property
    def transfers(self) -> int:
        """Total logical-qubit moves across every network, both ways."""
        return sum(self.fetches) + sum(self.writebacks)

    @property
    def transfer_bound_fraction(self) -> float:
        if not self.total_time_s:
            return 0.0
        return self.transfer_wait_s / self.total_time_s


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def _resolve_workload(workload: Union[Circuit, str]) -> Circuit:
    if isinstance(workload, Circuit):
        return workload
    if isinstance(workload, str):
        from ..circuits.workloads import build_workload

        return build_workload(workload)
    raise TypeError(
        "workload must be a Circuit or a registered workload name, "
        f"got {type(workload).__name__}"
    )


def simulate_hierarchy_run(
    stack: HierarchyStack,
    workload: Union[Circuit, str],
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
) -> HierarchyEngineResult:
    """Simulate ``workload`` on the compute level of ``stack``.

    Instructions issue in the optimized fetch order computed against
    the compute level's capacity (``fetch="in-order"`` keeps program
    order instead; ``window`` bounds the fetch lookahead).  Every
    finite level replaces residents with a fresh instance of the named
    eviction ``policy``.  All qubits start at the backing store.

    The fetch schedule depends only on (circuit, compute capacity,
    window), never on the eviction policy — callers comparing policies
    can compute ``simulate_optimized(circuit, capacity).order`` once
    and pass it as ``order`` to skip redundant scheduling runs.
    """
    circuit = _resolve_workload(workload)
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    if fetch not in ("optimized", "in-order"):
        raise ValueError(
            f"unknown fetch mode {fetch!r}; use 'optimized' or 'in-order'"
        )
    if window is not None and (order is not None or fetch != "optimized"):
        raise ValueError(
            "window only applies to fetch='optimized' without a "
            "precomputed order; it would be silently ignored here"
        )
    if order is not None and fetch != "optimized":
        raise ValueError(
            "order and fetch='in-order' contradict each other; a "
            "precomputed order already fixes the schedule"
        )
    gates = circuit.gates
    top = stack.levels[0]
    # One policy instance per finite level, built before the (much more
    # expensive) fetch scheduling so a bad policy name fails fast.
    level_policies = [make_policy(policy) for _ in stack.levels[:-1]]
    if order is not None:
        if sorted(order) != list(range(len(gates))):
            raise ValueError(
                "order must be a permutation of the circuit's gate indices"
            )
    elif fetch == "optimized":
        order = simulate_optimized(circuit, top.capacity, window=window).order
    else:
        order = range(len(gates))
    trace = [q for idx in order for q in gates[idx].qubits]

    bottom = stack.depth - 1
    caches = [
        PolicyCache(level.capacity, level_policy, trace)
        for level, level_policy in zip(stack.levels[:-1], level_policies)
    ]
    networks = stack.networks()
    demote = [net.demote_time_s for net in networks]
    promote = [net.promote_time_s for net in networks]
    ports: List[List[float]] = []
    for net in networks:
        lanes = max(1, round(net.effective_concurrency))
        heap = [0.0] * lanes
        heapq.heapify(heap)
        ports.append(heap)

    location = {q: bottom for q in circuit.touched_qubits()}
    fetches = [0] * len(networks)
    writebacks = [0] * len(networks)
    bottom_hits = 0

    top_op = top.op_time_s
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    pos = 0
    for idx in order:
        gate = gates[idx]
        arrivals = 0.0
        # Operands already touched for this gate are pinned: they are
        # part of the issuing gate and cannot be evicted mid-gate.
        # (LRU never picks them anyway — they sit at the MRU end — so
        # the two-level-LRU compatibility path is unaffected.)
        issued: set = set()
        for q in gate.qubits:
            src = location[q]
            if src == 0:
                caches[0].access_evicting(q, pos)  # guaranteed hit
                issued.add(q)
                pos += 1
                continue
            # The search walks down the stack: a miss at every level
            # above the qubit's, a hit where it lives.
            for k in range(1, src):
                caches[k].record_miss()
            if src == bottom:
                bottom_hits += 1
            else:
                caches[src].lookup_remove(q, pos)
            # Teleport the qubit up hop by hop; each hop occupies a
            # port of its network, and the qubit cannot start a hop
            # before finishing the previous one.
            prev = 0.0
            for k in range(src - 1, 0, -1):
                port = heapq.heappop(ports[k])
                start = port if port > prev else prev
                prev = start + demote[k]
                fetches[k] += 1
                heapq.heappush(ports[k], prev)
            port = heapq.heappop(ports[0])
            start = port if port > prev else prev
            arrival = start + demote[0]
            fetches[0] += 1
            _, evicted = caches[0].access_evicting(q, pos, issued)
            location[q] = 0
            issued.add(q)
            # The paired write-back of the evicted qubit keeps the
            # arrival port busy after the demotion completes.
            busy = arrival
            if evicted is not None:
                busy = arrival + promote[0]
                writebacks[0] += 1
                location[evicted] = 1
                victim = evicted
                available = busy
                lvl = 1
                while lvl < bottom:
                    bumped = caches[lvl].insert(victim, pos)
                    if bumped is None:
                        break
                    writebacks[lvl] += 1
                    location[bumped] = lvl + 1
                    lower_port = heapq.heappop(ports[lvl])
                    start2 = (lower_port if lower_port > available
                              else available)
                    available = start2 + promote[lvl]
                    heapq.heappush(ports[lvl], available)
                    victim = bumped
                    lvl += 1
            heapq.heappush(ports[0], busy)
            if arrival > arrivals:
                arrivals = arrival
            pos += 1
        start = compute_free if compute_free > arrivals else arrivals
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        duration = gate.ec_slots * top_op
        compute_free = start + duration
        compute_time += duration

    occupancy = [0] * stack.depth
    for level in location.values():
        occupancy[level] += 1
    level_stats: List[LevelStat] = []
    for i, cache in enumerate(caches):
        level = stack.levels[i]
        s = cache.stats
        level_stats.append(LevelStat(
            name=level.name,
            capacity=level.capacity,
            accesses=s.accesses,
            hits=s.hits,
            misses=s.misses,
            evictions=s.evictions,
            final_occupancy=occupancy[i],
        ))
    bottom_level = stack.levels[bottom]
    level_stats.append(LevelStat(
        name=bottom_level.name,
        capacity=None,
        accesses=bottom_hits,
        hits=bottom_hits,
        misses=0,
        evictions=0,
        final_occupancy=occupancy[bottom],
    ))
    serial_bottom = sum(g.ec_slots for g in gates) * bottom_level.op_time_s
    return HierarchyEngineResult(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy,
        depth=stack.depth,
        total_time_s=compute_free,
        serial_bottom_time_s=serial_bottom,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        level_stats=tuple(level_stats),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
    )
