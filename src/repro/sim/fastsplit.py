"""Flattened split-transaction engine for the shipped policy set.

:class:`~repro.sim.levels._SplitTransactionRun` is the retained
reference for the pipelined transfer model: an event kernel driving
closure-based continuation chains (``_Trigger``/``_Fetch`` objects, one
closure per hop and per write-back), ``PolicyCache`` objects per level,
and a prefetch walk that re-slices the operand trace at every gate.
This module is the compiled-down replica that
:func:`~repro.sim.levels.simulate_hierarchy_run` actually runs:

* the event heap holds int-coded ``(time, seq, code, request)`` tuples
  — no callback objects — and port lanes are slot-indexed idle counters
  with one ``(priority, seq, request)`` heap per network;
* fetches, write-backs and transfer requests are flat list records;
  the per-qubit movement queues hold those records directly, so a
  completed movement launches its successor without allocating a
  closure;
* replacement state is the specialized dict-per-level machinery of
  :mod:`repro.sim.replay` (insertion-ordered dicts, a shared
  incremental score window, int-keyed lazy Belady heaps) extended with
  the exclusion sets and non-destructive victim peeks prefetching
  needs;
* the prefetch walk is slice-free (an epoch-stamped array replaces the
  per-call ``seen`` set), lazy for ``next_k`` (the reference walk has
  no side effects, so candidates the budget never reaches are never
  scanned), and the exactness veto reads next uses from an
  incrementally-maintained array — a candidate's next use is its own
  walk position — instead of bisecting a ``TraceIndex``.

Every kernel-schedule and queue-insertion call site mirrors the
reference one-to-one, so the (time, seq) event order — and therefore
every float in the result — is bit-identical.  The equivalence suite
pins this across every (depth, policy, workload, prefetch) cell.

:func:`supports_fast_split` gates dispatch: unknown (user-registered)
policies or prefetchers fall back to the reference engine, which drives
the real registry objects.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set, Tuple

from ..circuits.circuit import Circuit
from .levels import HierarchyEngineResult, HierarchyStack, LevelStat
from .replay import _scan_program

__all__ = ["simulate_split_fast", "supports_fast_split"]

#: Dispatch priorities, mirroring ``repro.sim.levels``.
_DEMAND, _WRITEBACK, _PREFETCH = 0, 1, 2
_PIN_MARGIN = 4

#: The shipped prefetcher parameters (``NextKPrefetcher()`` defaults).
_PREFETCH_K = 64
_PREFETCH_HORIZON = 512

#: Request lifecycle states (``TransferRequest.state`` equivalents).
_SCHEDULED, _QUEUED, _ACTIVE, _DONE, _WITHDRAWN = 0, 1, 2, 3, 4

#: Event heap opcodes (``PortServer._enqueue`` / ``_complete``).
_EV_ENQUEUE, _EV_COMPLETE = 0, 1

#: Request kinds: a fetch hop or a paired write-back.
_K_HOP, _K_WB = 0, 1

# Flat record layouts (lists beat attribute access in the hot loop):
#   request: [ready, duration, priority, state, kind, owner, server]
#   fetch:   [0, qubit, priority, pending_req, server_k, issue_t, src,
#             first_wb]
#   wb:      [1, net_k, victim, settle, trigger_time, next_wb]
# A fetch's arrival "trigger" is the k==0 hop completion; a write-back
# chain is linked through ``next_wb``, each element firing its
# successor — the reference's ``_Trigger`` subscriptions, flattened
# (each trigger ever has at most one subscriber).

_FAST_POLICIES = frozenset({"belady", "fifo", "lru", "score"})
_FAST_PREFETCHERS = frozenset({"distance", "next_k", "none"})

_SCORE_WINDOW = 256  # ScorePolicy's default lookahead


def supports_fast_split(policy: str, prefetch: str) -> bool:
    """True when the flattened engine covers (policy, prefetch).

    Only the shipped policies and prefetchers are specialized; any
    user-registered extension falls back to the reference engine, which
    drives the real registry objects.
    """
    return policy in _FAST_POLICIES and prefetch in _FAST_PREFETCHERS


def simulate_split_fast(
    stack: HierarchyStack,
    circuit: Circuit,
    order: Sequence[int],
    policy: str,
    prefetch: str,
    recorder=None,
) -> HierarchyEngineResult:
    """One split-transaction engine run, flattened.

    Arguments mirror the reference ``_SplitTransactionRun`` inputs
    (``order`` already resolved/validated by the caller).  Returns the
    :class:`~repro.sim.levels.HierarchyEngineResult` only — callers
    needing the :class:`~repro.sim.levels.EngineAudit` use
    :func:`~repro.sim.levels.simulate_hierarchy_run_audited`, which
    always runs the reference.

    ``recorder`` (a :class:`~repro.sim.residency.ResidencyRecorder`)
    observes completed hops at their completion events — the same
    ``end - duration`` span arithmetic as the reference engine, so the
    recorded intervals are bit-identical across the two dialects.
    Recording never touches the engine's floats.
    """
    program = _scan_program(circuit, order)
    trace = program.trace
    n = len(trace)
    n_qubits = circuit.n_qubits
    bottom = stack.depth - 1
    caps = [level.capacity for level in stack.levels[:-1]]
    for cap in caps:
        if cap < 2:
            raise ValueError(
                "cache capacity must be at least 2 (a two-operand gate "
                "needs both operands resident at once)"
            )
    n_finite = len(caps)
    networks = stack.networks()
    n_nets = len(networks)
    demote = [net.demote_time_s for net in networks]
    promote = [net.promote_time_s for net in networks]

    heappush = heapq.heappush
    heappop = heapq.heappop
    heapify = heapq.heapify

    # --- event kernel + port servers ---------------------------------
    events: List[tuple] = []
    ev_seq = 0
    now = 0.0
    idle = [max(1, round(net.effective_concurrency)) for net in networks]
    port_queues: List[List[tuple]] = [[] for _ in range(n_nets)]
    qseq = [0] * n_nets

    # --- replacement state (as in repro.sim.replay) ------------------
    orders_: List[dict] = [{} for _ in range(n_finite)]
    d0 = orders_[0]
    cap0 = caps[0]
    refresh_on_hit = policy != "fifo"
    track_nu = policy == "belady"
    keybase: Sequence[int] = ()
    qkb: List[int] = []
    cur_key: List[int] = []
    bheaps: List[List[Tuple[int, int]]] = [[] for _ in range(n_finite)]
    bh0 = bheaps[0]
    bseq = 0
    span = n * max(stack.depth, 64) + 1
    if track_nu:
        keybase = program.belady_keys(span)
        qkb = [0] * n_qubits
        cur_key = [0] * n_qubits
    wpos = -1
    counts: List[int] = []
    if policy == "score":
        counts = [0] * n_qubits
        for q in trace[:_SCORE_WINDOW]:
            counts[q] += 1

    def victim_recency(i, vpos, excl):
        d = orders_[i]
        for q in d:
            if q not in excl:
                return q
        return next(iter(d))  # unsatisfiable pin: fall back

    def victim_score(i, vpos, excl):
        nonlocal wpos
        while wpos < vpos:
            wpos += 1
            counts[trace[wpos]] -= 1
            entering = wpos + _SCORE_WINDOW
            if entering < n:
                counts[trace[entering]] += 1
        best = None
        best_score = None
        for q in orders_[i]:  # LRU-first iteration breaks ties
            if q in excl:
                continue
            score = counts[q]
            if best_score is None or score < best_score:
                best, best_score = q, score
                if score == 0:
                    break
        if best is None:
            return next(iter(orders_[i]))
        return best

    def victim_belady(i, vpos, excl):
        # Non-destructive peek over the lazy heap: the winning entry is
        # pushed back (prefetch vetoes may leave the victim resident);
        # an actual eviction stales it through the residency check.
        h = bheaps[i]
        d = orders_[i]
        if len(h) > (len(d) << 2) + 64:
            h[:] = [e for e in h if cur_key[e[1]] == e[0] and e[1] in d]
            heapify(h)
        stash = None
        while h:
            key, q = heappop(h)
            if q not in d or cur_key[q] != key:
                continue  # stale: the qubit moved since this push
            if q in excl:
                if stash is None:
                    stash = []
                stash.append((key, q))
                continue
            heappush(h, (key, q))
            if stash:
                for e in stash:
                    heappush(h, e)
            return q
        if stash:  # unsatisfiable pin: fall back like the reference
            for e in stash:
                heappush(h, e)
        return next(iter(d))

    select_victim = {
        "lru": victim_recency,
        "fifo": victim_recency,
        "score": victim_score,
        "belady": victim_belady,
    }[policy]

    # --- run state ----------------------------------------------------
    location = [-1] * n_qubits
    avail = [0.0] * n_qubits
    for q in program.touched:
        location[q] = bottom
    if recorder is not None:
        recorder.begin({q: bottom for q in program.touched})
    rec = None if recorder is None else recorder.transfer
    moving: dict = {}
    in_flight_up: dict = {}
    pinned: Set[int] = set()
    fetches = [0] * n_nets
    writebacks = [0] * n_nets
    acc = [0] * n_finite
    hit = [0] * n_finite
    mis = [0] * n_finite
    evc = [0] * n_finite
    bottom_hits = 0
    prefetches_issued = 0
    prefetches_used = 0
    pos = 0

    prefetching = prefetch != "none"
    next_pos: Sequence[int] = ()
    nu_now: List[int] = []
    stamp: List[int] = []
    epoch = 0
    if prefetching:
        next_pos = program.next_pos()
        # nu_now[q]: first occurrence of q at/after the scan pointer —
        # the reference's TraceIndex.next_use(q, pos - 1), maintained
        # incrementally (one store per operand) instead of bisected.
        nu_now = [n] * n_qubits
        for p in range(n - 1, -1, -1):
            nu_now[trace[p]] = p
        stamp = [-1] * n_qubits

    # --- the flattened event machinery --------------------------------
    def _request(server, ready, duration, priority, kind, owner):
        nonlocal ev_seq
        if ready < now:
            ready = now
        req = [ready, duration, priority, _SCHEDULED, kind, owner, server]
        ev_seq += 1
        heappush(events, (ready, ev_seq, _EV_ENQUEUE, req))
        return req

    def _hop(fetch, k, ready):
        fetch[4] = k
        fetch[3] = _request(k, ready, demote[k], fetch[2], _K_HOP, fetch)

    def _wb_fired(wb, t):
        """The write-back's trigger (arrival or previous cascade hop)."""
        wb[4] = t
        settle = wb[3]
        if settle is not None:
            k = wb[1]
            _request(k, t if t > settle else settle, promote[k],
                     _WRITEBACK, _K_WB, wb)

    def _launch(rec, settle):
        """A movement reached the front of its qubit's queue."""
        if rec[0]:  # write-back
            rec[3] = settle
            t = rec[4]
            if t is not None:
                k = rec[1]
                _request(k, t if t > settle else settle, promote[k],
                         _WRITEBACK, _K_WB, rec)
        else:  # fetch
            issue_t = rec[5]
            _hop(rec, rec[6] - 1, issue_t if issue_t > settle else settle)

    def _movement_done(q, t):
        avail[q] = t
        queue = moving[q]
        if queue:
            _launch(queue.pop(0), t)
        else:
            del moving[q]

    def _enqueue_move(q, rec):
        waiting = moving.get(q)
        if waiting is None:
            moving[q] = []
            _launch(rec, avail[q])
        else:
            waiting.append(rec)

    def _launch_fetch(q, src, issue_t, priority, chain):
        fetch = [0, q, priority, None, -1, issue_t, src, None]
        in_flight_up[q] = fetch
        prev = None
        for net_k, victim in chain:
            wb = [1, net_k, victim, None, None, None]
            if prev is None:
                fetch[7] = wb
            else:
                prev[5] = wb
            prev = wb
            _enqueue_move(victim, wb)
        _enqueue_move(q, fetch)

    def _upgrade(fetch):
        """Promote a queued prefetch transfer to demand priority."""
        fetch[2] = _DEMAND
        req = fetch[3]
        if req is None:
            return
        state = req[3]
        if state == _SCHEDULED or state == _QUEUED:
            req[3] = _WITHDRAWN
            fetch[3] = _request(req[6], req[0], req[1], _DEMAND,
                                _K_HOP, fetch)

    def _dispatch(k):
        nonlocal ev_seq
        queue = port_queues[k]
        while idle[k] and queue:
            _, _, req = heappop(queue)
            if req[3] == _WITHDRAWN:
                continue
            req[3] = _ACTIVE
            idle[k] -= 1
            ev_seq += 1
            heappush(events, (now + req[1], ev_seq, _EV_COMPLETE, req))

    def _step():
        nonlocal now
        if not events:
            raise RuntimeError(
                "event heap is empty but the simulation still expects "
                "progress — a transfer chain was dropped"
            )
        t, _, code, req = heappop(events)
        now = t
        k = req[6]
        if code == _EV_ENQUEUE:
            if req[3] == _WITHDRAWN:
                return
            req[3] = _QUEUED
            qseq[k] += 1
            heappush(port_queues[k], (req[2], qseq[k], req))
            _dispatch(k)
            return
        req[3] = _DONE
        idle[k] += 1
        owner = req[5]
        if req[4] == _K_HOP:
            fetches[k] += 1
            if rec is not None:
                rec(owner[1], k + 1, k, t - demote[k], t, k)
            owner[3] = None
            if k == 0:
                q = owner[1]
                del in_flight_up[q]
                _movement_done(q, t)
                wb = owner[7]  # arrival fires the write-back chain
                if wb is not None:
                    _wb_fired(wb, t)
            else:
                _hop(owner, k - 1, t)
        else:
            writebacks[k] += 1
            if rec is not None:
                rec(owner[2], k, k + 1, t - promote[k], t, k)
            _movement_done(owner[2], t)
            nxt = owner[5]
            if nxt is not None:
                _wb_fired(nxt, t)
        _dispatch(k)

    # --- scan-order cache transitions ---------------------------------
    def _evict_cascade(evicted):
        nonlocal bseq
        if evicted is None:
            return ()
        if evicted in pinned or evicted in in_flight_up:
            pinned.discard(evicted)
        chain = [(0, evicted)]
        location[evicted] = 1
        victim = evicted
        lvl = 1
        while lvl < bottom:
            d = orders_[lvl]
            bumped = None
            if len(d) >= caps[lvl]:
                bumped = select_victim(lvl, pos, ())
                del d[bumped]
                evc[lvl] += 1
            d[victim] = None
            if track_nu:
                # The victim's cached next use carries down unchanged.
                key = bseq + qkb[victim]
                cur_key[victim] = key
                heappush(bheaps[lvl], (key, victim))
                bseq += 1
            if bumped is None:
                break
            chain.append((lvl, bumped))
            location[bumped] = lvl + 1
            victim = bumped
            lvl += 1
        return chain

    def _issue_prefetches(issue_t, issued):
        nonlocal bseq, epoch, prefetches_issued
        if not prefetching:
            return
        budget = cap0 - _PIN_MARGIN - len(pinned)
        if budget <= 0:
            return
        epoch += 1
        stamp_epoch = epoch
        start = pos
        end = start + _PREFETCH_HORIZON
        if end > n:
            end = n
        if track_nu and start < n:
            # The cached Belady keys hold each resident's next use
            # *after its last touch* — exact for the reference's
            # next_use(q, pos) except for the one qubit whose next
            # occurrence is exactly ``pos`` (the next gate's first
            # operand): the reference scores it by the occurrence
            # *after* that.  Push the corrected key for this round.
            q0 = trace[start]
            lvl0 = location[q0]
            if 0 <= lvl0 < n_finite:
                # Keep q0's original push sequence so NEVER ties still
                # break by recency order, not by correction time.
                seq0 = cur_key[q0] - qkb[q0]
                base = -next_pos[start] * span
                qkb[q0] = base
                key = seq0 + base
                cur_key[q0] = key
                heappush(bheaps[lvl0], (key, q0))
        # Qubits this round demoted *out of* the compute level: the
        # reference walks with the round-start residency snapshot, so a
        # freshly-demoted victim is not a candidate until next gate.
        round_demoted: Optional[Set[int]] = None
        if prefetch == "next_k":
            # Lazy walk: the reference materializes up to k candidates,
            # but scanning is side-effect-free and the pin budget stops
            # far short of k — candidates past the break never cost.
            def _candidates():
                found = 0
                for p in range(start, end):
                    cq = trace[p]
                    if stamp[cq] == stamp_epoch:
                        continue
                    stamp[cq] = stamp_epoch
                    if location[cq] and (
                        round_demoted is None or cq not in round_demoted
                    ):
                        yield cq, p
                        found += 1
                        if found == _PREFETCH_K:
                            return

            candidates = _candidates()
        else:  # distance: the full walk is ranked before issue
            found_list = []
            for p in range(start, end):
                cq = trace[p]
                if stamp[cq] == stamp_epoch:
                    continue
                stamp[cq] = stamp_epoch
                if location[cq]:
                    found_list.append((-location[cq], p, cq))
                    if len(found_list) == _PREFETCH_K:
                        break
            found_list.sort()  # deepest first, trace order within
            candidates = iter([(cq, p) for _, p, cq in found_list])
        exclusions: Optional[Set[int]] = None
        victim: Optional[int] = None
        victim_next = 0
        for cq, cand_next in candidates:
            if budget <= 0:
                break
            src = location[cq]
            if src == 0 or cq in moving:
                continue
            if exclusions is None:
                exclusions = set(pinned)
                exclusions.update(in_flight_up)
                exclusions.update(issued)
                victim = None
                if len(d0) >= cap0:
                    victim = select_victim(0, pos, exclusions)
                    if victim is not None and victim in exclusions:
                        break  # unsatisfiable pin: no victim this gate
                    if victim is not None:
                        victim_next = nu_now[victim]
            if victim is not None and victim_next <= cand_next:
                continue  # exactness veto
            if src != bottom:
                del orders_[src][cq]  # quiet pull: no counters
            evicted = victim
            if evicted is not None:
                del d0[evicted]
                evc[0] += 1
            d0[cq] = None
            if track_nu:
                # The candidate's next use *is* its walk position.
                base = -cand_next * span
                qkb[cq] = base
                key = bseq + base
                cur_key[cq] = key
                heappush(bh0, (key, cq))
                bseq += 1
            location[cq] = 0
            pinned.add(cq)
            chain = _evict_cascade(evicted)
            if evicted is not None:
                if round_demoted is None:
                    round_demoted = {evicted}
                else:
                    round_demoted.add(evicted)
            _launch_fetch(cq, src, issue_t, _PREFETCH, chain)
            prefetches_issued += 1
            budget -= 1
            exclusions = None  # state changed: recompute next round

    # --- the gate loop -------------------------------------------------
    top_op = stack.levels[0].op_time_s
    gate_ec = program.gate_ec
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    for gi, qubits in enumerate(program.gate_qubits):
        issue_t = compute_free
        issued: Set[int] = set()
        for q in qubits:
            src = location[q]
            if src == 0:
                # Guaranteed hit at the compute level.
                acc[0] += 1
                hit[0] += 1
                if refresh_on_hit:
                    del d0[q]
                    d0[q] = None
                if track_nu:
                    kb = keybase[pos]
                    qkb[q] = kb
                    key = bseq + kb
                    cur_key[q] = key
                    heappush(bh0, (key, q))
                    bseq += 1
                if q in pinned:
                    pinned.discard(q)
                    prefetches_used += 1
                fetch = in_flight_up.get(q)
                if fetch is not None and fetch[2]:
                    _upgrade(fetch)
            else:
                for k in range(1, src):
                    acc[k] += 1
                    mis[k] += 1
                if src == bottom:
                    bottom_hits += 1
                else:
                    acc[src] += 1
                    hit[src] += 1
                    del orders_[src][q]
                acc[0] += 1
                mis[0] += 1
                exclusions = set(pinned)
                exclusions.update(in_flight_up)
                exclusions.update(issued)
                evicted = None
                if len(d0) >= cap0:
                    evicted = select_victim(0, pos, exclusions)
                    del d0[evicted]
                    evc[0] += 1
                d0[q] = None
                if track_nu:
                    kb = keybase[pos]
                    qkb[q] = kb
                    key = bseq + kb
                    cur_key[q] = key
                    heappush(bh0, (key, q))
                    bseq += 1
                location[q] = 0
                chain = _evict_cascade(evicted)
                _launch_fetch(q, src, issue_t, _DEMAND, chain)
            issued.add(q)
            if prefetching:
                nu_now[q] = next_pos[pos]
            pos += 1
        _issue_prefetches(issue_t, issued)
        while True:
            for q in qubits:
                if q in moving:
                    break
            else:
                break
            _step()
        arrivals = 0.0
        for q in qubits:
            a = avail[q]
            if a > arrivals:
                arrivals = a
        start_t = compute_free if compute_free > arrivals else arrivals
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        duration = gate_ec[gi] * top_op
        compute_free = start_t + duration
        compute_time += duration
    # Let trailing write-backs land, as in the reference (the makespan
    # is the compute-level completion time).
    while events:
        _step()
    if recorder is not None:
        recorder.finish(compute_free)

    # --- result --------------------------------------------------------
    occupancy = [0] * stack.depth
    for q in program.touched:
        occupancy[location[q]] += 1
    level_stats = [
        LevelStat(
            name=stack.levels[i].name,
            capacity=caps[i],
            accesses=acc[i],
            hits=hit[i],
            misses=mis[i],
            evictions=evc[i],
            final_occupancy=occupancy[i],
        )
        for i in range(n_finite)
    ]
    bottom_level = stack.levels[-1]
    level_stats.append(LevelStat(
        name=bottom_level.name,
        capacity=None,
        accesses=bottom_hits,
        hits=bottom_hits,
        misses=0,
        evictions=0,
        final_occupancy=occupancy[-1],
    ))
    serial_bottom = program.total_ec * stack.levels[bottom].op_time_s
    return HierarchyEngineResult(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy,
        depth=stack.depth,
        total_time_s=compute_free,
        serial_bottom_time_s=serial_bottom,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        level_stats=tuple(level_stats),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
        prefetch=prefetch,
        prefetches_issued=prefetches_issued,
        prefetches_used=prefetches_used,
    )
