"""Discrete-event kernel for the memory-hierarchy engine.

The PR 2 engine kept time as ad-hoc per-run accounting: a float heap of
port free-times per network, advanced inline by the gate loop.  That
model reserves a port *greedily at scan time* — when a transfer's
operand is not yet available, the chosen lane is pushed to the far
future and the idle window between its old free-time and the transfer's
actual start is lost forever.  On a deep stack that loss compounds: the
slow bottom network's backlog leaks into every faster network above it.

This module is the reusable replacement: an :class:`EventKernel` (a
time-ordered event heap) plus :class:`PortServer`, the transfer ports
of one network modeled as a resource.  A ``PortServer`` speaks two
dialects:

* **Greedy reservations** (:meth:`PortServer.reserve`) — exactly the
  PR 2 arithmetic (pop the earliest-free lane, start no earlier than
  ``ready``, hold through ``duration + hold``), kept so the engine's
  compatibility path stays bit-identical to the retained reference
  loop.  Reservations taken through :meth:`PortServer.reserve_handle`
  are cancellable: :meth:`Reservation.cancel` restores the lane's prior
  free-time.
* **Split-transaction requests** (:meth:`PortServer.request`) — a
  transfer occupies a port only while it is actually in flight.
  Requests queue from their ``ready`` time and a freed port picks the
  highest-priority ready request, so short transfers backfill the idle
  windows the greedy model wastes.  Queued requests can be withdrawn
  (:meth:`PortServer.withdraw`) and re-issued, e.g. to upgrade an
  in-queue prefetch to demand priority.

The kernel is deterministic: ties in time break by schedule order, ties
in priority by enqueue order, and no call reads a wall clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "EventKernel",
    "PortServer",
    "Reservation",
    "TransferRequest",
]


class EventKernel:
    """A time-ordered event heap with a monotonic clock.

    ``schedule(time, fn, *args)`` enqueues a callback; :meth:`step` pops
    the earliest event, advances :attr:`now` to its time, and runs it.
    Events at equal times run in schedule order (the heap tie-breaks on
    a monotone sequence number), which keeps every simulation built on
    the kernel deterministic.
    """

    __slots__ = ("now", "_heap", "_seq")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    def schedule(self, time: float, fn: Callable, *args) -> None:
        """Enqueue ``fn(*args)`` to run at ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event at t={time} in the past "
                f"(now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def step(self) -> float:
        """Run the earliest pending event; returns its time."""
        if not self._heap:
            raise RuntimeError(
                "event heap is empty but the simulation still expects "
                "progress — a transfer chain was dropped"
            )
        time, _, fn, args = heapq.heappop(self._heap)
        self.now = time
        fn(*args)
        return time

    def run(self) -> None:
        """Drain every pending event."""
        while self._heap:
            self.step()


@dataclass
class Reservation:
    """A cancellable greedy port reservation.

    ``start`` is when the transfer begins, ``busy_until`` when the lane
    frees (start + duration + hold).  :meth:`cancel` hands the lane's
    prior free-time back to the server; cancelling twice is a no-op.
    Only the *most recent* live reservation on its lane can be
    cancelled — a later reservation's start was computed from this
    one's hold, so unwinding out of order would overbook the lane, and
    the server refuses with ``ValueError``.  Unwinding a chain in LIFO
    order works: once the later reservation is cancelled, the earlier
    one becomes the lane's most recent again.
    """

    server: "PortServer"
    lane: int
    version: int
    prev_version: int
    start: float
    busy_until: float
    restore: float
    cancelled: bool = False

    def cancel(self) -> None:
        self.server._cancel(self)


@dataclass
class TransferRequest:
    """One queued split-transaction transfer.

    Lifecycle: ``scheduled`` (waiting for its ready time) -> ``queued``
    (eligible, waiting for a port) -> ``active`` -> ``done``; a request
    withdrawn before dispatch ends as ``withdrawn`` and never runs.
    """

    ready: float
    duration: float
    on_complete: Callable[[float], None]
    priority: int = 0
    label: str = ""
    state: str = "scheduled"


class PortServer:
    """The parallel transfer ports of one network, as a resource.

    ``lanes`` is the network's effective concurrency (the paper's "Par
    Xfer" divided by the code's channels-per-transfer).  The greedy
    dialect (:meth:`reserve`) mirrors the PR 2 float-heap arithmetic
    exactly; the split-transaction dialect (:meth:`request`) needs a
    ``kernel`` and dispatches queued transfers as ports free up.  With
    ``record=True`` every busy interval is kept for occupancy audits.
    """

    def __init__(
        self,
        lanes: int,
        kernel: Optional[EventKernel] = None,
        name: str = "",
        record: bool = False,
    ) -> None:
        if lanes < 1:
            raise ValueError("a port server needs at least one lane")
        self.lanes = lanes
        self.kernel = kernel
        self.name = name
        self.record = record
        self.intervals: List[Tuple[float, float]] = []
        # greedy dialect: a heap of (free-time, lane, version) entries.
        # The float sequence popped is exactly the PR 2 plain-float
        # heap's (the heap always yields the minimum free-time; lane
        # and version only break ties between equal floats, which are
        # interchangeable).  A cancellation bumps the lane's version,
        # so its superseded entry is dropped exactly when popped.
        self._free: List[Tuple[float, int, int]] = [
            (0.0, lane, 0) for lane in range(lanes)
        ]
        self._lane_free: List[float] = [0.0] * lanes
        # The lane's currently-valid entry version; cancellation
        # restores the prior version, so versions are drawn from a
        # separate monotone counter and never reused by later pushes.
        self._lane_version: List[int] = [0] * lanes
        self._lane_seq: List[int] = [0] * lanes
        # split-transaction dialect
        self._idle = lanes
        self._queue: List[tuple] = []
        self._seq = 0
        self.active = 0
        self.max_active = 0
        self.dispatched = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # greedy reservations (PR 2-compatible arithmetic)
    # ------------------------------------------------------------------
    def _pop_free(self) -> Tuple[float, int]:
        free, lane, version = heapq.heappop(self._free)
        while version != self._lane_version[lane]:  # superseded by cancel
            free, lane, version = heapq.heappop(self._free)
        return free, lane

    def lane_free_times(self) -> List[float]:
        """The current free-time of every lane, sorted."""
        return sorted(self._lane_free)

    def reserve(self, ready: float, duration: float, hold: float = 0.0) -> float:
        """Greedily reserve the earliest-free lane; returns the start.

        The lane is held through ``start + duration + hold`` — ``hold``
        models work that keeps the port busy after the transfer itself
        (PR 2's paired write-back).  Bit-identical to popping/pushing
        the PR 2 float heap.
        """
        free, lane = self._pop_free()
        start = free if free > ready else ready
        busy = start + duration + hold
        self._push_lane(lane, busy, self._lane_seq[lane] + 1)
        if self.record:
            self.intervals.append((start, busy))
        return start

    def reserve_handle(
        self, ready: float, duration: float, hold: float = 0.0
    ) -> Reservation:
        """Like :meth:`reserve` but returns a cancellable handle."""
        free, lane = self._pop_free()
        prev_version = self._lane_version[lane]
        start = free if free > ready else ready
        busy = start + duration + hold
        version = self._push_lane(lane, busy, self._lane_seq[lane] + 1)
        if self.record:
            self.intervals.append((start, busy))
        return Reservation(self, lane, version, prev_version, start, busy,
                           free)

    def _push_lane(self, lane: int, free: float, version: int) -> int:
        if version > self._lane_seq[lane]:
            self._lane_seq[lane] = version
        self._lane_version[lane] = version
        self._lane_free[lane] = free
        heapq.heappush(self._free, (free, lane, version))
        return version

    def _cancel(self, reservation: Reservation) -> None:
        if reservation.cancelled:
            return
        if self._lane_version[reservation.lane] != reservation.version:
            raise ValueError(
                "only the most recent reservation on a lane can be "
                "cancelled — a later reservation already built on this "
                "one's hold"
            )
        reservation.cancelled = True
        # Hand back the lane's prior free-time under its prior version:
        # the cancelled entry goes stale, and the reservation that
        # preceded this one becomes the lane's most recent again.
        self._push_lane(reservation.lane, reservation.restore,
                        reservation.prev_version)
        if self.record:
            interval = (reservation.start, reservation.busy_until)
            for i in range(len(self.intervals) - 1, -1, -1):
                if self.intervals[i] == interval:
                    del self.intervals[i]
                    break

    # ------------------------------------------------------------------
    # split-transaction requests
    # ------------------------------------------------------------------
    def request(
        self,
        ready: float,
        duration: float,
        on_complete: Callable[[float], None],
        priority: int = 0,
        label: str = "",
    ) -> TransferRequest:
        """Queue a transfer that may start any time from ``ready``.

        The port is occupied only for ``duration``; ``on_complete(end)``
        fires when the transfer finishes.  Lower ``priority`` values
        dispatch first among simultaneously-ready requests.
        """
        if self.kernel is None:
            raise RuntimeError(
                "split-transaction requests need a PortServer bound to "
                "an EventKernel"
            )
        now = self.kernel.now
        if ready < now:
            ready = now
        req = TransferRequest(ready, duration, on_complete, priority, label)
        self.kernel.schedule(ready, self._enqueue, req)
        return req

    def withdraw(self, request: TransferRequest) -> bool:
        """Remove a not-yet-dispatched request; False once it started."""
        if request.state in ("scheduled", "queued"):
            request.state = "withdrawn"
            return True
        return False

    def _enqueue(self, req: TransferRequest) -> None:
        if req.state == "withdrawn":
            return
        req.state = "queued"
        self._seq += 1
        heapq.heappush(self._queue, (req.priority, self._seq, req))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._idle and self._queue:
            _, _, req = heapq.heappop(self._queue)
            if req.state == "withdrawn":
                continue
            req.state = "active"
            self._idle -= 1
            self.active += 1
            if self.active > self.max_active:
                self.max_active = self.active
            self.dispatched += 1
            start = self.kernel.now
            end = start + req.duration
            if self.record:
                self.intervals.append((start, end))
            self.kernel.schedule(end, self._complete, req)

    def _complete(self, req: TransferRequest) -> None:
        req.state = "done"
        self._idle += 1
        self.active -= 1
        self.completed += 1
        req.on_complete(self.kernel.now)
        self._dispatch()

    # ------------------------------------------------------------------
    # audit
    # ------------------------------------------------------------------
    def busy_seconds(self) -> float:
        """Total recorded port-seconds (record=True only)."""
        return sum(end - start for start, end in self.intervals)

    def max_concurrency(self) -> int:
        """Peak overlap of recorded intervals (record=True only).

        Computed from the interval log itself, independently of the
        dispatch bookkeeping, so tests can cross-check that occupancy
        never exceeded ``lanes``.
        """
        events: List[Tuple[float, int]] = []
        for start, end in self.intervals:
            events.append((start, 1))
            events.append((end, -1))
        # Ends sort before starts at the same instant: a transfer
        # beginning exactly when another finishes reuses its lane.
        events.sort(key=lambda e: (e[0], e[1]))
        peak = current = 0
        for _, delta in events:
            current += delta
            if current > peak:
                peak = current
        return peak
