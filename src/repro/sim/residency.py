"""Noise-aware residency: per-qubit intervals + logical-error accrual.

The engine prices *time*; this module prices *fidelity* on top of it.
Every engine dialect (the reservation model, the split-transaction
reference, and the flattened :mod:`repro.sim.fastsplit` engine) accepts
an optional :class:`ResidencyRecorder` that observes each qubit's
movements: where it starts, every hop it takes across a boundary
network, and when the run's horizon closes.  :meth:`ResidencyRecorder.
finish` turns that movement log into per-qubit *residency intervals* —
an exact partition of ``[0, horizon]`` into level-tagged parked spans
and network-tagged in-flight spans — and :func:`accrue_residency`
integrates those intervals against per-level error rates derived from
each level's concatenated code, calibrated by the ECC Monte Carlo
(:mod:`repro.ecc.montecarlo`).  The result is a ``(makespan_s,
logical_error)`` pair with a per-level breakdown
(:class:`FidelityResult`), surfaced in one call through
:func:`simulate_fidelity_run`.

Interval semantics per dialect
------------------------------

* **Split-transaction / fastsplit**: each qubit's transfers complete in
  per-qubit causal order (the movement queues serialize them), so the
  recorded intervals are exact and ``clamped == 0``.
* **Reservation model**: ports are greedily reserved at *scan* time, so
  a later movement of a qubit can be booked at an earlier port slot
  than its previous arrival.  The recorder monotonizes by
  clamp-truncation — the inverted span is charged to the level the
  qubit was parked at, the transit span shrinks (possibly to zero), and
  ``clamped`` counts the events.  The partition invariant holds exactly
  in every dialect; clamping only ever *under*-charges a little transit
  time in the reservation dialect's scan-time approximation.

Noise derivation
----------------

``code_noise`` runs the batched Monte Carlo decoder at a calibration
physical rate (:data:`P_CAL`), scales the Gottesman Equation 1 analytic
failure rate by the measured-vs-analytic ratio at level 1, and applies
that scale at the level of interest — an MC-calibrated analytic model,
deterministic for a fixed ``(trials, seed)``.  A level's coherence time
is one EC period over its per-cycle error rate; an in-flight qubit on
network ``k`` is charged at the *worse* endpoint's per-second rate (the
shallower level — deeper levels are doubly-exponentially more
reliable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ecc.concatenated import by_key
from ..ecc.montecarlo import logical_error_rate

#: Calibration physical error rate of the Monte Carlo scale factor:
#: large enough that 2000 trials resolve a nonzero failure count for
#: both shipped codes, small enough to sit in the ``c * p**2`` regime.
P_CAL = 0.01

#: Default Monte Carlo calibration budget (trials, seed).  The seed is
#: chosen so both shipped codes measure a nonzero failure count at
#: :data:`P_CAL` — the scale factor is then data, not the fallback.
FIDELITY_TRIALS = 2000
FIDELITY_SEED = 2006

#: Interval kinds.
LEVEL, TRANSIT = "level", "transit"


@dataclass(frozen=True)
class Interval:
    """One span of a qubit's residency timeline.

    ``kind == "level"`` parks the qubit at hierarchy level ``place``;
    ``kind == "transit"`` has it in flight on boundary network
    ``place`` (which joins levels ``place`` and ``place + 1``).
    """

    start: float
    end: float
    kind: str
    place: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class ResidencyRecorder:
    """Collects per-qubit movement records from one engine run.

    Engines call :meth:`begin` with the initial location map, then
    :meth:`transfer` once per completed hop, then :meth:`finish` with
    the makespan.  ``finish`` builds ``intervals`` — for every touched
    qubit, an exact partition of ``[0, horizon]`` (see the module
    docstring for the per-dialect clamp semantics).
    """

    def __init__(self) -> None:
        #: Flat movement log: (qubit, src, dst, start, end, net).
        self.records: List[Tuple[int, int, int, float, float, int]] = []
        self._initial: Dict[int, int] = {}
        self._finished = False
        self.makespan = 0.0
        self.horizon = 0.0
        #: Reservation-dialect time inversions, monotonized away.
        self.clamped = 0
        #: Records whose source level disagreed with the tracked
        #: location — an engine accounting bug; must stay 0 everywhere.
        self.mismatches = 0
        self.intervals: Dict[int, List[Interval]] = {}
        self.final_level: Dict[int, int] = {}

    def begin(self, locations: Mapping[int, int]) -> None:
        """Record where every touched qubit starts (engine-called)."""
        self._initial = dict(locations)

    def transfer(
        self, qubit: int, src: int, dst: int, start: float, end: float,
        net: int,
    ) -> None:
        """One completed hop of ``qubit`` on network ``net``."""
        self.records.append((qubit, src, dst, start, end, net))

    def finish(self, makespan: float) -> "ResidencyRecorder":
        """Close the run and build the per-qubit interval partitions.

        Idempotent: a second call is a no-op (engines may finish a
        recorder that a wrapper also finishes defensively).
        """
        if self._finished:
            return self
        self._finished = True
        self.makespan = makespan
        horizon = makespan
        for rec in self.records:
            if rec[4] > horizon:
                horizon = rec[4]
        self.horizon = horizon
        per_qubit: Dict[int, List[Tuple[int, int, int, float, float, int]]]
        per_qubit = {q: [] for q in self._initial}
        for rec in self.records:
            per_qubit[rec[0]].append(rec)
        for q, level in self._initial.items():
            timeline: List[Interval] = []
            cur_t = 0.0
            cur_level = level
            for _, src, dst, start, end, net in per_qubit[q]:
                if src != cur_level:
                    self.mismatches += 1
                if start < cur_t:
                    # Reservation-dialect inversion: truncate the
                    # transit span so the partition stays exact.
                    self.clamped += 1
                    start = cur_t
                    if end < start:
                        end = start
                if start > cur_t:
                    timeline.append(Interval(cur_t, start, LEVEL, cur_level))
                if end > start:
                    timeline.append(Interval(start, end, TRANSIT, net))
                cur_t = end
                cur_level = dst
            if horizon > cur_t:
                timeline.append(Interval(cur_t, horizon, LEVEL, cur_level))
            self.intervals[q] = timeline
            self.final_level[q] = cur_level
        return self

    @property
    def finished(self) -> bool:
        return self._finished

    def partition_ok(self) -> bool:
        """Exact-partition invariant over every qubit's timeline.

        Each timeline must start at 0, be contiguous (every interval
        starts exactly where the previous one ended — float-exact, by
        construction), contain no negative-width spans, and end exactly
        at the shared horizon.
        """
        if not self._finished:
            raise RuntimeError("partition_ok() before finish()")
        for timeline in self.intervals.values():
            t = 0.0
            for iv in timeline:
                if iv.start != t or iv.end < iv.start:
                    return False
                t = iv.end
            if t != self.horizon:
                return False
        return True

    def level_time(self, q: int) -> Dict[int, float]:
        """Summed parked time of qubit ``q`` per hierarchy level."""
        out: Dict[int, float] = {}
        for iv in self.intervals[q]:
            if iv.kind == LEVEL:
                out[iv.place] = out.get(iv.place, 0.0) + iv.duration
        return out

    def transit_time(self, q: int) -> float:
        """Summed in-flight time of qubit ``q`` across every network."""
        return sum(
            iv.duration for iv in self.intervals[q] if iv.kind == TRANSIT
        )


# ----------------------------------------------------------------------
# MC-calibrated per-level noise
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LevelNoise:
    """Noise parameters of one hierarchy level's encoding point.

    ``cycle_error_rate`` is the per-EC-cycle logical failure
    probability (Monte-Carlo-calibrated Equation 1); ``cycle_time_s``
    one EC period.  ``coherence_time_s`` is the derived mean time to
    logical failure for a parked qubit, and ``error_rate_per_s`` its
    reciprocal — the exponent accrual rate residency integrates.
    """

    code_key: str
    code_level: int
    cycle_time_s: float
    cycle_error_rate: float

    @property
    def error_rate_per_s(self) -> float:
        return self.cycle_error_rate / self.cycle_time_s

    @property
    def coherence_time_s(self) -> float:
        return self.cycle_time_s / self.cycle_error_rate


@lru_cache(maxsize=None)
def code_noise(
    code_key: str,
    code_level: int,
    trials: int = FIDELITY_TRIALS,
    seed: int = FIDELITY_SEED,
) -> LevelNoise:
    """MC-calibrated :class:`LevelNoise` of one (code, level) point.

    The batched decoder measures the level-1 logical error rate at the
    calibration physical rate :data:`P_CAL`; the ratio against the
    analytic Equation 1 value at the same point scales the analytic
    rate at ``code_level`` under the default technology point.  When
    the measurement resolves zero failures (below MC resolution at the
    given trial budget) the analytic rate is kept unscaled.
    """
    code = by_key(code_key)
    mc = logical_error_rate(
        code.algebraic_code(), P_CAL, trials=trials, seed=seed
    )
    if mc.failures == 0:
        scale = 1.0
    else:
        scale = mc.logical_error_rate / code.failure_rate(1, p0=P_CAL)
    rate = min(1.0, scale * code.failure_rate(code_level))
    return LevelNoise(
        code_key=code_key,
        code_level=code_level,
        cycle_time_s=code.ec_time_s(code_level),
        cycle_error_rate=rate,
    )


@dataclass(frozen=True)
class StackNoise:
    """Per-level and per-network accrual rates of one hierarchy stack.

    ``transit_rates[k]`` charges a qubit in flight on network ``k`` at
    the worse endpoint's per-second rate — the shallower level's, since
    deeper levels are doubly-exponentially more reliable.
    """

    levels: Tuple[LevelNoise, ...]
    level_rates: Tuple[float, ...]
    transit_rates: Tuple[float, ...]


def stack_noise(
    stack,
    *,
    trials: int = FIDELITY_TRIALS,
    seed: int = FIDELITY_SEED,
) -> StackNoise:
    """The :class:`StackNoise` of a :class:`~repro.sim.levels.HierarchyStack`."""
    levels = tuple(
        code_noise(level.code_key, level.code_level, trials, seed)
        for level in stack.levels
    )
    level_rates = tuple(noise.error_rate_per_s for noise in levels)
    transit_rates = tuple(
        max(level_rates[k], level_rates[k + 1])
        for k in range(len(levels) - 1)
    )
    return StackNoise(
        levels=levels, level_rates=level_rates, transit_rates=transit_rates
    )


# ----------------------------------------------------------------------
# accrual
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FidelityResult:
    """Logical-error accrual of one run, with a per-level breakdown.

    ``level_exponents[l]`` is the summed ``duration * rate`` exponent
    accrued parked at level ``l`` (over all qubits);
    ``transit_exponent`` the same for in-flight spans across every
    network.  ``logical_error`` is ``1 - exp(-total)`` — the survival
    model's probability that at least one logical failure occurred.
    """

    makespan_s: float
    horizon_s: float
    logical_error: float
    level_exponents: Tuple[float, ...]
    transit_exponent: float

    @property
    def total_exponent(self) -> float:
        return sum(self.level_exponents) + self.transit_exponent

    @property
    def level_errors(self) -> Tuple[float, ...]:
        """Per-level failure probabilities, each taken in isolation."""
        return tuple(-math.expm1(-x) for x in self.level_exponents)

    @property
    def transit_error(self) -> float:
        return -math.expm1(-self.transit_exponent)


def accrue_residency(
    recorder: ResidencyRecorder,
    stack,
    *,
    trials: int = FIDELITY_TRIALS,
    seed: int = FIDELITY_SEED,
) -> FidelityResult:
    """Integrate a finished recorder's intervals against stack noise."""
    if not recorder.finished:
        raise ValueError("accrue_residency() requires a finished recorder")
    noise = stack_noise(stack, trials=trials, seed=seed)
    level_exp = [0.0] * stack.depth
    transit_exp = 0.0
    for timeline in recorder.intervals.values():
        for iv in timeline:
            if iv.kind == LEVEL:
                level_exp[iv.place] += iv.duration * noise.level_rates[iv.place]
            else:
                transit_exp += iv.duration * noise.transit_rates[iv.place]
    total = sum(level_exp) + transit_exp
    return FidelityResult(
        makespan_s=recorder.makespan,
        horizon_s=recorder.horizon,
        logical_error=-math.expm1(-total),
        level_exponents=tuple(level_exp),
        transit_exponent=transit_exp,
    )


def simulate_fidelity_run(
    stack,
    workload,
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
    prefetch: str = "none",
    pipeline: Optional[bool] = None,
    trials: int = FIDELITY_TRIALS,
    seed: int = FIDELITY_SEED,
):
    """One engine run priced in both time and fidelity.

    Runs :func:`repro.sim.levels.simulate_hierarchy_run` with a
    :class:`ResidencyRecorder` attached and returns ``(result,
    fidelity)`` — the unchanged
    :class:`~repro.sim.levels.HierarchyEngineResult` (every float
    bit-identical to a recorder-less run) plus the
    :class:`FidelityResult` accrued from the recorded intervals.
    """
    from .levels import simulate_hierarchy_run

    recorder = ResidencyRecorder()
    result = simulate_hierarchy_run(
        stack,
        workload,
        policy,
        window=window,
        fetch=fetch,
        order=order,
        prefetch=prefetch,
        pipeline=pipeline,
        recorder=recorder,
    )
    recorder.finish(result.total_time_s)
    fidelity = accrue_residency(recorder, stack, trials=trials, seed=seed)
    return result, fidelity


__all__ = [
    "P_CAL",
    "FIDELITY_TRIALS",
    "FIDELITY_SEED",
    "Interval",
    "ResidencyRecorder",
    "LevelNoise",
    "StackNoise",
    "code_noise",
    "stack_noise",
    "FidelityResult",
    "accrue_residency",
    "simulate_fidelity_run",
]
