"""Computation-vs-communication accounting (Section 6, Figure 8).

Totals the logical computation time and logical communication time of
the two components of Shor's algorithm on a CQLA instance:

* **Modular exponentiation** (Figure 8a): Toffoli-dominated.  Each
  fault-tolerant Toffoli moves nine logical qubits (operands, ancilla,
  cat-state) in and out of compute superblocks while occupying fifteen
  gate-EC periods; communication flows through the aggregate superblock
  perimeter bandwidth and is therefore significant but subordinate.
* **QFT** (Figure 8b): all-to-all personalized communication with cheap
  (one- and two-qubit) gates, so communication closely tracks
  computation.

Both use the Section 6 observation that a communication step costs about
one gate period (teleportation latency ~ one EC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.bandwidth import (
    EDGE_CHANNELS,
    TRANSFERS_PER_CHANNEL_PER_PERIOD,
    optimal_superblock_size,
)
from ..arch.interconnect import teleport_time_by_key
from ..circuits.gates import GateKind, TOFFOLI_TRAFFIC_QUBITS
from ..circuits.modexp import serial_adder_depth
from ..ecc.concatenated import by_key
from .scheduler import _adder_circuit, adder_makespan_slots

#: Exposed teleport hops per QFT controlled-phase pair: one hop brings
#: the control to the target's superblock; the return overlaps the next
#: gate's execution and exposes only half its latency.
QFT_HOPS_PER_PAIR = 1.5

#: Gate-EC slots charged per controlled-phase gate (two CNOT layers;
#: the single-qubit rotations fold into the EC periods).
CPHASE_SLOTS = 2


@dataclass(frozen=True)
class CommBreakdown:
    """Computation/communication totals for one workload instance."""

    workload: str
    n_bits: int
    code_key: str
    computation_s: float
    communication_s: float

    @property
    def ratio(self) -> float:
        """Communication over computation."""
        if self.computation_s == 0:
            return math.inf
        return self.communication_s / self.computation_s

    @property
    def computation_hours(self) -> float:
        return self.computation_s / 3600.0

    @property
    def communication_hours(self) -> float:
        return self.communication_s / 3600.0


def adder_transfer_count(n_bits: int) -> int:
    """Logical-qubit movements per addition.

    Nine qubits round-trip per Toffoli plus one operand hop per
    remaining two-qubit gate.
    """
    circuit = _adder_circuit(n_bits, False)
    toffolis = circuit.toffoli_count
    others = sum(
        1 for g in circuit.gates
        if g.kind is not GateKind.TOFFOLI and g.kind.n_qubits >= 2
    )
    return 2 * TOFFOLI_TRAFFIC_QUBITS * toffolis + others


def superblock_bandwidth_per_period(n_blocks: int) -> float:
    """Aggregate perimeter transfers per EC period of all superblocks."""
    size = optimal_superblock_size()
    n_super = max(1, math.ceil(n_blocks / size))
    per_super = 4.0 * math.sqrt(min(size, n_blocks)) * EDGE_CHANNELS
    return n_super * per_super * TRANSFERS_PER_CHANNEL_PER_PERIOD


def modexp_breakdown(
    code_key: str,
    n_bits: int,
    n_blocks: int,
    level: int = 2,
) -> CommBreakdown:
    """Figure 8a point: modular exponentiation on a CQLA instance."""
    code = by_key(code_key)
    op_s = code.logical_op_time_s(level)
    adders = serial_adder_depth(n_bits)
    adder_slots = adder_makespan_slots(n_bits, n_blocks)
    computation = adders * adder_slots * op_s

    transfers_per_adder = adder_transfer_count(n_bits)
    bandwidth = superblock_bandwidth_per_period(n_blocks)
    comm_periods_per_adder = transfers_per_adder / bandwidth
    communication = adders * comm_periods_per_adder * op_s
    return CommBreakdown(
        workload="modexp",
        n_bits=n_bits,
        code_key=code_key,
        computation_s=computation,
        communication_s=communication,
    )


def qft_breakdown(code_key: str, n_bits: int, level: int = 2) -> CommBreakdown:
    """Figure 8b point: the QFT over an ``n_bits`` register."""
    code = by_key(code_key)
    op_s = code.logical_op_time_s(level)
    hop_s = teleport_time_by_key(code_key, level)
    pairs = n_bits * (n_bits - 1) // 2
    computation = (pairs * CPHASE_SLOTS + n_bits) * op_s
    communication = pairs * QFT_HOPS_PER_PAIR * hop_s
    return CommBreakdown(
        workload="qft",
        n_bits=n_bits,
        code_key=code_key,
        computation_s=computation,
        communication_s=communication,
    )
