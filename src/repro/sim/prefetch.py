"""Exact prefetchers for the split-transaction hierarchy engine.

The optimized fetch schedule is *static* — every future operand access
is known at compile time — so prefetching here is exact, not
speculative: a prefetcher walks the scheduled operand trace ahead of
the issue point and names qubits worth promoting into idle transfer
ports before their demand use.  The engine pins a prefetched qubit
against eviction until its first use and vetoes any prefetch whose
eviction victim would be needed *sooner* than the prefetched qubit
(next-use distances come from the shared
:class:`~repro.circuits.circuit.TraceIndex`), so an exact prefetch can
reorder transfers but never inject a miss the demand schedule would not
have taken.

Three prefetchers ship with the engine:

* ``none`` — demand fetching only (the reference behavior);
* ``next_k`` — promote the next ``k`` distinct upcoming operands that
  are not already at the compute level, in trace order;
* ``distance`` — the same ``next_k`` candidate walk re-ranked by hop
  distance: the deepest qubits issue first, so the slow bottom
  networks see their requests earliest.

Register new prefetchers with :func:`register_prefetcher`; the engine
instantiates one fresh prefetcher per run via :func:`make_prefetcher`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Type

from ..circuits.circuit import TraceIndex

__all__ = [
    "Prefetcher",
    "available_prefetchers",
    "make_prefetcher",
    "register_prefetcher",
    "validate_prefetcher",
]


class Prefetcher:
    """Walks the static operand trace ahead of the issue point.

    The engine calls :meth:`reset` once with the scheduled trace, its
    :class:`~repro.circuits.circuit.TraceIndex`, and the stack depth,
    then :meth:`candidates` at every gate issue.  ``candidates`` names
    qubits worth promoting, best first; the engine filters them against
    residency, in-flight transfers, pinning budget and the exactness
    veto, so a prefetcher only ranks — it never moves anything itself.
    """

    name = "abstract"

    def reset(
        self, trace: Sequence[int], index: TraceIndex, depth: int
    ) -> None:
        self._trace = trace
        self._index = index
        self._depth = depth

    def candidates(
        self, pos: int, location: Mapping[int, int]
    ) -> List[int]:
        """Qubits to promote, best first.

        ``pos`` is the trace position of the operand about to issue;
        ``location`` maps each qubit to its current stack level (0 is
        the compute level).
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], Prefetcher]] = {}


def register_prefetcher(cls: Type[Prefetcher]) -> Type[Prefetcher]:
    """Class decorator adding a :class:`Prefetcher` to the registry."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError("prefetcher classes must set a concrete `name`")
    if name in _REGISTRY:
        raise ValueError(f"prefetcher {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def validate_prefetcher(name: str) -> None:
    """Raise ValueError unless ``name`` is a registered prefetcher."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown prefetcher {name!r}; registered prefetchers: "
            f"{', '.join(available_prefetchers())}"
        )


def make_prefetcher(name: str) -> Prefetcher:
    """A fresh prefetcher instance for one engine run."""
    validate_prefetcher(name)
    return _REGISTRY[name]()


def available_prefetchers() -> Tuple[str, ...]:
    """All registered prefetcher names, sorted."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# shipped prefetchers
# ----------------------------------------------------------------------

@register_prefetcher
class NonePrefetcher(Prefetcher):
    """Demand fetching only — never proposes a promotion."""

    name = "none"

    def candidates(
        self, pos: int, location: Mapping[int, int]
    ) -> List[int]:
        return []


class _OrderWalker(Prefetcher):
    """Shared scan: the next ``k`` distinct *non-resident* qubits.

    The walk measures depth in prefetch candidates, not raw operand
    slots: a stretch of the schedule that is already resident costs no
    lookahead (the window would otherwise stop sliding whenever a
    long-latency miss stalls the issue pointer, collapsing the
    pipeline to one transfer per round trip).  ``horizon`` bounds the
    scan so a run never goes quadratic in the trace length.
    """

    def __init__(self, k: int, horizon_factor: int = 8,
                 min_horizon: int = 512) -> None:
        if k < 1:
            raise ValueError("prefetch depth must be positive")
        self.k = k
        self.horizon = max(horizon_factor * k, min_horizon)

    def _walk(
        self, pos: int, location: Mapping[int, int]
    ) -> List[Tuple[int, int]]:
        """(trace offset, qubit) of upcoming non-resident operands."""
        found: List[Tuple[int, int]] = []
        seen = set()
        for j, q in enumerate(self._trace[pos + 1: pos + 1 + self.horizon]):
            if q in seen:
                continue
            seen.add(q)
            if location.get(q, 0) != 0:
                found.append((j, q))
                if len(found) >= self.k:
                    break
        return found


@register_prefetcher
class NextKPrefetcher(_OrderWalker):
    """Promote the next ``k`` distinct non-resident operands, in trace
    order — the straight exact-prefetch walk down the fetch schedule.

    ``k`` bounds how many prefetches are proposed per issue point; it
    should comfortably exceed the stack's total port count or the
    ports starve between gates.
    """

    name = "next_k"

    def __init__(self, k: int = 64) -> None:
        super().__init__(k)

    def candidates(
        self, pos: int, location: Mapping[int, int]
    ) -> List[int]:
        return [q for _, q in self._walk(pos, location)]


@register_prefetcher
class DistancePrefetcher(Prefetcher):
    """The ``next_k`` walk re-ranked by hop distance: deepest first.

    A qubit more levels down crosses more (and slower) networks, so
    its transfer chain is started earliest; ties break toward trace
    order.  Same candidate set as ``next_k`` — only the issue order
    differs.
    """

    name = "distance"

    def __init__(self, k: int = 64) -> None:
        self._walker = _OrderWalker(k)

    def reset(
        self, trace: Sequence[int], index: TraceIndex, depth: int
    ) -> None:
        super().reset(trace, index, depth)
        self._walker.reset(trace, index, depth)

    def candidates(
        self, pos: int, location: Mapping[int, int]
    ) -> List[int]:
        ranked = [
            (-location.get(q, 0), j, q)
            for j, q in self._walker._walk(pos, location)
        ]
        ranked.sort()
        return [q for _, _, q in ranked]
