"""Two-level compatibility wrapper over the N-level hierarchy engine.

This module keeps the original Table 5 surface — ``simulate_l1_run``
returning a :class:`HierarchyRunResult` — but the simulation itself now
runs on the general engine of :mod:`repro.sim.levels`: the call builds
the paper's two-level stack (L1 compute+cache over L2 memory, LRU
replacement, optimized fetch) and maps the engine result back onto the
legacy fields.  The pre-refactor event loop is retained verbatim as
:func:`simulate_l1_run_reference`, and the equivalence tests pin the
engine-backed path to it bit for bit — Table 5 is unchanged.

The level-1 speedup of Table 5 is the ratio between executing the same
instruction stream entirely at level 2 and this simulated level-1 run.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import List, Optional

from ..circuits.circuit import Circuit
from ..ecc.concatenated import by_key
from ..ecc.transfer import TransferNetwork
from ..perf.memo import resolve_cache, stable_key
from .cache import LruCache, simulate_optimized
from .levels import (
    DEFAULT_COMPUTE_QUBITS,
    l1_capacity,
    mixed_stack,
    simulate_hierarchy_run,
    two_level_stack,
)
from .policies import validate_policy
from .prefetch import validate_prefetcher
from .scheduler import _adder_circuit

__all__ = [
    "DEFAULT_COMPUTE_QUBITS",
    "HierarchyRunResult",
    "l1_speedup",
    "simulate_l1_run",
    "simulate_l1_run_reference",
]


@dataclass(frozen=True)
class HierarchyRunResult:
    """Timing breakdown of one simulated level-1 adder execution."""

    code_key: str
    n_bits: int
    parallel_transfers: int
    l1_time_s: float
    l2_time_s: float
    compute_time_s: float
    transfer_wait_s: float
    hit_rate: float
    transfers: int

    @property
    def l1_speedup(self) -> float:
        """Table 5's "L1 SpeedUp": level-2 serial time over level-1."""
        return self.l2_time_s / self.l1_time_s

    @property
    def transfer_bound_fraction(self) -> float:
        return self.transfer_wait_s / self.l1_time_s if self.l1_time_s else 0.0


def _validate_l1_args(
    parallel_transfers: int,
    compute_qubits: int,
    cache_factor: float,
    circuit: Optional[Circuit],
    eviction_policy: str = "lru",
    prefetch: str = "none",
    l1_code_key: Optional[str] = None,
) -> None:
    """Boundary validation: fail fast with a clear message instead of
    deep inside the event loop."""
    if l1_code_key is not None:
        by_key(l1_code_key)  # validates the key before any memo lookup
    if parallel_transfers < 1:
        raise ValueError(
            f"parallel_transfers must be at least 1, got {parallel_transfers}"
        )
    if compute_qubits < 1:
        raise ValueError(
            f"compute_qubits must be at least 1, got {compute_qubits}"
        )
    if cache_factor < 0.0:
        raise ValueError(
            f"cache_factor cannot be negative, got {cache_factor}"
        )
    capacity = l1_capacity(compute_qubits, cache_factor)
    if capacity < 2:
        raise ValueError(
            "level-1 cache capacity must be at least 2 logical qubits; "
            f"(1 + {cache_factor}) * {compute_qubits} rounds to {capacity}"
        )
    if circuit is not None and not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    validate_policy(eviction_policy)
    validate_prefetcher(prefetch)


def simulate_l1_run(
    code_key: str,
    n_bits: int,
    parallel_transfers: int = 10,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = 2.0,
    circuit: Optional[Circuit] = None,
    cache=None,
    eviction_policy: str = "lru",
    prefetch: str = "none",
    l1_code_key: Optional[str] = None,
) -> HierarchyRunResult:
    """Simulate one adder at level 1 behind the transfer network.

    The resident set spans the compute region plus the cache
    (``(1 + cache_factor) * compute_qubits`` logical qubits).  Transfer
    ports are modeled as servers of the event kernel
    (:mod:`repro.sim.events`); with the default ``prefetch="none"``
    they speak the greedy-reservation dialect — a miss occupies a port
    for the demotion (memory -> cache) and the paired promotion of the
    evicted qubit, bit-identical to the retained pre-engine simulator —
    while any real prefetcher switches the run to the split-transaction
    dialect, where a port is busy only while a transfer is in flight.
    Either way the instruction waits for its operands' arrivals, and
    computation on already-resident operands continues to overlap.

    ``eviction_policy`` selects the level-1 replacement policy from the
    :mod:`repro.sim.policies` registry; the default ``"lru"`` is the
    paper's configuration, bit-identical to the pre-engine simulator.
    ``prefetch`` selects a :mod:`repro.sim.prefetch` prefetcher;
    anything but the default ``"none"`` switches the engine to the
    split-transaction transfer model and promotes upcoming operands of
    the static fetch order ahead of demand.

    ``l1_code_key`` optionally encodes the level-1 compute+cache region
    in a different code family than the level-2 memory (``None``, the
    default, is the paper's same-code configuration): the run then
    simulates on a mixed-code two-level stack whose transfer network is
    priced from both codes (the off-diagonal Table 3 cells), while
    ``code_key`` remains the memory-side code and the level-2 serial
    baseline.

    Runs with the default adder circuit are memoized through
    :mod:`repro.perf.memo` (keyed on every parameter that affects the
    result); pass ``cache=False`` to force a fresh simulation, or an
    explicit :class:`~repro.perf.memo.SweepCache` / directory to control
    where results persist.  Caller-supplied circuits bypass the cache —
    there is no stable key for an arbitrary gate list.
    """
    _validate_l1_args(
        parallel_transfers, compute_qubits, cache_factor, circuit,
        eviction_policy, prefetch, l1_code_key,
    )
    if l1_code_key == code_key:
        l1_code_key = None
    if circuit is not None:
        return _simulate_l1_run_uncached(
            code_key, n_bits, parallel_transfers, compute_qubits,
            cache_factor, circuit, eviction_policy, prefetch, l1_code_key,
        )
    memo = resolve_cache(cache)
    # Same-code runs keep the historical key (no l1_code_key entry), so
    # persisted caches written before the mixed-code axis stay warm.
    key_kwargs = dict(
        code_key=code_key, n_bits=n_bits,
        parallel_transfers=parallel_transfers,
        compute_qubits=compute_qubits, cache_factor=cache_factor,
        eviction_policy=eviction_policy, prefetch=prefetch,
    )
    if l1_code_key is not None:
        key_kwargs["l1_code_key"] = l1_code_key
    key = stable_key("simulate_l1_run", **key_kwargs)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            try:
                return HierarchyRunResult(**hit)
            except TypeError:
                pass  # malformed persisted entry: fall through, recompute
    result = _simulate_l1_run_uncached(
        code_key, n_bits, parallel_transfers, compute_qubits,
        cache_factor, None, eviction_policy, prefetch, l1_code_key,
    )
    if memo is not None:
        memo.put(key, asdict(result))
    return result


def _simulate_l1_run_uncached(
    code_key: str,
    n_bits: int,
    parallel_transfers: int,
    compute_qubits: int,
    cache_factor: float,
    circuit: Optional[Circuit],
    eviction_policy: str = "lru",
    prefetch: str = "none",
    l1_code_key: Optional[str] = None,
) -> HierarchyRunResult:
    """Engine-backed two-level run mapped onto the legacy result."""
    if circuit is None:
        circuit = _adder_circuit(n_bits, False)
    if l1_code_key is not None:
        stack = mixed_stack(
            l1_code_key, code_key,
            compute_qubits=compute_qubits,
            cache_factor=cache_factor,
            parallel_transfers=parallel_transfers,
        )
    else:
        stack = two_level_stack(
            code_key,
            compute_qubits=compute_qubits,
            cache_factor=cache_factor,
            parallel_transfers=parallel_transfers,
        )
    run = simulate_hierarchy_run(
        stack, circuit, policy=eviction_policy, prefetch=prefetch,
    )
    return HierarchyRunResult(
        code_key=code_key,
        n_bits=n_bits,
        parallel_transfers=parallel_transfers,
        l1_time_s=run.total_time_s,
        l2_time_s=run.serial_bottom_time_s,
        compute_time_s=run.compute_time_s,
        transfer_wait_s=run.transfer_wait_s,
        hit_rate=run.hit_rate,
        transfers=run.level_stats[0].misses,
    )


def simulate_l1_run_reference(
    code_key: str,
    n_bits: int,
    parallel_transfers: int = 10,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = 2.0,
    circuit: Optional[Circuit] = None,
) -> HierarchyRunResult:
    """The original two-level event loop, retained verbatim.

    This is the executable specification the engine-backed
    :func:`simulate_l1_run` is pinned against: same fetch order, same
    LRU replacement, same port-server timing, field-for-field identical
    :class:`HierarchyRunResult`.
    """
    code = by_key(code_key)
    network = TransferNetwork(
        code_key=code_key, parallel_transfers=parallel_transfers
    )
    if circuit is None:
        circuit = _adder_circuit(n_bits, False)
    capacity = int(round((1.0 + cache_factor) * compute_qubits))
    fetch = simulate_optimized(circuit, capacity)

    op_l1 = code.logical_op_time_s(1)
    op_l2 = code.logical_op_time_s(2)
    t_demote = network.demote_time_s
    t_promote = network.promote_time_s
    lanes = max(1, round(network.effective_concurrency))

    # Replay the fetch order against a fresh cache, timing transfers.
    cache = LruCache(capacity)
    port_free: List[float] = [0.0] * lanes
    heapq.heapify(port_free)
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    transfers = 0
    for idx in fetch.order:
        gate = circuit.gates[idx]
        arrivals = 0.0
        for q in gate.qubits:
            was_full = len(cache) >= cache.capacity
            hit = cache.access(q)
            if hit:
                continue
            transfers += 1
            port = heapq.heappop(port_free)
            start = port
            arrival = start + t_demote
            # The paired promotion of the evicted qubit keeps the port
            # busy after the demotion completes.
            busy_until = arrival + (t_promote if was_full else 0.0)
            heapq.heappush(port_free, busy_until)
            arrivals = max(arrivals, arrival)
        start = max(compute_free, arrivals)
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        duration = gate.ec_slots * op_l1
        compute_free = start + duration
        compute_time += duration

    l1_time = compute_free
    l2_time = sum(g.ec_slots for g in circuit.gates) * op_l2
    return HierarchyRunResult(
        code_key=code_key,
        n_bits=n_bits,
        parallel_transfers=parallel_transfers,
        l1_time_s=l1_time,
        l2_time_s=l2_time,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        hit_rate=fetch.stats.hit_rate,
        transfers=transfers,
    )


@lru_cache(maxsize=None)
def l1_speedup(
    code_key: str,
    n_bits: int,
    parallel_transfers: int = 10,
    compute_qubits: int = DEFAULT_COMPUTE_QUBITS,
    cache_factor: float = 2.0,
) -> float:
    """Cached Table 5 "L1 SpeedUp" for one configuration.

    Every input that affects the result is an explicit parameter of the
    cached function — ``compute_qubits`` and ``cache_factor`` included —
    so callers varying them can never receive a stale entry keyed only
    on the first three arguments.
    """
    return simulate_l1_run(
        code_key, n_bits, parallel_transfers=parallel_transfers,
        compute_qubits=compute_qubits, cache_factor=cache_factor,
    ).l1_speedup
